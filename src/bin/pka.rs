//! The `pka` command-line tool: the automated workflow the paper's
//! artifact ships as shell scripts, as one binary.
//!
//! ```text
//! pka list [--suite NAME]
//! pka info --workload NAME
//! pka select --workload NAME [--target-error PCT] [--out FILE.json]
//! pka simulate --workload NAME [--gpu v100|rtx2060|rtx3070|v100-half]
//!              [--threshold S] [--selection FILE.json] [--full]
//! pka stream --source <FILE.jsonl|-|synthetic:N|WORKLOAD> [--prefix J]
//!            [--checkpoint-every N] [--checkpoint FILE.json] [--resume]
//!            [--verify-batch]
//! pka trace export TRACE.jsonl [--out FILE.json]
//! pka obs explain ATTRIBUTION.json
//! pka obs diff BASELINE.json CURRENT.json [--counters-only]
//! ```
//!
//! `select` profiles (one- or two-level automatically), runs Principal
//! Kernel Selection, prints the groups with clustering diagnostics, and
//! can persist the selection — the artifact's per-workload "groups,
//! principal kernels and weights" record. `simulate` runs the sampled
//! simulation (optionally against a saved selection, optionally next to a
//! full-simulation baseline).

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Mutex;

use principal_kernel_analysis::core::{Pka, PkaConfig, PkpConfig, PksConfig, Selection};
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::ml::{silhouette_score, Matrix};
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::sim::cost::{format_duration, projected_sim_seconds};
use principal_kernel_analysis::workloads::{all_workloads, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (flags, positional) = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Only the file-conversion subcommands take positional arguments.
    if !positional.is_empty() && !matches!(command.as_str(), "trace" | "obs") {
        eprintln!("error: unexpected argument `{}`\n{USAGE}", positional[0]);
        return ExitCode::from(2);
    }
    // Manifest histograms render p50/p95/p99 through the shared stats
    // routine; registration is process-global and first-wins.
    principal_kernel_analysis::obs::set_percentile_fn(
        principal_kernel_analysis::stats::summary::percentile,
    );
    if let Err(e) = obs_setup(&flags) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    // Opt-in reassociated SIMD reductions: scalar-equivalent results are no
    // longer bitwise, but stay within the documented `2·d·ε` relative bound.
    if flags.contains_key("fast-math") {
        principal_kernel_analysis::ml::simd::set_fast_math(true);
    }
    let result = match command.as_str() {
        "list" => cmd_list(&flags),
        "info" => cmd_info(&flags),
        "select" => cmd_select(&flags),
        "simulate" => cmd_simulate(&flags),
        "stream" => cmd_stream(&flags),
        "serve" => cmd_serve(&flags),
        "trace" => cmd_trace(&flags, &positional),
        "obs" => cmd_obs(&flags, &positional),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if result.is_ok() {
        if let Err(e) = obs_finish(command, &flags) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Output checksums registered by commands for the run manifest, keyed by
/// artifact name: FNV-1a over the artifact's canonical serialized form.
static CHECKSUMS: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());

fn record_checksum(name: &str, payload: &str) {
    if principal_kernel_analysis::obs::enabled() {
        let digest = principal_kernel_analysis::stats::hash::fnv1a(payload.as_bytes());
        CHECKSUMS.lock().unwrap().push((name.to_string(), digest));
    }
}

/// Structured command output registered for the run manifest's `report`
/// section (the per-representative PKP table, the stream summary).
static REPORT: Mutex<Option<serde_json::Value>> = Mutex::new(None);

fn record_report(value: serde_json::Value) {
    if principal_kernel_analysis::obs::enabled() {
        *REPORT.lock().unwrap() = Some(value);
    }
}

/// Snapshot cadence (stream records between `pka.snapshot/v1` records)
/// when `--snapshot-out`/`--progress` are given without `--snapshot-every`.
const DEFAULT_SNAPSHOT_EVERY: u64 = 100_000;

/// Enables collection when any observability flag is present and attaches
/// the JSONL sinks for `--trace-out` and `--snapshot-out`.
fn obs_setup(flags: &HashMap<String, String>) -> Result<(), String> {
    use principal_kernel_analysis::obs;
    let wants_obs = flags.contains_key("trace-out")
        || flags.contains_key("metrics-out")
        || flags.contains_key("verbose")
        || flags.contains_key("snapshot-out")
        || flags.contains_key("progress");
    if !wants_obs {
        return Ok(());
    }
    obs::enable();
    if let Some(path) = flags.get("trace-out") {
        obs::trace_to(std::path::Path::new(path))
            .map_err(|e| format!("open trace sink {path}: {e}"))?;
    }
    let every = int_flag(flags, "snapshot-every")?.unwrap_or(DEFAULT_SNAPSHOT_EVERY);
    if let Some(path) = flags.get("snapshot-out") {
        obs::snapshot_to(std::path::Path::new(path), every)
            .map_err(|e| format!("open snapshot sink {path}: {e}"))?;
    }
    if flags.contains_key("progress") {
        obs::progress_ticker(every);
    }
    Ok(())
}

/// Writes the `--metrics-out` manifest, prints the `-v` stage summary, and
/// closes the trace sink.
fn obs_finish(command: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    use principal_kernel_analysis::obs;
    if !obs::enabled() {
        return Ok(());
    }
    if let Some(path) = flags.get("metrics-out") {
        let mut sorted_flags: Vec<(&String, &String)> = flags.iter().collect();
        sorted_flags.sort();
        let flag_map: serde_json::Map = sorted_flags
            .into_iter()
            .map(|(k, v)| (k.clone(), serde_json::Value::String(v.clone())))
            .collect();
        let config = serde_json::json!({
            "binary": "pka",
            "command": command,
            "flags": serde_json::Value::Object(flag_map),
        });
        // The binary exposes no seed flags; these are the workspace
        // defaults every run uses (per-K streams derive as `seed ^ k`).
        let seeds = serde_json::json!({ "pks": 0u64, "classifier": 0u64 });
        let checksums: serde_json::Map = CHECKSUMS
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::json!(*v)))
            .collect();
        let write_result = match REPORT.lock().unwrap().take() {
            Some(report) => obs::write_manifest_with_report(
                std::path::Path::new(path),
                config,
                seeds,
                serde_json::Value::Object(checksums),
                report,
            ),
            None => obs::write_manifest(
                std::path::Path::new(path),
                config,
                seeds,
                serde_json::Value::Object(checksums),
            ),
        };
        write_result.map_err(|e| format!("write manifest {path}: {e}"))?;
    }
    if flags.contains_key("verbose") {
        for line in obs::snapshot().summary_lines() {
            eprintln!("[obs] {line}");
        }
    }
    obs::close_trace().map_err(|e| format!("close trace sink: {e}"))?;
    obs::close_snapshots().map_err(|e| format!("close snapshot sink: {e}"))?;
    Ok(())
}

const USAGE: &str = "usage:
  pka list [--suite NAME]
  pka info --workload NAME
  pka select --workload NAME [--target-error PCT] [--out FILE.json]
             [--attribution-out FILE.json] [--workers N]
             [observability flags]
  pka simulate --workload NAME [--gpu v100|rtx2060|rtx3070|v100-half]
               [--threshold S] [--selection FILE.json] [--full]
               [--attribution-out FILE.json] [--workers N]
               [observability flags]
  pka stream --source <FILE.jsonl|-|synthetic:N|WORKLOAD>
             [--prefix J] [--checkpoint-every N] [--checkpoint FILE.json]
             [--resume] [--reservoir N] [--batch N] [--verify-batch]
             [--shards N [--reshard-at REC[:SHARD:LANE]]]
             [--attribution-out FILE.json]
             [--gpu ...] [--workers N] [observability flags]
  pka serve [--addr HOST:PORT] [--http-threads N] [--workers N]
            [--max-sessions N] [--retain N] [--feed-capacity N]
            [--read-timeout-ms MS] [observability flags]
  pka trace export TRACE.jsonl [--out FILE.json]
  pka obs scrape URL [--out FILE.json]
  pka obs explain ATTRIBUTION.json
  pka obs diff BASELINE.json CURRENT.json [--counters-only]
              [--counter-tol PCT] [--gauge-tol PCT] [--stage-tol PCT]
              [--bench [--bench-tol PCT]] [--error-tol PCT]
  pka obs diff --trend TREND_DIR [--trend-window N] [--stage-tol PCT]
  pka obs trend-push MANIFEST.json TREND_DIR [--trend-cap N]

`stream` runs the bounded-memory online PKS pipeline: the first J kernels
are profiled in detail and clustered exactly like the batch pipeline, then
the tail streams through classification, mini-batch centroid updates,
drift detection and reservoir sampling in O(K*d + reservoir + batch)
memory. `--checkpoint FILE` persists every periodic checkpoint (and the
final state) as resumable `pka.stream_checkpoint/v1` JSON; `--resume`
restarts from that file instead of the beginning, adopting the
checkpoint's embedded configuration (explicit flags still override, but a
true mismatch is refused). `--verify-batch` re-runs
the batch two-level pipeline on the same workload-backed source and fails
unless the selected K matches exactly and projected cycles agree within
1%.

`--shards N` partitions the tail across N independent shard pipelines
placed by a deterministic hash ring and reconciled at end of stream with a
weighted merge + re-cluster; the selection is identical to the
single-pipeline engine and the final checkpoint is byte-identical for any
worker count. `--reshard-at REC[:SHARD:LANE]` forces one live reshard
(state move to another executor lane) once REC records have streamed —
the output is unchanged, which is the point. Sharded checkpoints carry a
`topology` section; `--resume` detects the layout automatically.

`--workers N` fans profiling, clustering and per-representative simulation
out over N threads (0 = one per hardware thread). Results are bitwise
identical for any worker count.

`--attribution-out FILE` (on select, simulate and stream) writes a
`pka.attribution/v1` artifact: per PKS group, its representative's
provenance (kernel id, launch rank, distance to the group mean, weight)
and its signed contribution to the reported projection error — split into
a PKS group-scaling term and a PKP stop-rule term for simulation runs.
The per-group terms sum exactly to the reported error, the artifact is
byte-identical for any `--workers` count, and sharded stream runs add a
per-shard section on top of the merged decomposition. `obs explain`
renders it as a ranked table (worst group first, with bootstrap CIs and
PKP skip ratios) and flags any group past 50% of the total error; feeding
two attribution artifacts to `obs diff` gates on representative swaps and
on error drift past `--error-tol` percentage points (default 0.5).

`serve` hosts the whole methodology as a long-running HTTP/1.1 service
(hand-rolled on std::net, zero external dependencies): POST /v1/sessions
creates batch (select/simulate) or streaming analysis sessions, records
can be fed incrementally as `pka.kernel_record/v1` JSONL via
POST /v1/sessions/{id}/records, GET .../progress serves live
pka.snapshot/v1 lines, GET .../checkpoint and .../attribution serve the
byte-exact artifacts the CLI writes, and DELETE .../{id} is
cancellation-safe teardown: the pipeline stops at the next batch boundary,
emits one resumable teardown checkpoint, and drains its workers before any
state is dropped. Every session shares one process-wide executor
(`--workers`); `--max-sessions` caps concurrently running sessions and
`--retain` bounds how many completed sessions stay inspectable. The
service stops on POST /v1/shutdown.

The service is observable while it runs: GET /metrics serves every
registered counter, gauge, histogram and stage timer in Prometheus text
exposition 0.0.4, GET /v1/sessions/{id}/events streams each new progress
record as server-sent events (terminated by an `event: end` frame when
the session finishes or is deleted), every request is logged to stderr as
one JSON access line carrying a request id that also appears in a
`server.request` trace event (`--trace-out`), and connections that stall
mid-request are dropped with 408 after `--read-timeout-ms` (default
30000). `obs scrape URL` fetches a /metrics endpoint (bare host:port
defaults to the /metrics path) and rewrites it as a
`pka.run_manifest/v1` metrics document, so a live service can be gated
with the same `obs diff` / trend machinery as offline runs.

`--fast-math` lets the SIMD distance/projection kernels reassociate their
reductions across vector lanes. Results are then no longer bitwise equal
to the scalar reference, but every reduction of length d stays within a
2*d*eps relative error bound (eps = 2^-53). Leave it off for golden-file
and parity comparisons.

`trace export` converts a `--trace-out` JSONL file into Chrome
trace-event JSON that opens directly in Perfetto (ui.perfetto.dev) or
chrome://tracing, one lane per executor worker. `obs diff` compares two
`--metrics-out` manifests (counter deltas, gauge drift, stage-timing
ratios, checksum changes) — or, with `--bench`, two bench-medians files —
and exits non-zero when any delta exceeds its threshold; `--counters-only`
skips the machine-dependent stage/wall sections for cross-host CI gating.
`obs trend-push` appends a manifest to a bounded per-commit ring
(`--trend-cap` files, default 16), and `obs diff --trend` scans that ring
for creeping slowdowns: stage timings that rise monotonically across the
trailing `--trend-window` runs (default 4), each step under the single-run
threshold but cumulatively past it.

observability flags (any of them turns collection on; results are
unchanged — observability output is excluded from parity):
  --trace-out PATH    append span/event records to PATH as JSONL
  --metrics-out PATH  write a run_manifest.json (config, seeds, stage
                      timings, counter totals, output checksums)
  --snapshot-out PATH write periodic pka.snapshot/v1 live-status records
                      (throughput, phase, group sizes, reservoir, drift /
                      recluster / checkpoint activity) to PATH as JSONL
  --snapshot-every N  snapshot cadence in stream records (default 100000)
  --progress          mirror snapshots as a stderr ticker
  -v, --verbose       print a per-stage time/counter summary to stderr";

/// Parses the `--workers` flag: absent -> sequential.
fn workers_from(flags: &HashMap<String, String>) -> Result<usize, String> {
    match flags.get("workers") {
        None => Ok(1),
        Some(v) => v
            .parse()
            .map_err(|_| "--workers must be a non-negative integer".to_string()),
    }
}

fn parse_flags(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    const BOOLEAN: &[&str] = &[
        "full",
        "resume",
        "verify-batch",
        "progress",
        "counters-only",
        "bench",
        "fast-math",
    ];
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "-v" || arg == "--verbose" {
            flags.insert("verbose".to_string(), "true".to_string());
            continue;
        }
        let Some(name) = arg.strip_prefix("--") else {
            positional.push(arg.clone());
            continue;
        };
        if BOOLEAN.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok((flags, positional))
}

fn find_workload(flags: &HashMap<String, String>) -> Result<Workload, String> {
    let name = flags
        .get("workload")
        .ok_or("--workload NAME is required")?;
    all_workloads()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown workload `{name}` (see `pka list`)"))
}

fn gpu_from(flags: &HashMap<String, String>) -> Result<GpuConfig, String> {
    match flags.get("gpu").map(String::as_str).unwrap_or("v100") {
        "v100" => Ok(GpuConfig::v100()),
        "rtx2060" => Ok(GpuConfig::rtx2060()),
        "rtx3070" => Ok(GpuConfig::rtx3070()),
        "v100-half" => Ok(GpuConfig::v100_half_sms()),
        other => Err(format!("unknown gpu `{other}`")),
    }
}

fn cmd_list(flags: &HashMap<String, String>) -> Result<(), String> {
    let filter = flags.get("suite").map(|s| s.to_lowercase());
    println!("{:<33} {:<10} {:>10}", "workload", "suite", "kernels");
    for w in all_workloads() {
        let suite = w.suite().to_string();
        if let Some(f) = &filter {
            if !suite.to_lowercase().contains(f) {
                continue;
            }
        }
        println!("{:<33} {:<10} {:>10}", w.name(), suite, w.kernel_count());
    }
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let w = find_workload(flags)?;
    let profiler = Profiler::new(GpuConfig::v100());
    let cost = profiler.profiling_cost(&w);
    let silicon = profiler.silicon_run(&w).map_err(|e| e.to_string())?;
    println!("workload:            {}", w.name());
    println!("suite:               {}", w.suite());
    println!("kernel launches:     {}", w.kernel_count());
    println!(
        "iteration structure: {}",
        w.iteration_hint()
            .map_or("none".to_string(), |p| format!("{p} kernels/iteration"))
    );
    println!(
        "silicon runtime:     {} ({} cycles)",
        format_duration(silicon.total_seconds),
        silicon.total_cycles
    );
    println!(
        "full simulation:     {} (projected)",
        format_duration(projected_sim_seconds(silicon.total_cycles))
    );
    println!(
        "detailed profiling:  {}{}",
        format_duration(cost.detailed_seconds()),
        if cost.detailed_is_intractable() {
            " -> intractable, two-level profiling will be used"
        } else {
            ""
        }
    );
    Ok(())
}

/// Writes the `pka.attribution/v1` artifact for `--attribution-out` (pretty
/// JSON with a trailing newline, so the bytes are shell/jq friendly) and
/// registers its checksum when observability is on. No-op without the flag.
fn write_attribution(
    flags: &HashMap<String, String>,
    attribution: Option<&principal_kernel_analysis::core::ErrorAttribution>,
) -> Result<(), String> {
    let Some(path) = flags.get("attribution-out") else {
        return Ok(());
    };
    let attribution =
        attribution.expect("attribution is computed whenever --attribution-out is present");
    let mut payload = serde_json::to_string_pretty(attribution)
        .map_err(|e| format!("serialise attribution: {e}"))?;
    payload.push('\n');
    std::fs::write(path, &payload).map_err(|e| format!("write {path}: {e}"))?;
    record_checksum("attribution", &payload);
    println!("attribution written to {path}");
    Ok(())
}

fn cmd_select(flags: &HashMap<String, String>) -> Result<(), String> {
    let w = find_workload(flags)?;
    let target: f64 = flags
        .get("target-error")
        .map(|v| v.parse().map_err(|_| "--target-error must be a number"))
        .transpose()?
        .unwrap_or(5.0);
    let config = PkaConfig::default()
        .with_pks(PksConfig::default().with_target_error_pct(target))
        .with_workers(workers_from(flags)?);
    let pka = Pka::new(GpuConfig::v100(), config);
    // `--attribution-out` switches to the attribution-carrying entry point;
    // the selection itself is identical either way.
    let (selection, attribution) = if flags.contains_key("attribution-out") {
        let (selection, attribution) = pka
            .select_kernels_with_attribution(&w)
            .map_err(|e| e.to_string())?;
        (selection, Some(attribution))
    } else {
        (pka.select_kernels(&w).map_err(|e| e.to_string())?, None)
    };

    println!(
        "{}: {} launches -> {} principal kernels (target error {target}%)",
        w.name(),
        w.kernel_count(),
        selection.k()
    );
    println!(
        "projection error {:.2}%, member dispersion {:.2}%",
        selection.error_pct(),
        selection.group_deviation_pct()
    );
    // Clustering diagnostics over the profiled prefix.
    if selection.k() >= 2 {
        let prefix = selection.labels().len().min(2_000);
        let rows: Vec<Vec<f64>> = (0..prefix)
            .map(|i| {
                principal_kernel_analysis::gpu::KernelMetrics::from_descriptor(
                    &w.kernel((i as u64).into()),
                    GpuConfig::v100().generation(),
                )
                .to_feature_vector()
            })
            .collect();
        if let Ok(data) = Matrix::from_rows(&rows) {
            if let Ok(score) = silhouette_score(&data, &selection.labels()[..prefix]) {
                println!("silhouette (first {prefix} kernels): {score:.3}");
            }
        }
    }
    for (i, group) in selection.groups().iter().enumerate() {
        let rep = w.kernel(group.representative());
        println!(
            "  group {i:>2}: kernel {:>8} `{}` x {}",
            group.representative(),
            rep.name(),
            group.count()
        );
    }
    if principal_kernel_analysis::obs::enabled() {
        let canonical = serde_json::to_string(&serde_json::json!({
            "workload": w.name(),
            "selection": selection,
        }))
        .map_err(|e| format!("serialise selection: {e}"))?;
        record_checksum("selection", &canonical);
        let record = principal_kernel_analysis::obs::SnapshotRecord {
            phase: "select".to_string(),
            records: w.kernel_count(),
            selected_k: selection.k() as i64,
            group_counts: selection.groups().iter().map(|g| g.count()).collect(),
            ..Default::default()
        };
        principal_kernel_analysis::obs::emit_snapshot(&record, serde_json::json!({}));
    }
    if let Some(path) = flags.get("out") {
        // The file records which workload it was made for so a later
        // `simulate --selection` cannot silently apply it elsewhere.
        let payload = serde_json::to_string_pretty(&serde_json::json!({
            "workload": w.name(),
            "selection": selection,
        }))
        .map_err(|e| format!("serialise selection: {e}"))?;
        std::fs::write(path, payload).map_err(|e| format!("write {path}: {e}"))?;
        println!("selection written to {path}");
    }
    write_attribution(flags, attribution.as_ref())?;
    Ok(())
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let w = find_workload(flags)?;
    let gpu = gpu_from(flags)?;
    let threshold: f64 = flags
        .get("threshold")
        .map(|v| v.parse().map_err(|_| "--threshold must be a number"))
        .transpose()?
        .unwrap_or(0.25);
    let run_full = flags.contains_key("full");
    let config = PkaConfig::default()
        .with_pkp(PkpConfig::default().with_threshold(threshold))
        .with_workers(workers_from(flags)?);
    let pka = Pka::new(gpu, config);

    // An externally supplied selection (e.g. made on Volta) overrides
    // re-selection — the cross-generation workflow.
    if let Some(path) = flags.get("selection") {
        if flags.contains_key("attribution-out") {
            return Err(
                "--attribution-out needs the selection made in-run; it cannot \
                 attribute a transferred --selection (re-run without --selection)"
                    .to_string(),
            );
        }
        let payload =
            std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let envelope: serde_json::Value =
            serde_json::from_str(&payload).map_err(|e| format!("parse {path}: {e}"))?;
        let made_for = envelope["workload"]
            .as_str()
            .ok_or_else(|| format!("{path} is not a selection file (missing `workload`)"))?;
        if made_for != w.name() {
            return Err(format!(
                "{path} was made for `{made_for}`, not `{}`; re-run `pka select`",
                w.name()
            ));
        }
        let selection: Selection = serde_json::from_value(envelope["selection"].clone())
            .map_err(|e| format!("parse {path}: {e}"))?;
        let report = pka
            .silicon_report_for(&w, &selection)
            .map_err(|e| e.to_string())?;
        println!(
            "{} on {} (transferred selection): error {:.2}%, speedup {:.1}x",
            report.workload, report.gpu, report.error_pct, report.speedup
        );
        return Ok(());
    }

    let (report, attribution) = if flags.contains_key("attribution-out") {
        let (report, attribution) = pka
            .evaluate_with_attribution(&w, run_full)
            .map_err(|e| e.to_string())?;
        (report, Some(attribution))
    } else {
        let report = pka
            .evaluate_in_simulation(&w, run_full)
            .map_err(|e| e.to_string())?;
        (report, None)
    };
    println!("workload: {} on {}", report.workload, pka.gpu().name());
    println!("silicon:  {:>16} cycles", report.silicon_cycles);
    if let (Some(cycles), Some(err)) = (report.fullsim_cycles, report.sim_error_pct) {
        println!("full sim: {cycles:>16} cycles ({err:.1}% vs silicon)");
    }
    println!(
        "PKS:      {:>16} cycles ({:.1}% vs silicon, {} of simulation)",
        report.pks_projected_cycles,
        report.pks_error_pct,
        format_duration(report.pks_hours * 3600.0)
    );
    println!(
        "PKA:      {:>16} cycles ({:.1}% vs silicon, {} of simulation, s = {threshold})",
        report.pka_projected_cycles,
        report.pka_error_pct,
        format_duration(report.pka_hours * 3600.0)
    );
    println!(
        "speedup:  PKS {:.1}x, PKA {:.1}x",
        report.pks_speedup(),
        report.pka_speedup()
    );
    if !report.per_representative.is_empty() {
        println!("per-representative PKP accounting (simulated / projected):");
        println!(
            "  {:>10} {:>16} {:>16} {:>7}",
            "kernel", "simulated", "projected", "sim%"
        );
        for rp in &report.per_representative {
            println!(
                "  {:>10} {:>16} {:>16} {:>6.1}%",
                rp.kernel_id,
                rp.simulated_cycles,
                rp.projected_cycles,
                rp.skip_ratio() * 100.0
            );
        }
    }
    if principal_kernel_analysis::obs::enabled() {
        let canonical = format!(
            "{}:{}:{}:{}",
            report.silicon_cycles,
            report.fullsim_cycles.unwrap_or(0),
            report.pks_projected_cycles,
            report.pka_projected_cycles
        );
        record_checksum("simulation_report", &canonical);
        let per_rep: Vec<serde_json::Value> = report
            .per_representative
            .iter()
            .map(|rp| {
                serde_json::json!({
                    "kernel_id": format!("{}", rp.kernel_id),
                    "simulated_cycles": rp.simulated_cycles,
                    "projected_cycles": rp.projected_cycles,
                    "skip_ratio": rp.skip_ratio(),
                })
            })
            .collect();
        record_report(serde_json::json!({
            "command": "simulate",
            "workload": report.workload.clone(),
            "silicon_cycles": report.silicon_cycles,
            "pks_projected_cycles": report.pks_projected_cycles,
            "pka_projected_cycles": report.pka_projected_cycles,
            "per_representative": serde_json::Value::Array(per_rep),
        }));
        let snapshot = principal_kernel_analysis::obs::SnapshotRecord {
            phase: "simulate".to_string(),
            records: w.kernel_count(),
            selected_k: report.per_representative.len() as i64,
            ..Default::default()
        };
        principal_kernel_analysis::obs::emit_snapshot(&snapshot, serde_json::json!({}));
    }
    write_attribution(flags, attribution.as_ref())?;
    Ok(())
}

/// Parses a positive-integer flag, leaving `config` untouched when absent.
fn int_flag(flags: &HashMap<String, String>, name: &str) -> Result<Option<u64>, String> {
    flags
        .get(name)
        .map(|v| {
            v.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--{name} must be a positive integer"))
        })
        .transpose()
}

/// Parses `--reshard-at REC[:SHARD:LANE]` into a scheduled live reshard
/// (defaults: move shard 0 to the last lane).
fn reshard_from(
    flags: &HashMap<String, String>,
    shards: usize,
) -> Result<Option<(u64, usize, usize)>, String> {
    let Some(spec) = flags.get("reshard-at") else {
        return Ok(None);
    };
    let bad = || format!("--reshard-at `{spec}` must be REC or REC:SHARD:LANE");
    let parts: Vec<&str> = spec.split(':').collect();
    let (at, shard, lane) = match parts.as_slice() {
        [at] => (at.parse().map_err(|_| bad())?, 0usize, shards - 1),
        [at, shard, lane] => (
            at.parse().map_err(|_| bad())?,
            shard.parse().map_err(|_| bad())?,
            lane.parse().map_err(|_| bad())?,
        ),
        _ => return Err(bad()),
    };
    if shard >= shards || lane >= shards {
        return Err(format!(
            "--reshard-at: shard {shard} / lane {lane} out of range for {shards} shards"
        ));
    }
    Ok(Some((at, shard, lane)))
}

fn cmd_stream(flags: &HashMap<String, String>) -> Result<(), String> {
    use principal_kernel_analysis::core::{Executor, TwoLevel, TwoLevelConfig};
    use principal_kernel_analysis::stream::{
        synthetic_workload, Checkpoint, JsonlSource, KernelSource, ShardedCheckpoint,
        ShardedStreamPks, StreamConfig, StreamError, StreamPks, WorkloadSource,
    };

    let gpu = gpu_from(flags)?;
    let spec = flags
        .get("source")
        .ok_or("--source <FILE.jsonl|-|synthetic:N|WORKLOAD> is required")?;

    // A resume adopts the checkpoint's embedded config echo, so the original
    // run's parameters need not be re-specified; explicit flags still apply
    // on top (and the resume paths refuse any true mismatch). The layout is
    // sniffed from the file: a `topology` section marks a sharded
    // checkpoint, plain ones resume through the single-pipeline engine.
    let resume_value = if flags.contains_key("resume") {
        let p = flags
            .get("checkpoint")
            .ok_or("--resume requires --checkpoint FILE.json")?;
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
        let v: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("parse {p}: {e}"))?;
        Some(v)
    } else {
        None
    };
    let resume_is_sharded = resume_value
        .as_ref()
        .is_some_and(|v| v["topology"].as_object().is_some());
    let (resume_cp, resume_sharded_cp) = match &resume_value {
        Some(v) if resume_is_sharded => (
            None,
            Some(ShardedCheckpoint::from_value(v).map_err(|e| e.to_string())?),
        ),
        Some(v) => (
            Some(Checkpoint::from_value(v).map_err(|e| e.to_string())?),
            None,
        ),
        None => (None, None),
    };
    let mut config = match (&resume_cp, &resume_sharded_cp) {
        (Some(cp), _) => StreamConfig::from_value(&cp.config).map_err(|e| e.to_string())?,
        (_, Some(cp)) => StreamConfig::from_value(&cp.config).map_err(|e| e.to_string())?,
        _ => StreamConfig::default(),
    };
    if let Some(j) = int_flag(flags, "prefix")? {
        config = config.with_prefix(j);
    }
    if let Some(n) = int_flag(flags, "checkpoint-every")? {
        config = config.with_checkpoint_every(n);
    }
    if let Some(n) = int_flag(flags, "reservoir")? {
        config = config.with_reservoir(n as usize);
    }
    if let Some(n) = int_flag(flags, "batch")? {
        config = config.with_batch(n as usize);
    }
    let exec = Executor::new(workers_from(flags)?);

    // A workload-backed source keeps the workload around so `--verify-batch`
    // can run the batch two-level pipeline over the same kernels.
    let (mut source, workload): (Box<dyn KernelSource>, Option<Workload>) =
        if let Some(n) = spec.strip_prefix("synthetic:") {
            let n: u64 = n
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("synthetic:N needs a positive integer N")?;
            let w = synthetic_workload(n);
            let src = WorkloadSource::new(w.clone(), Profiler::new(gpu.clone()));
            (Box::new(src), Some(w))
        } else if spec == "-" {
            (Box::new(JsonlSource::stdin()), None)
        } else if std::path::Path::new(spec).is_file() {
            let src = JsonlSource::open(std::path::Path::new(spec)).map_err(|e| e.to_string())?;
            (Box::new(src), None)
        } else if let Some(w) = all_workloads().into_iter().find(|w| w.name() == spec) {
            let src = WorkloadSource::new(w.clone(), Profiler::new(gpu.clone()));
            (Box::new(src), Some(w))
        } else {
            return Err(format!(
                "--source `{spec}` is neither a file, `-`, `synthetic:N`, nor a workload name"
            ));
        };

    let ckpt_path = flags.get("checkpoint").map(std::path::PathBuf::from);

    // `--shards N` (or resuming a sharded checkpoint) switches to the
    // sharded multi-stream engine; selection results are identical to the
    // single-pipeline engine on the same records.
    let shards_flag = int_flag(flags, "shards")?.map(|n| n as usize);
    let shards = match (shards_flag, &resume_sharded_cp) {
        (Some(n), _) => Some(n),
        (None, Some(cp)) => Some(cp.shards),
        (None, None) => None,
    };
    if shards.is_none() && flags.contains_key("reshard-at") {
        return Err("--reshard-at requires --shards N".to_string());
    }

    let (report, selection, checkpoint_json, shard_summary, attribution) = match shards {
        Some(n) => {
            let mut engine = ShardedStreamPks::new(config, n).with_executor(exec);
            if let Some((at, shard, lane)) = reshard_from(flags, n)? {
                engine = engine.with_reshard(at, shard, lane);
            }
            let on_checkpoint = |cp: &ShardedCheckpoint| -> Result<(), StreamError> {
                match &ckpt_path {
                    Some(p) => cp.write_to(p),
                    None => Ok(()),
                }
            };
            let outcome = match &resume_sharded_cp {
                Some(cp) => engine.resume(&mut *source, cp, on_checkpoint),
                None => engine.run(&mut *source, on_checkpoint),
            }
            .map_err(|e| e.to_string())?;
            if let Some(p) = &ckpt_path {
                outcome
                    .final_checkpoint
                    .write_to(p)
                    .map_err(|e| e.to_string())?;
            }
            let json = outcome.final_checkpoint.to_json();
            (
                outcome.report,
                outcome.selection,
                json,
                Some((outcome.shard_records, outcome.map_hash)),
                outcome.attribution,
            )
        }
        None => {
            let stream = StreamPks::new(config).with_executor(exec);
            let on_checkpoint = |cp: &Checkpoint| -> Result<(), StreamError> {
                match &ckpt_path {
                    Some(p) => cp.write_to(p),
                    None => Ok(()),
                }
            };
            let outcome = match &resume_cp {
                Some(cp) => stream.resume(&mut *source, cp, on_checkpoint),
                None => stream.run(&mut *source, on_checkpoint),
            }
            .map_err(|e| e.to_string())?;
            if let Some(p) = &ckpt_path {
                outcome
                    .final_checkpoint
                    .write_to(p)
                    .map_err(|e| e.to_string())?;
            }
            let json = outcome.final_checkpoint.to_json();
            (
                outcome.report,
                outcome.selection,
                json,
                None,
                outcome.attribution,
            )
        }
    };
    let report = &report;
    println!("stream:   {spec}");
    println!(
        "records:  {} ({} profiled in detail, {} classified)",
        report.records,
        report.prefix,
        report.records - report.prefix
    );
    println!("PKS:      K = {} groups", report.selected_k);
    println!("projected: {:>15} cycles", report.projected_cycles);
    println!(
        "tail:     {} drift firings, {} re-clusters, {} checkpoints, max {} records buffered",
        report.drifts, report.reclusters, report.checkpoints, report.max_buffered
    );
    for (i, (group, &count)) in selection
        .groups()
        .iter()
        .zip(&report.group_counts)
        .enumerate()
    {
        println!(
            "  group {i:>2}: kernel {:>8} x {count}",
            group.representative()
        );
    }
    if let Some((shard_records, map_hash)) = &shard_summary {
        println!(
            "shards:   {} lanes, map hash {map_hash:#018x}",
            shard_records.len()
        );
        for (i, n) in shard_records.iter().enumerate() {
            println!("  shard {i:>2}: {n} kernels");
        }
    }
    if let Some(p) = &ckpt_path {
        println!("checkpoint written to {}", p.display());
    }
    write_attribution(flags, Some(&attribution))?;

    if flags.contains_key("verify-batch") {
        let w = workload.as_ref().ok_or(
            "--verify-batch needs a workload-backed --source (synthetic:N or a workload name)",
        )?;
        let two = TwoLevel::new(
            TwoLevelConfig::default()
                .with_pks(config.pks())
                .with_detailed_prefix_cap(config.prefix()),
        )
        .with_executor(exec);
        let batch = two
            .analyze(w, &Profiler::new(gpu.clone()))
            .map_err(|e| e.to_string())?;
        let batch_projected = batch.projected_cycles();
        let rel_pct = 100.0 * (batch_projected as f64 - report.projected_cycles as f64).abs()
            / batch_projected.max(1) as f64;
        println!(
            "batch parity: K {} vs {} (stream), projected {} vs {} ({rel_pct:.4}% apart)",
            batch.k(),
            report.selected_k,
            batch_projected,
            report.projected_cycles
        );
        if batch.k() != report.selected_k {
            return Err(format!(
                "stream selected K={}, batch pipeline selected K={}",
                report.selected_k,
                batch.k()
            ));
        }
        if rel_pct > 1.0 {
            return Err(format!(
                "stream projected cycles diverge from batch by {rel_pct:.4}% (> 1%)"
            ));
        }
    }

    if principal_kernel_analysis::obs::enabled() {
        record_checksum("stream_checkpoint", &checkpoint_json);
        let mut value = report.to_value();
        if let serde_json::Value::Object(m) = &mut value {
            m.insert(
                "command".to_string(),
                serde_json::Value::String("stream".to_string()),
            );
            m.insert(
                "source".to_string(),
                serde_json::Value::String(spec.clone()),
            );
            if let Some((shard_records, map_hash)) = &shard_summary {
                m.insert("shards".to_string(), serde_json::json!(shard_records));
                m.insert(
                    "map_hash".to_string(),
                    serde_json::Value::String(format!("{map_hash:#018x}")),
                );
            }
        }
        record_report(value);
    }
    Ok(())
}

/// `pka serve`: host the analysis pipelines as a long-running HTTP
/// service. Blocks until `POST /v1/shutdown`, then tears every session
/// down (cancel at the next batch boundary, drain workers) and returns.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use principal_kernel_analysis::server::{PkaServer, ServerConfig};

    let mut config = ServerConfig::default()
        .with_addr(
            flags
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:8077".to_string()),
        )
        .with_workers(workers_from(flags)?);
    if let Some(n) = int_flag(flags, "http-threads")? {
        config = config.with_http_threads(n as usize);
    }
    if let Some(n) = int_flag(flags, "max-sessions")? {
        config = config.with_max_active_sessions(n as usize);
    }
    if let Some(n) = int_flag(flags, "retain")? {
        config = config.with_retain_completed(n as usize);
    }
    if let Some(n) = int_flag(flags, "feed-capacity")? {
        config = config.with_feed_capacity(n as usize);
    }
    if let Some(ms) = int_flag(flags, "read-timeout-ms")? {
        config = config.with_read_timeout_ms(ms);
    }
    // The service always collects: `GET /metrics`, the access log and the
    // `server.*` metrics must reflect live traffic without requiring an
    // observability flag. Collection is proven result-neutral (the parity
    // suites run with it on), so there is no reason to serve blind.
    principal_kernel_analysis::obs::enable();
    let server = PkaServer::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().map_err(|e| format!("local addr: {e}"))?;
    // Flushed eagerly: supervisors (and the CI smoke test) scrape this
    // line from a redirected log while the process is still running.
    println!("pka-server listening on http://{addr}");
    use std::io::Write as _;
    std::io::stdout()
        .flush()
        .map_err(|e| format!("flush stdout: {e}"))?;
    server.run().map_err(|e| format!("serve: {e}"))?;
    println!("pka-server stopped");
    Ok(())
}

/// `pka trace export TRACE.jsonl [--out FILE.json]`: convert a
/// `pka.trace/v1` JSONL file into Chrome trace-event JSON that loads
/// directly in Perfetto / `about:tracing`.
fn cmd_trace(flags: &HashMap<String, String>, positional: &[String]) -> Result<(), String> {
    match positional.first().map(String::as_str) {
        Some("export") => {}
        Some(other) => return Err(format!("unknown trace subcommand `{other}`\n{USAGE}")),
        None => return Err(format!("trace needs a subcommand (export)\n{USAGE}")),
    }
    let input = positional
        .get(1)
        .ok_or("trace export needs an input TRACE.jsonl path")?;
    let jsonl =
        std::fs::read_to_string(input).map_err(|e| format!("read {input}: {e}"))?;
    let chrome = principal_kernel_analysis::obs::chrome_trace(&jsonl)
        .map_err(|e| format!("{input}: {e}"))?;
    let rendered = serde_json::to_string_pretty(&chrome)
        .map_err(|e| format!("serialise chrome trace: {e}"))?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("write {path}: {e}"))?;
            let events = chrome["traceEvents"].as_array().map_or(0, Vec::len);
            eprintln!("pka: wrote {events} trace events to {path}");
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

/// `pka obs diff BASE CURRENT [...]`: compare two run manifests (or two
/// bench medians files with `--bench`) and fail on regressions past the
/// thresholds — the CI regression gate.
fn cmd_obs(flags: &HashMap<String, String>, positional: &[String]) -> Result<(), String> {
    use principal_kernel_analysis::obs::{
        diff_bench, diff_manifests, trend_load, trend_push, trend_report, DiffThresholds,
        TrendThresholds,
    };
    let read = |path: &String| -> Result<serde_json::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let pct_flag = |name: &str, default: f64| -> Result<f64, String> {
        flags
            .get(name)
            .map(|v| {
                v.parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && *p >= 0.0)
                    .ok_or_else(|| format!("--{name} must be a non-negative percentage"))
            })
            .transpose()
            .map(|p| p.unwrap_or(default))
    };
    match positional.first().map(String::as_str) {
        Some("diff") => {}
        Some("explain") => {
            let path = positional
                .get(1)
                .ok_or("obs explain needs an ATTRIBUTION.json path")?;
            let doc = read(path)?;
            for line in principal_kernel_analysis::obs::explain_attribution(&doc)? {
                println!("{line}");
            }
            return Ok(());
        }
        Some("scrape") => {
            let url = positional
                .get(1)
                .ok_or("obs scrape needs a URL (e.g. http://127.0.0.1:8077/metrics)")?;
            let text = http_get_text(url)?;
            let doc = principal_kernel_analysis::obs::parse_exposition(&text)
                .map_err(|e| format!("parse exposition from {url}: {e}"))?;
            let families = ["counters", "gauges", "histograms", "stages"]
                .iter()
                .map(|s| doc[*s].as_object().map_or(0, |m| m.len()))
                .sum::<usize>();
            let mut rendered = serde_json::to_string_pretty(&doc)
                .map_err(|e| format!("serialise scrape: {e}"))?;
            rendered.push('\n');
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, &rendered)
                        .map_err(|e| format!("write {path}: {e}"))?;
                    eprintln!("pka: scraped {families} metric series into {path}");
                }
                None => print!("{rendered}"),
            }
            return Ok(());
        }
        Some("trend-push") => {
            let manifest_path = positional
                .get(1)
                .ok_or("obs trend-push needs a MANIFEST.json path")?;
            let dir = positional
                .get(2)
                .ok_or("obs trend-push needs a TREND_DIR path")?;
            let cap = int_flag(flags, "trend-cap")?.unwrap_or(16) as usize;
            let manifest = read(manifest_path)?;
            let written = trend_push(std::path::Path::new(dir), &manifest, cap)
                .map_err(|e| format!("trend-push {dir}: {e}"))?;
            println!("trend ring: appended {}", written.display());
            return Ok(());
        }
        Some(other) => return Err(format!("unknown obs subcommand `{other}`\n{USAGE}")),
        None => {
            return Err(format!(
                "obs needs a subcommand (diff, explain, scrape, trend-push)\n{USAGE}"
            ))
        }
    }
    if let Some(dir) = flags.get("trend") {
        // Trend mode: scan the bounded manifest ring for creeping
        // slowdowns the single-run gate cannot see.
        let runs = trend_load(std::path::Path::new(dir))
            .map_err(|e| format!("trend ring {dir}: {e}"))?;
        let defaults = TrendThresholds::default();
        let window = match int_flag(flags, "trend-window")? {
            Some(n) if n >= 2 => n as usize,
            Some(_) => return Err("--trend-window must be at least 2".to_string()),
            None => defaults.window,
        };
        let thresholds = TrendThresholds {
            stage_pct: pct_flag("stage-tol", defaults.stage_pct)?,
            window,
        };
        let report = trend_report(&runs, &thresholds)?;
        println!(
            "trend ring {dir}: {} run(s), window {window}",
            runs.len()
        );
        for line in report.lines() {
            println!("{line}");
        }
        return match report.regressions() {
            0 => Ok(()),
            n => Err(format!("{n} creeping slowdown(s) across the trend window")),
        };
    }
    let (Some(base_path), Some(cur_path)) = (positional.get(1), positional.get(2)) else {
        return Err("obs diff needs BASELINE and CURRENT file paths".to_string());
    };
    let base = read(base_path)?;
    let current = read(cur_path)?;
    let defaults = DiffThresholds::default();
    // Attribution artifacts are sniffed by schema so the same `obs diff`
    // entry point gates accuracy drift next to the performance manifests.
    let attribution_schema = principal_kernel_analysis::obs::ATTRIBUTION_SCHEMA;
    let report = if base["schema"].as_str() == Some(attribution_schema)
        || current["schema"].as_str() == Some(attribution_schema)
    {
        principal_kernel_analysis::obs::diff_attributions(
            &base,
            &current,
            pct_flag("error-tol", 0.5)?,
        )?
    } else if flags.contains_key("bench") {
        diff_bench(&base, &current, pct_flag("bench-tol", defaults.stage_pct)?)?
    } else {
        let thresholds = DiffThresholds {
            counter_pct: pct_flag("counter-tol", defaults.counter_pct)?,
            gauge_pct: pct_flag("gauge-tol", defaults.gauge_pct)?,
            stage_pct: pct_flag("stage-tol", defaults.stage_pct)?,
        };
        diff_manifests(&base, &current, &thresholds, flags.contains_key("counters-only"))?
    };
    for line in report.lines() {
        println!("{line}");
    }
    match report.regressions() {
        0 => Ok(()),
        n => Err(format!("{n} regression(s) past threshold")),
    }
}

/// One plain HTTP/1.1 GET over `std::net` (no external client, like the
/// server itself). A URL without a path defaults to `/metrics`.
fn http_get_text(url: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("only http:// URLs are supported, got `{url}`"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/metrics"),
    };
    if authority.is_empty() {
        return Err(format!("`{url}` has no host"));
    }
    let mut stream = std::net::TcpStream::connect(authority)
        .map_err(|e| format!("connect {authority}: {e}"))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send request to {authority}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read response from {authority}: {e}"))?;
    let text =
        String::from_utf8(raw).map_err(|_| format!("{url}: response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{url}: malformed HTTP response"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!("GET {url}: HTTP {status}"));
    }
    Ok(body.to_string())
}
