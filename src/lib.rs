//! # Principal Kernel Analysis
//!
//! A Rust reproduction of *"Principal Kernel Analysis: A Tractable
//! Methodology to Simulate Scaled GPU Workloads"* (MICRO 2021) — the
//! complete system: the PKA methodology itself plus every substrate it
//! runs on (a cycle-level GPU timing simulator, an analytical silicon
//! model, a two-level profiler, a from-scratch ML stack, and synthetic
//! reproductions of all 147 studied workloads).
//!
//! This crate is a facade: it re-exports the workspace crates under short
//! module names so applications can depend on one crate.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `pka-core` | PKS, PKP, two-level profiling, the PKA pipeline |
//! | [`gpu`] | `pka-gpu` | Architectures, kernels, occupancy, silicon model |
//! | [`sim`] | `pka-sim` | The cycle-level timing simulator |
//! | [`workloads`] | `pka-workloads` | The 147 studied workloads |
//! | [`profile`] | `pka-profile` | Nsight-style two-level profilers |
//! | [`ml`] | `pka-ml` | PCA, K-Means, hierarchical clustering, classifiers |
//! | [`stats`] | `pka-stats` | Online/rolling statistics and error metrics |
//! | [`baselines`] | `pka-baselines` | TBPoint, first-N instructions, single-iteration |
//! | [`stream`] | `pka-stream` | Bounded-memory streaming ingestion and online PKS |
//! | [`server`] | `pka-server` | Long-running HTTP analysis service with session objects |
//!
//! # Quickstart
//!
//! ```
//! use principal_kernel_analysis::core::{Pka, PkaConfig};
//! use principal_kernel_analysis::gpu::GpuConfig;
//! use principal_kernel_analysis::workloads::rodinia;
//!
//! let workload = rodinia::workloads()
//!     .into_iter()
//!     .find(|w| w.name() == "gauss_208")
//!     .expect("exists");
//! let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
//! let report = pka.silicon_pks_report(&workload)?;
//! println!(
//!     "{}: {} kernels -> {} groups, {:.1}% error, {:.0}x faster",
//!     report.workload, report.kernels_total, report.k, report.error_pct, report.speedup
//! );
//! assert!(report.error_pct < 6.0);
//! # Ok::<(), principal_kernel_analysis::core::PkaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pka_baselines as baselines;
pub use pka_core as core;
pub use pka_gpu as gpu;
pub use pka_ml as ml;
pub use pka_obs as obs;
pub use pka_profile as profile;
pub use pka_server as server;
pub use pka_sim as sim;
pub use pka_stats as stats;
pub use pka_stream as stream;
pub use pka_workloads as workloads;
