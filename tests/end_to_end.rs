//! Cross-crate integration tests: the full PKA pipeline driven through the
//! facade, on workloads small enough for debug-mode simulation.

use principal_kernel_analysis::core::{Pka, PkaConfig, PkpConfig, PksConfig};
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::workloads::{parboil, rodinia, Suite, Workload};

fn find(suite: Vec<Workload>, name: &str) -> Workload {
    suite.into_iter().find(|w| w.name() == name).expect("known workload")
}

fn tiny_gpu() -> GpuConfig {
    GpuConfig::builder("itest8").num_sms(8).build().expect("valid")
}

#[test]
fn pipeline_end_to_end_on_gaussian() {
    let pka = Pka::new(tiny_gpu(), PkaConfig::default());
    let w = find(rodinia::workloads(), "gauss_208");
    let report = pka.evaluate_in_simulation(&w, true).expect("pipeline runs");

    // The three headline properties, in miniature:
    // (1) sampled simulation costs far less than full simulation,
    assert!(report.pka_speedup() > 20.0, "pka speedup {}", report.pka_speedup());
    // (2) the sampled estimate stays close to the full-simulation estimate,
    let full = report.fullsim_cycles.expect("full sim ran") as f64;
    let drift = (report.pks_projected_cycles as f64 - full).abs() / full * 100.0;
    assert!(drift < 25.0, "PKS drifts {drift}% from full simulation");
    // (3) and the PKA error versus silicon is in the same regime as the
    //     simulator's own error.
    let sim_err = report.sim_error_pct.expect("full sim ran");
    assert!(
        report.pka_error_pct < sim_err + 25.0,
        "pka {} vs sim {}",
        report.pka_error_pct,
        sim_err
    );
}

#[test]
fn selection_is_deterministic_across_pipelines() {
    let w = find(parboil::workloads(), "histo");
    let a = Pka::new(GpuConfig::v100(), PkaConfig::default())
        .select_kernels(&w)
        .expect("selects");
    let b = Pka::new(GpuConfig::v100(), PkaConfig::default())
        .select_kernels(&w)
        .expect("selects");
    assert_eq!(a, b);
}

#[test]
fn volta_selection_transfers_to_other_generations() {
    let w = find(rodinia::workloads(), "srad_v1");
    let volta = Pka::new(GpuConfig::v100(), PkaConfig::default());
    let selection = volta.select_kernels(&w).expect("selects");
    for gpu in [GpuConfig::rtx2060(), GpuConfig::rtx3070()] {
        let pipeline = Pka::new(gpu, PkaConfig::default());
        let report = pipeline
            .silicon_report_for(&w, &selection)
            .expect("transfers");
        assert!(
            report.error_pct < 15.0,
            "{}: transfer error {}",
            report.gpu,
            report.error_pct
        );
        assert!(report.speedup > 1.0);
    }
}

#[test]
fn tighter_pks_target_never_selects_fewer_groups() {
    let w = find(rodinia::workloads(), "nw");
    let loose = Pka::new(
        GpuConfig::v100(),
        PkaConfig::default().with_pks(PksConfig::default().with_target_error_pct(25.0)),
    )
    .select_kernels(&w)
    .expect("selects");
    let tight = Pka::new(
        GpuConfig::v100(),
        PkaConfig::default().with_pks(PksConfig::default().with_target_error_pct(2.0)),
    )
    .select_kernels(&w)
    .expect("selects");
    assert!(tight.k() >= loose.k(), "{} < {}", tight.k(), loose.k());
}

#[test]
fn stricter_pkp_threshold_costs_more_simulation() {
    let w = find(rodinia::workloads(), "bfs65536");
    let loose = Pka::new(
        tiny_gpu(),
        PkaConfig::default().with_pkp(PkpConfig::default().with_threshold(2.5)),
    )
    .evaluate_in_simulation(&w, false)
    .expect("runs");
    let strict = Pka::new(
        tiny_gpu(),
        PkaConfig::default().with_pkp(PkpConfig::default().with_threshold(0.025)),
    )
    .evaluate_in_simulation(&w, false)
    .expect("runs");
    assert!(
        strict.pka_simulated_cycles >= loose.pka_simulated_cycles,
        "strict {} < loose {}",
        strict.pka_simulated_cycles,
        loose.pka_simulated_cycles
    );
}

#[test]
fn every_suite_is_represented_and_selectable() {
    // One cheap workload per suite goes through selection end to end.
    let picks = [
        ("nn", Suite::Rodinia),
        ("mri", Suite::Parboil),
        ("atax", Suite::Polybench),
        ("cutlass_sgemm_1024x1024x1024", Suite::Cutlass),
        ("deepbench_gemm_infer_2", Suite::Deepbench),
    ];
    let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
    for (name, suite) in picks {
        let all = principal_kernel_analysis::workloads::all_workloads();
        let w = all.iter().find(|w| w.name() == name).expect("exists");
        assert_eq!(w.suite(), suite);
        let sel = pka.select_kernels(w).expect("selects");
        assert!(sel.k() >= 1);
        assert_eq!(sel.kernels_represented(), w.kernel_count());
    }
}

#[test]
fn dram_utilization_projects_alongside_cycles() {
    // Table 4's last columns: PKA projects DRAM utilisation too.
    let pka = Pka::new(tiny_gpu(), PkaConfig::default());
    let w = find(rodinia::workloads(), "srad_v1");
    let report = pka.evaluate_in_simulation(&w, true).expect("runs");
    let full = report.fullsim_dram_util_pct.expect("full sim ran");
    assert!(
        (report.pka_dram_util_pct - full).abs() < 25.0,
        "pka dram {} vs full {}",
        report.pka_dram_util_pct,
        full
    );
}
