//! Live-telemetry acceptance for `pka-server`: the SSE progress stream
//! (`GET /v1/sessions/{id}/events`) must be byte-consistent with the
//! session's progress ring — a mid-stream subscriber sees a gapless,
//! strictly-seq-increasing suffix of the stamped checkpoint lines and
//! the stream terminates cleanly on `DELETE` — and `/metrics` scraped
//! over HTTP mid-session must parse and reflect the session registry.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::obs;
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::server::{PkaServer, ServerConfig};
use principal_kernel_analysis::stream::{synthetic_workload, KernelSource, WorkloadSource};
use serde_json::{json, Value};

// ---------------------------------------------------------------------------
// Raw-socket helpers (mirroring tests/server_sessions.rs)
// ---------------------------------------------------------------------------

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("length");
        }
    }
    let mut out = vec![0u8; content_length];
    reader.read_exact(&mut out).expect("body");
    (status, String::from_utf8(out).expect("utf8"))
}

fn export_lines(n: u64, prefix: u64) -> String {
    let mut src = WorkloadSource::new(synthetic_workload(n), Profiler::new(GpuConfig::v100()));
    let mut lines = String::new();
    let mut i = 0u64;
    while let Some(rec) = src.next_record(i < prefix).expect("export record") {
        lines.push_str(&rec.to_jsonl().to_string());
        lines.push('\n');
        i += 1;
    }
    lines
}

/// One parsed server-sent event: `(event name or "message", data lines
/// joined)`. Comment frames (keep-alives) are skipped.
#[derive(Debug, PartialEq)]
struct SseEvent {
    name: String,
    data: String,
}

/// Opens the events stream and returns a reader positioned after the
/// response headers.
fn subscribe(addr: SocketAddr, id: &str) -> BufReader<TcpStream> {
    let mut stream = TcpStream::connect(addr).expect("connect sse");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    write!(
        stream,
        "GET /v1/sessions/{id}/events HTTP/1.1\r\nHost: t\r\nAccept: text/event-stream\r\n\r\n"
    )
    .expect("send subscribe");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("sse status");
    assert!(
        status_line.starts_with("HTTP/1.1 200"),
        "events subscribe: {status_line}"
    );
    let mut saw_sse_type = false;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("sse header");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if h.to_ascii_lowercase() == "content-type: text/event-stream" {
            saw_sse_type = true;
        }
    }
    assert!(saw_sse_type, "events response must be text/event-stream");
    reader
}

/// Reads SSE frames until the stream's EOF, dropping keep-alive comments.
fn read_events(reader: &mut BufReader<TcpStream>) -> Vec<SseEvent> {
    let mut events = Vec::new();
    let mut name = String::from("message");
    let mut data: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("sse frame line");
        if n == 0 {
            assert!(
                data.is_empty(),
                "stream ended mid-frame: {data:?}"
            );
            return events;
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            if !data.is_empty() {
                events.push(SseEvent {
                    name: std::mem::replace(&mut name, "message".to_string()),
                    data: data.join("\n"),
                });
                data.clear();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("data: ") {
            data.push(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("event: ") {
            name = rest.to_string();
        } else {
            assert!(
                line.starts_with(':'),
                "unexpected SSE line: `{line}`"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The live-session scenario
// ---------------------------------------------------------------------------

/// Mid-stream SSE subscribe + `/metrics` over HTTP + clean termination on
/// DELETE, in one scenario (one test, so the global metric registry is
/// not shared across concurrently running tests in this binary).
#[test]
fn events_stream_is_byte_consistent_with_the_progress_ring() {
    obs::enable();
    let lines = export_lines(12_000, 150);
    let server = PkaServer::bind(ServerConfig::default()).expect("bind");
    let addr = server.addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("run"));

        let (status, body) = request(
            addr,
            "POST",
            "/v1/sessions",
            &json!({
                "mode": "stream",
                "source": "feed",
                "prefix": 150,
                "checkpoint_every": 500,
                "reservoir": 128,
                "batch": 64,
            })
            .to_string(),
        );
        assert_eq!(status, 200, "create session: {body}");
        let id = serde_json::from_str::<Value>(&body).expect("create json")["id"]
            .as_str()
            .expect("session id")
            .to_string();

        // First half of the stream, then wait until the ring holds some
        // stamped checkpoint lines — the subscriber below starts
        // mid-stream, with a backlog.
        let half: String = lines.lines().take(6_000).flat_map(|l| [l, "\n"]).collect();
        let (status, body) = request(addr, "POST", &format!("/v1/sessions/{id}/records"), &half);
        assert_eq!(status, 200, "{body}");
        let stamped = |progress: &str| {
            progress
                .lines()
                .filter(|l| l.contains("\"seq\""))
                .count()
        };
        let mut backlog = 0;
        for _ in 0..6_000 {
            let (_, progress) = request(addr, "GET", &format!("/v1/sessions/{id}/progress"), "");
            backlog = stamped(&progress);
            if backlog >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(backlog >= 2, "session never produced a progress backlog");

        // Subscribe, then keep the stream alive while more records flow.
        let mut sse = subscribe(addr, &id);

        // Mid-session scrape: valid exposition, live session registry.
        let (status, metrics) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        let doc = obs::parse_exposition(&metrics).expect("mid-session scrape parses");
        assert_eq!(doc["gauges"]["pka_server_sessions_active"], json!(1));
        assert!(
            doc["counters"]["pka_server_sessions_created_total"]
                .as_u64()
                .is_some_and(|n| n >= 1),
            "created counter missing: {metrics}"
        );

        // Second half arrives while the subscriber is attached; once the
        // worker has consumed everything, DELETE tears the session down
        // and must end the stream.
        let rest: String = lines.lines().skip(6_000).flat_map(|l| [l, "\n"]).collect();
        let (status, body) = request(addr, "POST", &format!("/v1/sessions/{id}/records"), &rest);
        assert_eq!(status, 200, "{body}");
        for _ in 0..6_000 {
            let (_, body) = request(addr, "GET", &format!("/v1/sessions/{id}"), "");
            let v: Value = serde_json::from_str(&body).expect("describe json");
            if v["records"].as_u64().unwrap_or(0) >= 12_000 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let (status, body) = request(addr, "DELETE", &format!("/v1/sessions/{id}"), "");
        assert_eq!(status, 200, "{body}");

        // Drain the whole SSE stream to EOF.
        let events = read_events(&mut sse);

        // Frame shape: snapshot header first, then stamped data frames,
        // then exactly one terminal `end` frame carrying the status.
        assert!(
            events.len() >= 4,
            "expected header + checkpoints + end, got {events:?}"
        );
        assert_eq!(
            events[0],
            SseEvent {
                name: "message".to_string(),
                data: "{\"schema\":\"pka.snapshot/v1\",\"type\":\"header\"}".to_string(),
            }
        );
        let end = events.last().expect("at least the end frame");
        assert_eq!(end.name, "end");
        assert_eq!(
            serde_json::from_str::<Value>(&end.data).expect("end payload")["status"],
            json!("cancelled")
        );

        // Data frames: strictly increasing, gapless seq.
        let seqs: Vec<u64> = events[1..events.len() - 1]
            .iter()
            .map(|e| {
                assert_eq!(e.name, "message", "unexpected frame {e:?}");
                serde_json::from_str::<Value>(&e.data).expect("snapshot json")["seq"]
                    .as_u64()
                    .unwrap_or_else(|| panic!("unstamped data frame: {}", e.data))
            })
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[1] == w[0] + 1),
            "seq must increase gaplessly: {seqs:?}"
        );

        // Byte consistency: the data frames are exactly the stamped suffix
        // of the final progress ring (here the full ring — nothing was
        // evicted), byte for byte.
        let (status, progress) =
            request(addr, "GET", &format!("/v1/sessions/{id}/progress"), "");
        assert_eq!(status, 200);
        let ring: Vec<&str> = progress
            .lines()
            .filter(|l| l.contains("\"seq\""))
            .collect();
        let frames: Vec<&str> = events[1..events.len() - 1]
            .iter()
            .map(|e| e.data.as_str())
            .collect();
        assert_eq!(
            frames,
            ring[ring.len() - frames.len()..],
            "SSE data frames must be a byte-exact suffix of the progress ring"
        );

        // A post-mortem subscriber gets the ring replay and an immediate
        // end frame — no waiting on a dead session.
        let mut replay = subscribe(addr, &id);
        let replayed = read_events(&mut replay);
        assert_eq!(
            replayed.last().map(|e| e.name.as_str()),
            Some("end"),
            "terminal session must end the stream immediately"
        );
        assert_eq!(replayed.len() - 2, ring.len(), "full-ring replay");

        // Unknown sessions 404 instead of hanging a stream open.
        let (status, _) = request(addr, "GET", "/v1/sessions/nope/events", "");
        assert_eq!(status, 404);

        let (status, _) = request(addr, "POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.join().expect("server thread");
    });
}
