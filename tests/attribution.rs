//! Error-attribution integration tests: the `pka.attribution/v1` artifact
//! driven through the facade, across the batch, streaming and sharded
//! engines.
//!
//! The contract under test: per-group signed contributions sum exactly
//! (1e-9 relative) to the reported projection error, the artifact is
//! byte-identical for any worker count and for sharded-vs-single runs
//! (modulo the sharded `shards` section), and the `obs` layer's explain /
//! diff entry points agree with the core writer on the schema id.

use principal_kernel_analysis::core::{Pka, PkaConfig, Selection};
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::stream::{
    synthetic_workload, Checkpoint, ShardedCheckpoint, ShardedStreamPks, StreamConfig,
    StreamError, StreamPks, WorkloadSource,
};
use principal_kernel_analysis::workloads::{rodinia, Workload};
use principal_kernel_analysis::{core, obs, profile::Profiler};

fn find(suite: Vec<Workload>, name: &str) -> Workload {
    suite.into_iter().find(|w| w.name() == name).expect("known workload")
}

fn tiny_gpu() -> GpuConfig {
    GpuConfig::builder("itest8").num_sms(8).build().expect("valid")
}

#[test]
fn core_and_obs_agree_on_the_schema_id() {
    assert_eq!(core::ATTRIBUTION_SCHEMA, obs::ATTRIBUTION_SCHEMA);
    assert_eq!(core::ATTRIBUTION_SCHEMA, "pka.attribution/v1");
}

#[test]
fn batch_simulation_attribution_sums_to_the_report_errors() {
    let pka = Pka::new(tiny_gpu(), PkaConfig::default());
    let w = find(rodinia::workloads(), "gauss_208");
    let (report, attribution) = pka
        .evaluate_with_attribution(&w, false)
        .expect("pipeline runs");
    attribution.verify_sums().expect("contributions sum to totals");
    assert_eq!(attribution.kind, "simulation");
    assert_eq!(attribution.workload, w.name());
    // The signed totals reproduce the report's unsigned headline errors.
    let pks: f64 = attribution.groups.iter().map(|g| g.pks_term_pct).sum();
    assert!(
        (pks.abs() - report.pks_error_pct).abs() <= 1e-9 * report.pks_error_pct.max(1.0),
        "sum of PKS terms {pks} vs reported {}",
        report.pks_error_pct
    );
    // The report path and the attribution path must not diverge: the same
    // selection, silicon truth and projections feed both.
    let total: f64 = attribution
        .groups
        .iter()
        .map(|g| g.pks_term_pct + g.pkp_term_pct.unwrap_or(0.0))
        .sum();
    assert!(
        (total.abs() - report.pka_error_pct).abs() <= 1e-9 * report.pka_error_pct.max(1.0),
        "sum of PKS+PKP terms {total} vs reported {}",
        report.pka_error_pct
    );
}

#[test]
fn selection_attribution_matches_selection_error_and_round_trips() {
    let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
    let w = find(rodinia::workloads(), "srad_v1");
    let (selection, attribution) = pka
        .select_kernels_with_attribution(&w)
        .expect("selection runs");
    attribution.verify_sums().expect("contributions sum to totals");
    assert_eq!(attribution.kind, "selection");
    assert_eq!(attribution.groups.len(), selection.k());
    assert!(
        (attribution.pks_err_pct - selection.error_pct()).abs() <= 1e-9,
        "artifact error {} vs selection {}",
        attribution.pks_err_pct,
        selection.error_pct()
    );
    // Serde round-trip through the canonical JSON form is lossless.
    let value = serde_json::to_value(&attribution).expect("serialises");
    assert_eq!(value["schema"].as_str(), Some(core::ATTRIBUTION_SCHEMA));
    let back: core::ErrorAttribution =
        serde_json::from_value(value.clone()).expect("deserialises");
    assert_eq!(
        serde_json::to_string(&back).expect("re-serialises"),
        serde_json::to_string(&attribution).expect("serialises"),
        "round-trip is byte-identical"
    );
    // The selection itself is unchanged by asking for attribution.
    let plain = pka.select_kernels(&w).expect("selects");
    assert_eq!(plain, selection);
}

#[test]
fn stream_attribution_is_byte_identical_for_any_worker_count() {
    let w = synthetic_workload(1_500);
    let config = StreamConfig::default().with_prefix(200);
    let run = |workers: usize| {
        let mut source = WorkloadSource::new(w.clone(), Profiler::new(GpuConfig::v100()));
        let stream = StreamPks::new(config)
            .with_executor(core::Executor::new(workers));
        let outcome = stream
            .run(&mut source, |_: &Checkpoint| Ok::<(), StreamError>(()))
            .expect("stream runs");
        serde_json::to_string(&outcome.attribution).expect("serialises")
    };
    let baseline = run(1);
    for workers in [2, 4, 8] {
        assert_eq!(run(workers), baseline, "workers={workers} diverges");
    }
}

#[test]
fn sharded_attribution_equals_single_modulo_shard_sections() {
    let w = synthetic_workload(1_500);
    let config = StreamConfig::default().with_prefix(200);
    let mut source = WorkloadSource::new(w.clone(), Profiler::new(GpuConfig::v100()));
    let single = StreamPks::new(config)
        .run(&mut source, |_: &Checkpoint| Ok::<(), StreamError>(()))
        .expect("single stream runs");
    let mut source = WorkloadSource::new(w, Profiler::new(GpuConfig::v100()));
    let sharded = ShardedStreamPks::new(config, 4)
        .run(&mut source, |_: &ShardedCheckpoint| Ok::<(), StreamError>(()))
        .expect("sharded stream runs");
    single.attribution.verify_sums().expect("single sums");
    sharded.attribution.verify_sums().expect("sharded sums");
    assert_eq!(sharded.attribution.shards.len(), 4);
    let strip = |a: &core::ErrorAttribution| {
        let mut v = serde_json::to_value(a).expect("serialises");
        if let serde_json::Value::Object(m) = &mut v {
            m.remove("shards");
        }
        serde_json::to_string(&v).expect("renders")
    };
    assert_eq!(strip(&sharded.attribution), strip(&single.attribution));
}

#[test]
fn explain_and_diff_close_the_loop_on_a_real_artifact() {
    let pka = Pka::new(tiny_gpu(), PkaConfig::default());
    let w = find(rodinia::workloads(), "gauss_208");
    let (_, attribution) = pka
        .evaluate_with_attribution(&w, false)
        .expect("pipeline runs");
    let doc = serde_json::to_value(&attribution).expect("serialises");

    // explain renders a header naming the schema, workload and kind.
    let lines = obs::explain_attribution(&doc).expect("explains");
    assert!(lines[0].contains(core::ATTRIBUTION_SCHEMA), "{}", lines[0]);
    assert!(lines[0].contains("gauss_208"), "{}", lines[0]);

    // Identical artifacts gate clean ...
    let clean = obs::diff_attributions(&doc, &doc, 0.5).expect("diffs");
    assert_eq!(clean.regressions(), 0);

    // ... a representative swap is an exact-match regression ...
    let mut swapped = doc.clone();
    if let serde_json::Value::Object(m) = &mut swapped {
        let mut groups = m["groups"].as_array().expect("groups").clone();
        if let serde_json::Value::Object(g) = &mut groups[0] {
            g.insert("representative".to_string(), serde_json::json!(424_242u64));
        }
        m.insert("groups".to_string(), serde_json::Value::Array(groups));
    }
    let swap = obs::diff_attributions(&doc, &swapped, 0.5).expect("diffs");
    assert!(swap.regressions() >= 1, "representative swap must gate");

    // ... and error drift past the tolerance is a threshold regression.
    let mut drifted = doc.clone();
    let reported = doc["pks_err_pct"].as_f64().expect("pks_err_pct");
    if let serde_json::Value::Object(m) = &mut drifted {
        m.insert("pks_err_pct".to_string(), serde_json::json!(reported + 2.0));
    }
    let drift = obs::diff_attributions(&doc, &drifted, 0.5).expect("diffs");
    assert!(drift.regressions() >= 1, "2-point drift must gate at 0.5");
    let lax = obs::diff_attributions(&doc, &drifted, 5.0).expect("diffs");
    assert_eq!(lax.regressions(), 0, "5-point tolerance absorbs the drift");
}

#[test]
fn transferred_selection_files_still_parse_next_to_attribution() {
    // The `--selection` transfer path and the attribution path share the
    // Selection serde shape; pin that a round-tripped selection is accepted
    // unchanged so the CLI's refusal to attribute transfers stays the only
    // difference between the two paths.
    let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
    let w = find(rodinia::workloads(), "gauss_208");
    let (selection, _) = pka
        .select_kernels_with_attribution(&w)
        .expect("selection runs");
    let value = serde_json::to_value(&selection).expect("serialises");
    let back: Selection = serde_json::from_value(value).expect("deserialises");
    assert_eq!(back, selection);
}
