//! Acceptance for the Prometheus exposition layer (`pka-obs::expose`):
//! a golden `/metrics` body for a seeded registry, a grammar property
//! over arbitrary registries, and worker-count byte-identity of the
//! deterministic families scraped from a real streaming run.

use principal_kernel_analysis::core::Executor;
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::obs;
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::stream::{
    synthetic_workload, StreamConfig, StreamPks, WorkloadSource,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Golden body
// ---------------------------------------------------------------------------

/// A registry covering every metric kind and every normalisation rule:
/// unlabeled and shard-labeled counters, gauges (including a negative
/// one), a histogram with under/over-flow observations, and stages both
/// plain and worker-labeled.
fn seeded_registry() -> obs::Registry {
    let r = obs::Registry::new();
    r.counter("stream.records").add(6_000);
    r.counter(obs::intern("stream.shard0.records")).add(2_945);
    r.counter(obs::intern("stream.shard1.records")).add(3_055);
    r.counter("stream.checkpoints").add(4);
    r.gauge("stream.selected_k").set(9);
    r.gauge("stream.max_buffered").set(-1);
    r.gauge(obs::intern("stream.shard1.reservoir")).set(128);
    let h = r.histogram(
        "stream.checkpoint_write_ns",
        &[1_000, 1_000_000, 100_000_000],
    );
    for v in [250, 980, 1_000, 5_000_000, 77, 230_000_000] {
        h.record(v);
    }
    r.stage("pks.sweep").record_ns(48_000);
    r.stage("pks.sweep").record_ns(2_000);
    r.stage(obs::intern("executor.worker_busy.w0"))
        .record_ns(1_000_000);
    r
}

/// The rendered exposition is byte-stable against the committed fixture.
/// Regenerate deliberately with `UPDATE_GOLDEN=1 cargo test`.
#[test]
fn rendered_exposition_matches_the_golden_fixture() {
    let text = obs::prometheus_text(&seeded_registry());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/metrics_exposition.golden"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("update golden fixture");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("read tests/fixtures/metrics_exposition.golden (UPDATE_GOLDEN=1 regenerates)");
    assert_eq!(
        text, want,
        "exposition drifted from the golden fixture; rerun with UPDATE_GOLDEN=1 if intended"
    );
}

/// The golden body round-trips through the scrape parser into a manifest
/// that self-diffs clean under the strict default thresholds.
#[test]
fn golden_body_round_trips_through_the_scrape_parser() {
    let doc = obs::parse_exposition(&obs::prometheus_text(&seeded_registry()))
        .expect("golden body parses");
    assert_eq!(doc["schema"].as_str(), Some(obs::MANIFEST_SCHEMA));
    assert_eq!(
        doc["counters"]["pka_stream_records_total{shard=\"0\"}"],
        serde_json::json!(2_945)
    );
    assert_eq!(
        doc["stages"]["pka_pks_sweep"],
        serde_json::json!({ "calls": 2, "total_ns": 50_000 })
    );
    let report = obs::diff_manifests(&doc, &doc, &obs::DiffThresholds::default(), false)
        .expect("self diff");
    assert_eq!(report.regressions(), 0);
}

// ---------------------------------------------------------------------------
// Grammar property
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Metric {
    Counter(String, u64),
    Gauge(String, i64),
    Histogram(String, Vec<u64>, Vec<u64>),
    Stage(String, Vec<u64>),
}

/// A dotted metric name under the registry's naming discipline: plain
/// segments first (headed by a per-kind prefix so kinds never collide on
/// a family name), then at most one `shard<i>` and one `w<i>` label
/// segment, in that order.
fn arb_name(prefix: char) -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(0u8..16, 1..4),
        0u8..4,
        0u8..8,
        0u8..8,
    )
        .prop_map(move |(segs, mode, sh, w)| {
            let mut parts: Vec<String> =
                segs.iter().map(|n| format!("{prefix}{n}")).collect();
            if mode & 1 != 0 {
                parts.push(format!("shard{sh}"));
            }
            if mode & 2 != 0 {
                parts.push(format!("w{w}"));
            }
            parts.join(".")
        })
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![
        (arb_name('c'), 0u64..1_000_000_000_000)
            .prop_map(|(n, v)| Metric::Counter(n, v)),
        (arb_name('g'), -1_000_000_000i64..1_000_000_000)
            .prop_map(|(n, v)| Metric::Gauge(n, v)),
        (
            arb_name('h'),
            proptest::collection::vec(1u64..1_000_000_000, 0..5),
            proptest::collection::vec(0u64..2_000_000_000, 0..20),
        )
            .prop_map(|(n, mut edges, values)| {
                edges.sort_unstable();
                edges.dedup();
                Metric::Histogram(n, edges, values)
            }),
        (
            arb_name('s'),
            proptest::collection::vec(0u64..1_000_000_000, 0..6),
        )
            .prop_map(|(n, ns)| Metric::Stage(n, ns)),
    ]
}

fn build_registry(metrics: &[Metric]) -> obs::Registry {
    let r = obs::Registry::new();
    for m in metrics {
        match m {
            Metric::Counter(name, v) => r.counter(obs::intern(name)).add(*v),
            Metric::Gauge(name, v) => r.gauge(obs::intern(name)).set(*v),
            Metric::Histogram(name, edges, values) => {
                let h = r.histogram(obs::intern(name), edges);
                for v in values {
                    h.record(*v);
                }
            }
            Metric::Stage(name, ns) => {
                let s = r.stage(obs::intern(name));
                for v in ns {
                    s.record_ns(*v);
                }
            }
        }
    }
    r
}

/// One line of the minimal exposition grammar, checked shallowly (the
/// deep check is `parse_exposition`, which rejects any malformed line).
fn line_is_comment_or_sample(line: &str) -> bool {
    if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
        return true;
    }
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .unwrap_or(line.len());
    let name = &line[..name_end];
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && line.split_whitespace().next_back().is_some_and(|v| {
            v == "+Inf" || v == "-Inf" || v.parse::<f64>().is_ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever ends up in a registry, every rendered line is either a
    /// `# HELP`/`# TYPE` comment or a well-formed sample, the whole body
    /// parses under the scrape grammar, and the rebuilt manifest
    /// self-diffs clean.
    #[test]
    fn every_rendered_line_parses_under_the_grammar(
        metrics in proptest::collection::vec(arb_metric(), 0..12)
    ) {
        let text = obs::prometheus_text(&build_registry(&metrics));
        for line in text.lines() {
            prop_assert!(
                line_is_comment_or_sample(line),
                "line outside the grammar: `{}`", line
            );
        }
        let doc = match obs::parse_exposition(&text) {
            Ok(doc) => doc,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}\n{text}"))),
        };
        let report =
            obs::diff_manifests(&doc, &doc, &obs::DiffThresholds::default(), false)
                .expect("self diff");
        prop_assert_eq!(report.regressions(), 0);
    }
}

// ---------------------------------------------------------------------------
// Worker-count byte-identity of a real run's deterministic families
// ---------------------------------------------------------------------------

/// Families whose values are functions of the input alone (no wall-clock
/// content, no work-partitioning content): the pipeline and profiler
/// record counters/gauges that are bitwise-reproducible for any
/// `--workers`, while `executor.*` and all `*_ns` timing families are
/// machine- and schedule-dependent by nature.
fn deterministic_family(name: &str) -> bool {
    ["pka_stream_", "pka_profile_", "pka_pks_"]
        .iter()
        .any(|p| name.starts_with(p))
        && !name.ends_with("_total_ns")
        && !name.ends_with("_calls")
        && !name.contains("_ns")
}

/// Keeps only the family blocks (HELP + TYPE + samples) of deterministic
/// families, preserving bytes and order.
fn deterministic_blocks(exposition: &str) -> String {
    let mut out = String::new();
    let mut keep = false;
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split_whitespace().next().unwrap_or_default();
            keep = deterministic_family(family);
        }
        if keep {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Scrapes the global registry after a `StreamPks` run with `workers`
/// threads. Serialised by the caller: this file's only global-registry
/// test, and the two runs happen inside it, back to back.
fn scrape_after_run(workers: usize) -> String {
    obs::reset();
    obs::enable();
    let mut source =
        WorkloadSource::new(synthetic_workload(6_000), Profiler::new(GpuConfig::v100()));
    StreamPks::new(
        StreamConfig::default()
            .with_prefix(400)
            .with_checkpoint_every(1_500)
            .with_reservoir(256)
            .with_batch(128),
    )
    .with_executor(Executor::new(workers))
    .run(&mut source, |_| Ok(()))
    .expect("stream run");
    let text = obs::global_prometheus();
    obs::disable();
    text
}

/// The acceptance bar from the issue: a seeded run's `/metrics` body is
/// byte-identical across `--workers` for every deterministic family.
#[test]
fn deterministic_families_are_byte_identical_across_worker_counts() {
    let w1 = deterministic_blocks(&scrape_after_run(1));
    let w4 = deterministic_blocks(&scrape_after_run(4));
    assert!(
        w1.contains("pka_stream_records_total"),
        "filter must keep the stream families:\n{w1}"
    );
    assert_eq!(
        w1, w4,
        "deterministic families must not depend on the worker count"
    );
}
