//! `pka-server` acceptance: the HTTP surface adds zero numeric drift.
//!
//! A streaming session driven over HTTP must produce the same selected K,
//! the same projected cycles, and *byte-identical* final checkpoint and
//! attribution artifacts as the equivalent direct `pka-stream` run —
//! including under `--shards N` and with concurrent interleaved sessions.
//! `DELETE` mid-stream must tear the session down at a batch boundary and
//! leave a valid resumable checkpoint on disk.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use principal_kernel_analysis::core::{Executor, Pka, PkaConfig, PksConfig};
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::server::{PkaServer, Registry, ServerConfig, Status};
use principal_kernel_analysis::stream::{
    synthetic_workload, Checkpoint, JsonlSource, KernelSource, ShardedStreamPks, StreamConfig,
    StreamPks, WorkloadSource,
};
use principal_kernel_analysis::workloads::all_workloads;
use serde_json::{json, Value};

// ---------------------------------------------------------------------------
// Raw-socket HTTP helpers (the tests must not trust the server's own client)
// ---------------------------------------------------------------------------

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("length");
        }
    }
    let mut out = vec![0u8; content_length];
    reader.read_exact(&mut out).expect("body");
    (status, String::from_utf8(out).expect("utf8"))
}

fn create_session(addr: SocketAddr, spec: &Value) -> String {
    let (status, body) = request(addr, "POST", "/v1/sessions", &spec.to_string());
    assert_eq!(status, 200, "create session: {body}");
    let v: Value = serde_json::from_str(&body).expect("create response json");
    v["id"].as_str().expect("session id").to_string()
}

/// Polls `GET .../result` until the session leaves the running states.
fn wait_result(addr: SocketAddr, id: &str) -> Value {
    for _ in 0..6_000 {
        let (status, body) = request(addr, "GET", &format!("/v1/sessions/{id}/result"), "");
        match status {
            200 => return serde_json::from_str(&body).expect("result json"),
            202 => std::thread::sleep(Duration::from_millis(5)),
            other => panic!("session {id} ended {other}: {body}"),
        }
    }
    panic!("session {id} did not finish in time");
}

fn fetch(addr: SocketAddr, id: &str, artifact: &str) -> String {
    let (status, body) = request(addr, "GET", &format!("/v1/sessions/{id}/{artifact}"), "");
    assert_eq!(status, 200, "{artifact}: {body}");
    body
}

// ---------------------------------------------------------------------------
// Direct-run references
// ---------------------------------------------------------------------------

fn stream_config() -> StreamConfig {
    StreamConfig::default()
        .with_prefix(400)
        .with_checkpoint_every(1_500)
        .with_reservoir(256)
        .with_batch(128)
}

fn stream_spec(source: &str) -> Value {
    json!({
        "mode": "stream",
        "source": source,
        "prefix": 400,
        "checkpoint_every": 1_500,
        "reservoir": 256,
        "batch": 128,
    })
}

/// Exports `n` synthetic kernels as JSONL feed lines (detailed for the
/// first `prefix` records, lightweight after, like a profiler would emit).
fn export_lines(n: u64, prefix: u64) -> String {
    let mut src = WorkloadSource::new(synthetic_workload(n), Profiler::new(GpuConfig::v100()));
    let mut lines = String::new();
    let mut i = 0u64;
    while let Some(rec) = src.next_record(i < prefix).expect("export record") {
        lines.push_str(&rec.to_jsonl().to_string());
        lines.push('\n');
        i += 1;
    }
    lines
}

// ---------------------------------------------------------------------------
// HTTP parity with the CLI-equivalent direct runs
// ---------------------------------------------------------------------------

#[test]
fn http_stream_session_matches_direct_run_byte_for_byte() {
    let server = PkaServer::bind(ServerConfig::default()).expect("bind");
    let addr = server.addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("run"));

        // Single-pipeline session vs a direct StreamPks run.
        let direct = {
            let mut source =
                WorkloadSource::new(synthetic_workload(6_000), Profiler::new(GpuConfig::v100()));
            StreamPks::new(stream_config())
                .with_executor(Executor::new(1))
                .run(&mut source, |_| Ok(()))
                .expect("direct run")
        };
        let id = create_session(addr, &stream_spec("synthetic:6000"));
        let result = wait_result(addr, &id);
        assert_eq!(
            result["selected_k"],
            json!(direct.report.selected_k as u64),
            "selected K over HTTP must match the direct run"
        );
        assert_eq!(
            result["projected_cycles"],
            json!(direct.report.projected_cycles),
            "projected cycles over HTTP must match the direct run"
        );
        let mut want_ckpt = direct.final_checkpoint.to_json();
        want_ckpt.push('\n');
        assert_eq!(
            fetch(addr, &id, "checkpoint"),
            want_ckpt,
            "checkpoint bytes over HTTP must equal the CLI artifact"
        );
        let mut want_attr =
            serde_json::to_string_pretty(&direct.attribution).expect("attribution json");
        want_attr.push('\n');
        assert_eq!(
            fetch(addr, &id, "attribution"),
            want_attr,
            "attribution bytes over HTTP must equal the CLI artifact"
        );

        // Progress is a valid pka.snapshot/v1 NDJSON stream.
        let progress = fetch(addr, &id, "progress");
        let mut lines = progress.lines();
        assert_eq!(
            lines.next(),
            Some("{\"schema\":\"pka.snapshot/v1\",\"type\":\"header\"}"),
        );
        let snapshots: Vec<Value> = lines
            .map(|l| serde_json::from_str(l).expect("snapshot line"))
            .collect();
        assert!(!snapshots.is_empty(), "expected at least one checkpoint");
        for s in &snapshots {
            assert_eq!(s["type"], json!("snapshot"));
            assert_eq!(s["phase"], json!("tail"));
        }

        // Sharded session vs a direct ShardedStreamPks run.
        let direct_sharded = {
            let mut source =
                WorkloadSource::new(synthetic_workload(6_000), Profiler::new(GpuConfig::v100()));
            ShardedStreamPks::new(stream_config(), 2)
                .with_executor(Executor::new(1))
                .run(&mut source, |_| Ok(()))
                .expect("direct sharded run")
        };
        let spec = json!({
            "mode": "stream",
            "source": "synthetic:6000",
            "prefix": 400,
            "checkpoint_every": 1_500,
            "reservoir": 256,
            "batch": 128,
            "shards": 2,
        });
        let id = create_session(addr, &spec);
        let result = wait_result(addr, &id);
        assert_eq!(
            result["selected_k"],
            json!(direct_sharded.report.selected_k as u64)
        );
        assert_eq!(result["map_hash"], json!(direct_sharded.map_hash));
        let mut want_ckpt = direct_sharded.final_checkpoint.to_json();
        want_ckpt.push('\n');
        assert_eq!(
            fetch(addr, &id, "checkpoint"),
            want_ckpt,
            "sharded checkpoint bytes over HTTP must equal the CLI artifact"
        );

        let (status, _) = request(addr, "POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.join().expect("server thread");
    });
}

#[test]
fn http_select_session_matches_direct_batch_run() {
    let server = PkaServer::bind(ServerConfig::default()).expect("bind");
    let addr = server.addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("run"));

        let workload = all_workloads()
            .into_iter()
            .find(|w| w.name() == "gramschmidt")
            .expect("known workload");
        let pka = Pka::new(
            GpuConfig::v100(),
            PkaConfig::default()
                .with_pks(PksConfig::default().with_target_error_pct(5.0))
                .with_executor(Executor::new(1)),
        );
        let (selection, attribution) = pka
            .select_kernels_with_attribution(&workload)
            .expect("direct select");

        let id = create_session(
            addr,
            &json!({ "mode": "select", "workload": "gramschmidt" }),
        );
        let result = wait_result(addr, &id);
        assert_eq!(result["selected_k"], json!(selection.k() as u64));
        assert_eq!(result["error_pct"], json!(selection.error_pct()));
        assert_eq!(
            result["kernels_total"],
            json!(workload.kernel_count()),
        );
        let mut want_attr =
            serde_json::to_string_pretty(&attribution).expect("attribution json");
        want_attr.push('\n');
        assert_eq!(fetch(addr, &id, "attribution"), want_attr);

        let (status, _) = request(addr, "POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.join().expect("server thread");
    });
}

// ---------------------------------------------------------------------------
// Cancellation-safe teardown
// ---------------------------------------------------------------------------

#[test]
fn delete_mid_stream_leaves_a_resumable_checkpoint() {
    let lines = export_lines(12_000, 150);
    let lines_path = std::env::temp_dir().join("pka_server_teardown_feed.jsonl");
    let ckpt_path = std::env::temp_dir().join("pka_server_teardown.ckpt.json");
    std::fs::write(&lines_path, &lines).expect("write feed lines");
    let config = StreamConfig::default()
        .with_prefix(150)
        .with_checkpoint_every(1_000)
        .with_reservoir(128)
        .with_batch(64);

    let server = PkaServer::bind(ServerConfig::default()).expect("bind");
    let addr = server.addr().expect("addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("run"));

        // The feed is labelled after the JSONL file so the teardown
        // checkpoint can later be resumed against that file (resume
        // validates the checkpoint's source label).
        let id = create_session(
            addr,
            &json!({
                "mode": "stream",
                "source": "feed",
                "source_name": format!("jsonl:{}", lines_path.display()),
                "prefix": 150,
                "checkpoint_every": 1_000,
                "reservoir": 128,
                "batch": 64,
                "checkpoint_path": ckpt_path.to_str().expect("utf8 path"),
            }),
        );

        // Push the first half of the stream, then wait until the session has
        // taken at least one periodic checkpoint.
        let half: String = lines
            .lines()
            .take(6_000)
            .flat_map(|l| [l, "\n"])
            .collect();
        let (status, body) =
            request(addr, "POST", &format!("/v1/sessions/{id}/records"), &half);
        assert_eq!(status, 200, "{body}");
        let accepted: Value = serde_json::from_str(&body).expect("append response");
        assert_eq!(accepted["accepted"], json!(6_000));
        for _ in 0..6_000 {
            let (_, body) = request(addr, "GET", &format!("/v1/sessions/{id}"), "");
            let v: Value = serde_json::from_str(&body).expect("describe json");
            if v["records"].as_u64().unwrap_or(0) >= 1_000 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        // DELETE mid-stream: the worker must stop at a batch boundary and the
        // on-disk checkpoint must stay valid.
        let (status, body) = request(addr, "DELETE", &format!("/v1/sessions/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let summary: Value = serde_json::from_str(&body).expect("teardown summary");
        assert_eq!(summary["status"], json!("cancelled"), "{body}");
        let torn_records = summary["records"].as_u64().expect("records");
        assert!(
            (1_000..12_000).contains(&torn_records),
            "teardown stopped at {torn_records} records"
        );
        let (status, body) =
            request(addr, "GET", &format!("/v1/sessions/{id}/result"), "");
        assert_eq!(status, 409);
        assert!(body.contains("\"cancelled\""), "{body}");

        let (status, _) = request(addr, "POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.join().expect("server thread");
    });

    // The teardown checkpoint resumes to exactly the uninterrupted outcome.
    let cp_value: Value =
        serde_json::from_str(&std::fs::read_to_string(&ckpt_path).expect("read checkpoint"))
            .expect("checkpoint json");
    let cp = Checkpoint::from_value(&cp_value).expect("parse checkpoint");
    assert!(cp.records < 12_000);

    let uninterrupted = {
        let mut source = JsonlSource::open(&lines_path).expect("open feed lines");
        StreamPks::new(config)
            .with_executor(Executor::new(1))
            .run(&mut source, |_| Ok(()))
            .expect("uninterrupted run")
    };
    let mut source = JsonlSource::open(&lines_path).expect("open feed lines");
    let resumed = StreamPks::new(config)
        .with_executor(Executor::new(1))
        .resume(&mut source, &cp, |_| Ok(()))
        .expect("resume from teardown checkpoint");
    // The teardown snapshot is one extra checkpoint the uninterrupted run
    // never takes, so `seq` runs exactly one ahead; every other field must
    // match byte for byte (the engine's resume-after-cancel contract).
    let strip_seq = |cp: &Checkpoint| {
        let mut v: Value = serde_json::from_str(&cp.to_json()).expect("checkpoint json");
        if let Value::Object(m) = &mut v {
            m.remove("seq");
        }
        v
    };
    assert_eq!(
        strip_seq(&resumed.final_checkpoint),
        strip_seq(&uninterrupted.final_checkpoint),
        "resume from the teardown checkpoint must reproduce the uninterrupted run"
    );
    assert_eq!(
        resumed.final_checkpoint.seq,
        uninterrupted.final_checkpoint.seq + 1,
        "the only drift is the teardown snapshot's own sequence number"
    );

    std::fs::remove_file(&lines_path).ok();
    std::fs::remove_file(&ckpt_path).ok();
}

// ---------------------------------------------------------------------------
// Concurrent-session determinism
// ---------------------------------------------------------------------------

#[test]
fn interleaved_sessions_are_byte_identical_to_serial() {
    let registry = Registry::new(8, 16, 8_192, Executor::new(1));
    let lines = export_lines(4_000, 150);
    let spec = json!({
        "mode": "stream",
        "source": "feed",
        "prefix": 150,
        "checkpoint_every": 1_000,
        "reservoir": 128,
        "batch": 64,
    });

    let artifacts = |s: &principal_kernel_analysis::server::Session| {
        let st = s.cell.state.lock().expect("session state");
        assert_eq!(st.status(), Status::Done, "error: {:?}", st.error);
        (
            st.final_checkpoint.clone().expect("final checkpoint"),
            st.attribution.clone().expect("attribution"),
            st.progress.clone(),
        )
    };

    // Serial reference: one session, fed start to finish on its own.
    let serial = registry.create(&spec).expect("serial session");
    let feed = serial.feed.as_ref().expect("feed handle");
    feed.push_lines(&lines).expect("push");
    feed.finish();
    serial.join();
    let want = artifacts(&serial);

    // Two sessions fed in alternating 500-line slices while both run.
    let a = registry.create(&spec).expect("session a");
    let b = registry.create(&spec).expect("session b");
    let all: Vec<&str> = lines.lines().collect();
    for chunk in all.chunks(500) {
        let text: String = chunk.iter().flat_map(|l| [*l, "\n"]).collect();
        a.feed.as_ref().expect("feed a").push_lines(&text).expect("push a");
        b.feed.as_ref().expect("feed b").push_lines(&text).expect("push b");
    }
    a.feed.as_ref().expect("feed a").finish();
    b.feed.as_ref().expect("feed b").finish();
    a.join();
    b.join();

    for (name, session) in [("a", &a), ("b", &b)] {
        let got = artifacts(session);
        assert_eq!(
            got.0, want.0,
            "session {name}: interleaved final checkpoint must match serial"
        );
        assert_eq!(
            got.1, want.1,
            "session {name}: interleaved attribution must match serial"
        );
        assert_eq!(
            got.2, want.2,
            "session {name}: interleaved progress stream must match serial"
        );
    }
}

// ---------------------------------------------------------------------------
// Capacity caps and retention eviction
// ---------------------------------------------------------------------------

#[test]
fn session_caps_and_lru_eviction() {
    let registry = Registry::new(1, 0, 1_024, Executor::new(1));
    let lines = export_lines(300, 20);
    let spec = json!({
        "mode": "stream",
        "source": "feed",
        "prefix": 20,
        "checkpoint_every": 100,
        "reservoir": 64,
        "batch": 32,
    });

    let first = registry.create(&spec).expect("first session");
    let first_id = first.cell.id.clone();

    // The cap counts running sessions: a second create is refused with 429.
    match registry.create(&spec) {
        Err((status, message)) => assert_eq!(status, 429, "{message}"),
        Ok(_) => panic!("second create must be refused at the cap"),
    }

    // Finish the first session; it turns terminal and frees its slot.
    let feed = first.feed.as_ref().expect("feed handle");
    feed.push_lines(&lines).expect("push");
    feed.finish();
    first.join();
    assert_eq!(
        first.cell.state.lock().expect("state").status(),
        Status::Done
    );

    // With retain_completed = 0, the next create evicts the finished
    // session: its id stops resolving (HTTP would answer 404).
    let second = registry.create(&spec).expect("second session");
    assert!(
        registry.get(&first_id).is_none(),
        "finished session must be evicted once past the retention cap"
    );

    // Teardown of a live feed session (past its prefix, blocked waiting for
    // more records) lands in `cancelled`, not `failed`.
    let feed = second.feed.as_ref().expect("feed handle");
    feed.push_lines(&lines).expect("push");
    let second_id = second.cell.id.clone();
    let summary = registry.teardown(&second_id).expect("teardown");
    assert_eq!(summary["status"], json!("cancelled"));
    assert!(registry.get(&second_id).is_none(), "retain 0 evicts it too");
}
