//! Determinism contract of the live observability outputs: the
//! `pka.snapshot/v1` stream and the semantic (`"event"`) records of the
//! `pka.trace/v1` stream are byte-identical across `--workers` counts once
//! the volatile wall-clock data is stripped.
//!
//! Canonical form:
//! - snapshots: drop the sink-stamped `"timing"` object (elapsed time,
//!   kernels/s, checkpoint write durations); everything else — phase,
//!   record counts, selected K, group sizes, reservoir occupancy, drift /
//!   recluster / checkpoint totals, `seq` — must match exactly.
//! - trace: keep the header and `"event"` records, dropping `t_ns` and
//!   `thread`. Span records are performance telemetry and are excluded:
//!   the parallel K-sweep does speculative fits a sequential run's early
//!   exit skips, so span *counts* legitimately differ by worker count
//!   even though results are bitwise identical.

use std::path::PathBuf;
use std::process::Command;

use principal_kernel_analysis::obs;
use serde_json::Value;

fn pka_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pka")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pka_snap_it_{}_{name}", std::process::id()))
}

/// Runs `pka stream` with snapshot and trace sinks attached; returns the
/// raw (snapshot, trace) JSONL bodies.
fn run_stream(workers: &str, tag: &str) -> (String, String) {
    let snap = temp_path(&format!("snap_{tag}.jsonl"));
    let trace = temp_path(&format!("trace_{tag}.jsonl"));
    let out = Command::new(pka_bin())
        .args([
            "stream",
            "--source",
            "synthetic:30000",
            "--prefix",
            "500",
            "--checkpoint-every",
            "8000",
            "--workers",
            workers,
            "--snapshot-out",
            snap.to_str().unwrap(),
            "--snapshot-every",
            "5000",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run pka stream");
    assert!(
        out.status.success(),
        "pka stream --workers {workers} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snap_body = std::fs::read_to_string(&snap).expect("read snapshots");
    let trace_body = std::fs::read_to_string(&trace).expect("read trace");
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&trace).ok();
    (snap_body, trace_body)
}

/// Re-serializes every snapshot line without its volatile `"timing"`
/// object (vendored serde_json sorts keys, so the result is canonical).
fn canonical_snapshots(body: &str) -> String {
    body.lines()
        .map(|line| {
            let mut v: Value = serde_json::from_str(line).expect("snapshot line parses");
            if let Value::Object(m) = &mut v {
                m.remove("timing");
            }
            serde_json::to_string(&v).unwrap()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The canonical semantic subsequence of a trace: header plus `"event"`
/// records with wall-clock and thread identity stripped.
fn canonical_events(body: &str) -> String {
    body.lines()
        .filter_map(|line| {
            let mut v: Value = serde_json::from_str(line).expect("trace line parses");
            let Value::Object(m) = &mut v else {
                panic!("trace line is not an object: {line}");
            };
            match m.get("type").and_then(Value::as_str) {
                Some("header") => {}
                Some("event") => {
                    m.remove("t_ns");
                    m.remove("thread");
                }
                _ => return None,
            }
            Some(serde_json::to_string(&v).unwrap())
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn snapshots_and_events_are_identical_across_worker_counts() {
    let (snap1, trace1) = run_stream("1", "w1");
    let (snap4, trace4) = run_stream("4", "w4");

    let canon1 = canonical_snapshots(&snap1);
    assert_eq!(
        canon1,
        canonical_snapshots(&snap4),
        "snapshot stream differs between --workers 1 and --workers 4"
    );
    assert_eq!(
        canonical_events(&trace1),
        canonical_events(&trace4),
        "trace events differ between --workers 1 and --workers 4"
    );

    // The comparison must not be vacuous.
    let lines: Vec<Value> = canon1
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines[0]["schema"].as_str(), Some(obs::SNAPSHOT_SCHEMA));
    let snapshots = lines
        .iter()
        .filter(|l| l["type"].as_str() == Some("snapshot"))
        .count();
    assert!(snapshots >= 4, "only {snapshots} snapshot records emitted");
    assert!(
        lines
            .iter()
            .any(|l| l["phase"].as_str() == Some("prefix")),
        "no prefix-phase snapshot"
    );
    assert!(
        canonical_events(&trace1).contains("stream.checkpoint"),
        "no stream.checkpoint events in trace"
    );
}

/// Every emitted snapshot record round-trips through the typed schema:
/// `from_value` accepts it and `to_value` reproduces the deterministic
/// payload exactly (sink-stamped `type`/`seq`/`timing` excluded).
#[test]
fn snapshot_records_round_trip_through_schema() {
    let (snap, _) = run_stream("2", "roundtrip");
    let mut checked = 0;
    for line in snap.lines() {
        let v: Value = serde_json::from_str(line).expect("snapshot line parses");
        if v["type"].as_str() != Some("snapshot") {
            continue;
        }
        let record = obs::SnapshotRecord::from_value(&v)
            .unwrap_or_else(|e| panic!("schema rejects emitted record: {e}\n{line}"));
        let mut payload = match v {
            Value::Object(m) => m,
            _ => unreachable!(),
        };
        payload.remove("type");
        payload.remove("seq");
        payload.remove("timing");
        assert_eq!(record.to_value(), Value::Object(payload), "lossy round trip");
        checked += 1;
    }
    assert!(checked >= 4, "only {checked} snapshot records checked");
}
