//! Bounded-vs-reference K-Means parity: the clustering determinism contract.
//!
//! The bounded (Hamerly-style) assignment path in [`KMeans::fit`] prunes
//! distance computations with conservative triangle-inequality bounds, fans
//! chunks over worker threads, and re-sums only dirty clusters — yet it
//! must produce **bitwise identical** fits to the naive Lloyd's reference
//! (`fit_reference`), for any worker count. These tests compare whole
//! [`KMeansFit`] structs with `assert_eq!` (labels, every centroid
//! coordinate, inertia), so a one-ULP divergence anywhere fails the suite.
//!
//! [`KMeans::fit`]: principal_kernel_analysis::ml::KMeans::fit
//! [`KMeansFit`]: principal_kernel_analysis::ml::KMeansFit

use principal_kernel_analysis::ml::{KMeans, KMeansFit, Matrix};
use principal_kernel_analysis::stats::hash::UnitStream;
use principal_kernel_analysis::stats::Executor;

/// Worker counts exercised against the naive reference. Chunk grids are
/// worker-count-invariant, so every count must agree bitwise.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Clustering seeds for the parity matrix.
const SEEDS: [u64; 3] = [0, 1, 0x9E3779B97F4A7C15];

/// Data shapes `(n, d, k)` spanning below/above the assignment chunk size,
/// k near n, and non-power-of-two everything.
const SHAPES: [(usize, usize, usize); 4] = [(60, 2, 3), (200, 5, 7), (513, 3, 16), (97, 4, 5)];

/// Deterministic blob cloud: `n` points of dimension `d` scattered around
/// `modes` lattice centres.
fn cloud(n: usize, d: usize, modes: usize, seed: u64) -> Matrix {
    let mut rng = UnitStream::new(seed ^ 0xC10D);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = i % modes;
            (0..d)
                .map(|j| ((c * 7 + j * 3) % 11) as f64 * 3.0 + rng.next_range(-0.5, 0.5))
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("valid cloud")
}

/// Asserts the bounded fit equals the reference fit bitwise, for every
/// worker count.
fn assert_parity(data: &Matrix, k: usize, seed: u64) {
    let reference = KMeans::new(k)
        .with_seed(seed)
        .fit_reference(data)
        .expect("reference fit");
    for &workers in &WORKER_COUNTS {
        let fit = KMeans::new(k)
            .with_seed(seed)
            .with_executor(Executor::new(workers))
            .fit(data)
            .expect("bounded fit");
        assert_eq!(
            fit, reference,
            "bounded fit diverged from reference: k={k} seed={seed} workers={workers}"
        );
        assert_eq!(
            fit.inertia().to_bits(),
            reference.inertia().to_bits(),
            "inertia bits diverged: k={k} seed={seed} workers={workers}"
        );
    }
}

fn mode_count(fit: &KMeansFit) -> usize {
    let mut labels: Vec<usize> = fit.labels().to_vec();
    labels.sort_unstable();
    labels.dedup();
    labels.len()
}

#[test]
fn bounded_matches_reference_across_seeds_shapes_and_workers() {
    for &(n, d, k) in &SHAPES {
        for &seed in &SEEDS {
            let data = cloud(n, d, k.min(8), seed);
            assert_parity(&data, k, seed);
        }
    }
}

#[test]
fn parity_holds_when_k_exceeds_mode_count() {
    // More centroids than natural modes: centroids oscillate inside tight
    // blobs, the worst case for bound-based pruning, and empty-cluster
    // reseeds fire.
    let data = cloud(150, 3, 4, 9);
    for k in [6, 10, 16] {
        assert_parity(&data, k, 0);
    }
}

#[test]
fn parity_on_identical_points() {
    // Every point identical: all distances tie at zero, so label choice is
    // purely comparison-order; reseeds fire every iteration.
    let rows: Vec<Vec<f64>> = (0..40).map(|_| vec![2.5, -1.0, 7.0]).collect();
    let data = Matrix::from_rows(&rows).expect("valid");
    for k in [1, 3, 5] {
        assert_parity(&data, k, 0);
    }
}

#[test]
fn parity_under_reseed_stress() {
    // Ten points in one spot, two far away, k = 4: at least one cluster
    // starts or goes empty and must reseed on the farthest point.
    let mut rows: Vec<Vec<f64>> = (0..10).map(|_| vec![0.0, 0.0]).collect();
    rows.push(vec![100.0, 100.0]);
    rows.push(vec![100.0, 100.0]);
    let data = Matrix::from_rows(&rows).expect("valid");
    assert_parity(&data, 4, 0);
    assert_parity(&data, 4, 1);
}

#[test]
fn parity_when_k_exceeds_n() {
    // k capped to n distinct behaviours by construction of ++ init;
    // whatever the implementations do, they must do it identically.
    let data = cloud(5, 2, 3, 3);
    for k in [5, 7] {
        let reference = KMeans::new(k).with_seed(0).fit_reference(&data);
        let bounded = KMeans::new(k)
            .with_seed(0)
            .with_executor(Executor::new(4))
            .fit(&data);
        match (bounded, reference) {
            (Ok(b), Ok(r)) => {
                assert_eq!(b, r, "k={k}");
                assert!(mode_count(&b) <= 5);
            }
            (Err(b), Err(r)) => assert_eq!(format!("{b}"), format!("{r}"), "k={k}"),
            (b, r) => panic!("paths disagree on fallibility: k={k} {b:?} vs {r:?}"),
        }
    }
}

#[test]
fn sequential_executor_matches_default() {
    let data = cloud(300, 4, 6, 5);
    let default_fit = KMeans::new(6).with_seed(2).fit(&data).expect("fit");
    let seq_fit = KMeans::new(6)
        .with_seed(2)
        .with_executor(Executor::sequential())
        .fit(&data)
        .expect("fit");
    assert_eq!(default_fit, seq_fit);
}
