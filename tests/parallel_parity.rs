//! Sequential-vs-parallel parity: the executor's determinism contract.
//!
//! Every parallel fan-out in the pipeline (per-kernel silicon profiling,
//! the K-Means K-sweep, per-representative simulation, two-level tail
//! classification) must produce **bitwise identical** observable results to
//! a sequential run — same selections, same projected cycles, same error
//! tables — for any worker count. These tests compare whole result structs
//! (including their `f64` fields) with `assert_eq!`, so even a one-ULP
//! divergence from a reordered float reduction fails the suite.

use std::num::NonZeroUsize;

use principal_kernel_analysis::core::{
    Pka, PkaConfig, PksConfig, Selection, SimulationReport, TwoLevel, TwoLevelConfig,
};
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::workloads::{all_workloads, Workload};

/// Worker counts exercised against the sequential baseline. Real threads
/// are spawned regardless of the host's core count, so index-ordered
/// result collection is exercised even on a single-core machine.
const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// Clustering seeds the parity matrix sweeps.
const SEEDS: [u64; 3] = [0, 1, 0x9E3779B97F4A7C15];

fn workload(name: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.name() == name)
        .expect("known workload")
}

fn tiny_gpu() -> GpuConfig {
    GpuConfig::builder("parity8").num_sms(8).build().expect("valid")
}

#[test]
fn selection_parity_across_seeds_and_workloads() {
    // 3 seeds x 3 workloads (different suites and kernel-stream shapes),
    // each selected sequentially and with 4 workers. (The full 2/4/8
    // worker-count sweep runs on one combination in
    // `selection_parity_across_worker_counts` — worker count cannot affect
    // which items exist, only their schedule, so one sweep suffices.)
    for name in ["gauss_208", "histo", "fdtd2d"] {
        let w = workload(name);
        for seed in SEEDS {
            let config_for = |workers: usize| {
                PkaConfig::default()
                    .with_pks(PksConfig::default().with_seed(seed))
                    .with_workers(workers)
            };
            let sequential: Selection = Pka::new(GpuConfig::v100(), config_for(1))
                .select_kernels(&w)
                .expect("sequential selection");
            let parallel = Pka::new(GpuConfig::v100(), config_for(4))
                .select_kernels(&w)
                .expect("parallel selection");
            assert_eq!(
                sequential, parallel,
                "{name} seed {seed}: selection diverged at 4 workers"
            );
            assert_eq!(
                sequential.projected_cycles(),
                parallel.projected_cycles(),
                "{name} seed {seed}: projected cycles diverged at 4 workers"
            );
        }
    }
}

#[test]
fn selection_parity_across_worker_counts() {
    let w = workload("histo");
    let config_for = |workers: usize| {
        PkaConfig::default()
            .with_pks(PksConfig::default().with_seed(SEEDS[2]))
            .with_workers(workers)
    };
    let sequential: Selection = Pka::new(GpuConfig::v100(), config_for(1))
        .select_kernels(&w)
        .expect("sequential selection");
    for workers in WORKER_COUNTS {
        let parallel = Pka::new(GpuConfig::v100(), config_for(workers))
            .select_kernels(&w)
            .expect("parallel selection");
        assert_eq!(
            sequential, parallel,
            "selection diverged at {workers} workers"
        );
    }
}

#[test]
fn simulation_report_parity_across_worker_counts() {
    // The full sampled-simulation path, full-sim baseline included: every
    // field of the report (u64 cycles and f64 errors/hours/DRAM) must
    // match bit for bit.
    for name in ["cutcp", "bfs65536", "srad_v1"] {
        let w = workload(name);
        let sequential: SimulationReport =
            Pka::new(tiny_gpu(), PkaConfig::default().with_workers(1))
                .evaluate_in_simulation(&w, true)
                .expect("sequential evaluation");
        let parallel = Pka::new(tiny_gpu(), PkaConfig::default().with_workers(4))
            .evaluate_in_simulation(&w, true)
            .expect("parallel evaluation");
        assert_eq!(
            sequential, parallel,
            "{name}: simulation report diverged at 4 workers"
        );
    }
}

#[test]
fn silicon_report_parity_across_worker_counts() {
    // The cross-generation silicon path: selection on Volta, re-execution
    // of the representatives on Turing/Ampere silicon models.
    let w = workload("srad_v1");
    let selection = Pka::new(GpuConfig::v100(), PkaConfig::default())
        .select_kernels(&w)
        .expect("selects");
    for gpu in [GpuConfig::v100(), GpuConfig::rtx2060(), GpuConfig::rtx3070()] {
        let sequential = Pka::new(gpu.clone(), PkaConfig::default().with_workers(1))
            .silicon_report_for(&w, &selection)
            .expect("sequential report");
        for workers in WORKER_COUNTS {
            let parallel = Pka::new(gpu.clone(), PkaConfig::default().with_workers(workers))
                .silicon_report_for(&w, &selection)
                .expect("parallel report");
            assert_eq!(
                sequential, parallel,
                "{}: silicon report diverged at {workers} workers",
                gpu.name()
            );
        }
    }
}

#[test]
fn two_level_parity_across_worker_counts() {
    // Forces the two-level path (detailed prefix + classified tail) on a
    // mid-sized stream; the chunked parallel tail classification must
    // reproduce the streamed sequential group counts exactly.
    let w = workload("gramschmidt");
    let config = TwoLevelConfig::default().with_detailed_prefix_cap(600);
    let profiler = Profiler::new(GpuConfig::v100());
    let sequential = TwoLevel::new(config)
        .analyze(&w, &profiler)
        .expect("sequential two-level");
    for workers in WORKER_COUNTS {
        let exec = principal_kernel_analysis::core::Executor::new(workers);
        let parallel = TwoLevel::new(config)
            .with_executor(exec)
            .analyze(&w, &profiler.clone().with_executor(exec))
            .expect("parallel two-level");
        assert_eq!(
            sequential, parallel,
            "two-level selection diverged at {workers} workers"
        );
    }
}

#[test]
fn parallel_is_faster_on_multicore_hosts() {
    // Wall-clock smoke: with >= 4 hardware threads, profiling a 6411-kernel
    // stream with 4 workers must beat the sequential run. Skipped (not
    // failed) on smaller hosts, where the parity tests above still
    // exercise real threads via explicit worker counts.
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup smoke: only {cores} hardware thread(s)");
        return;
    }
    let w = workload("gramschmidt");
    let sequential_profiler = Profiler::new(GpuConfig::v100());
    let parallel_profiler = Profiler::new(GpuConfig::v100())
        .with_executor(principal_kernel_analysis::core::Executor::new(4));

    // Warm up caches/allocator before timing.
    let _ = sequential_profiler.detailed(&w, 0..200).expect("warmup");

    let t0 = std::time::Instant::now();
    let a = sequential_profiler
        .detailed(&w, 0..w.kernel_count())
        .expect("sequential profiling");
    let sequential_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let b = parallel_profiler
        .detailed(&w, 0..w.kernel_count())
        .expect("parallel profiling");
    let parallel_time = t1.elapsed();

    assert_eq!(a, b, "profiling records diverged");
    assert!(
        parallel_time < sequential_time,
        "4 workers ({parallel_time:?}) not faster than sequential ({sequential_time:?})"
    );
}
