//! Differential SIMD parity: the kernel-dispatch acceptance contract.
//!
//! Every vector kernel in `pka_ml::simd` / `pka_stats::simd` claims to be
//! **bitwise identical** to its scalar reference on the default tier — for
//! every input, including NaN, ±inf, signed zeros and denormals — and the
//! opt-in fast-math tier claims a documented `2·d·ε` relative error bound.
//! This suite is the proof: each test feeds the same adversarial inputs
//! through every tier the host supports and compares raw `f64` bits (so a
//! one-ULP divergence, a reassociated add, or a stray FMA fails loudly).
//!
//! The scalar tier always runs, so the suite is meaningful on any host;
//! under `PKA_NO_SIMD=1` the vector tiers simply drop out and the suite
//! degenerates to scalar self-consistency, which forced-scalar CI uses to
//! prove the dispatch layer itself is inert.

use principal_kernel_analysis::ml::simd::{
    self, HamerlySlices, InterleavedRows, SimdTier, TransposedPoints,
};
use principal_kernel_analysis::ml::{Matrix, Pca};
use principal_kernel_analysis::stats::hash::UnitStream;
use principal_kernel_analysis::stats::simd as stats_simd;

/// Every tier the host supports, scalar first. The vector entries are
/// gated on runtime detection (and on `PKA_NO_SIMD`), so the suite runs
/// unchanged — just narrower — on hosts without AVX2/SSE4.1.
fn tiers() -> Vec<SimdTier> {
    let mut out = vec![SimdTier::Scalar];
    match simd::detect_tier() {
        SimdTier::Avx2 => out.extend([SimdTier::Sse41, SimdTier::Avx2]),
        SimdTier::Sse41 => out.push(SimdTier::Sse41),
        SimdTier::Scalar => {}
    }
    out
}

/// Adversarial value pool: ordinary magnitudes mixed with every special
/// class the IEEE bit-compare must survive.
const SPECIALS: [f64; 12] = [
    1.5,
    -2.25,
    0.0,
    -0.0,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    5e-324,  // smallest positive denormal
    1e-308,  // just below the normal range
    1e17,
    -3.5e-7,
    f64::MAX,
];

/// Deterministic mixed stream: mostly smooth random values with specials
/// injected at a fixed cadence.
fn mixed_values(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = UnitStream::new(seed);
    (0..n)
        .map(|i| {
            if i % 5 == 3 {
                SPECIALS[(i / 5 + i) % SPECIALS.len()]
            } else {
                rng.next_range(-100.0, 100.0)
            }
        })
        .collect()
}

/// Bit pattern with NaNs canonicalised: IEEE 754 leaves NaN sign and
/// payload propagation unspecified (x86 `inf - inf` generates the negative
/// "real indefinite", and the compiler may commute add operands, changing
/// which input NaN survives), so any NaN compares equal to any NaN.
/// Everything else — signed zeros, denormals, infinities — is exact to
/// the bit.
fn canon(x: f64) -> u64 {
    if x.is_nan() {
        0x7ff8_0000_0000_0000
    } else {
        x.to_bits()
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| canon(*x)).collect()
}

/// The dimension sweep every kernel test walks: below, at, and above each
/// vector width, plus odd remainders.
const DIMS: std::ops::RangeInclusive<usize> = 1..=17;

#[test]
fn sq_dist_batch_matches_scalar_bitwise_across_tiers() {
    for d in DIMS {
        for rows in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 33] {
            let flat = mixed_values(rows * d, 0xD15 + (d * 31 + rows) as u64);
            let point = mixed_values(d, 0x90 + d as u64);
            let reference: Vec<f64> = (0..rows)
                .map(|r| Matrix::sq_dist_hot(&point, &flat[r * d..(r + 1) * d]))
                .collect();
            for tier in tiers() {
                let inter = InterleavedRows::build(tier, &flat, d);
                let mut out = vec![0.0f64; rows];
                simd::sq_dist_batch(&point, &inter, &mut out);
                assert_eq!(
                    bits(&out),
                    bits(&reference),
                    "sq_dist_batch {tier:?} d={d} rows={rows}"
                );
            }
        }
    }
}

#[test]
fn dot_batch_matches_scalar_fold_bitwise_across_tiers() {
    for d in DIMS {
        for rows in [0usize, 1, 2, 4, 5, 8, 9, 16, 33] {
            let flat = mixed_values(rows * d, 0xD07 + (d * 37 + rows) as u64);
            let vec_in = mixed_values(d, 0xA1 + d as u64);
            let reference: Vec<f64> = (0..rows)
                .map(|r| {
                    vec_in
                        .iter()
                        .zip(&flat[r * d..(r + 1) * d])
                        .map(|(&x, &c)| x * c)
                        .sum()
                })
                .collect();
            for tier in tiers() {
                let inter = InterleavedRows::build(tier, &flat, d);
                let mut out = vec![0.0f64; rows];
                simd::dot_batch(&vec_in, &inter, &mut out);
                assert_eq!(
                    bits(&out),
                    bits(&reference),
                    "dot_batch {tier:?} d={d} rows={rows}"
                );
            }
        }
    }
}

#[test]
fn point_batched_distance_and_min_update_match_scalar_bitwise() {
    for d in DIMS {
        for n in [0usize, 1, 2, 3, 4, 5, 8, 9, 17, 33] {
            let flat = mixed_values(n * d, 0x7A11 + (d * 41 + n) as u64);
            let c = mixed_values(d, 0xC0 + d as u64);
            // Reference = the Scalar tier itself (its inner loop is the
            // documented scalar op order).
            let scalar_xt = TransposedPoints::build(SimdTier::Scalar, &flat, n, d);
            let mut reference = vec![0.0f64; n];
            simd::sq_dist_to_point(&scalar_xt, &c, &mut reference);

            let norms: Vec<f64> = (0..n)
                .map(|i| {
                    flat[i * d..(i + 1) * d]
                        .iter()
                        .map(|x| x * x)
                        .sum::<f64>()
                        .sqrt()
                })
                .collect();
            let c_norm = c.iter().map(|x| x * x).sum::<f64>().sqrt();
            let seed_d2 = mixed_values(n, 0x5EED);
            let mut ref_d2 = seed_d2.clone();
            simd::min_d2_update(&scalar_xt, &c, c_norm, &norms, &mut ref_d2);

            for tier in tiers() {
                let xt = TransposedPoints::build(tier, &flat, n, d);
                let mut out = vec![0.0f64; n];
                simd::sq_dist_to_point(&xt, &c, &mut out);
                assert_eq!(
                    bits(&out),
                    bits(&reference),
                    "sq_dist_to_point {tier:?} d={d} n={n}"
                );
                let mut d2 = seed_d2.clone();
                simd::min_d2_update(&xt, &c, c_norm, &norms, &mut d2);
                assert_eq!(bits(&d2), bits(&ref_d2), "min_d2_update {tier:?} d={d} n={n}");
            }
        }
    }
}

#[test]
fn prune_survivors_matches_scalar_bitwise_incl_sentinels_and_nan() {
    let k = 7usize;
    for n in [0usize, 1, 2, 3, 4, 5, 8, 13, 64, 257] {
        let mut rng = UnitStream::new(0xBB + n as u64);
        let mut pick = |scale: f64| -> f64 { rng.next_range(0.0, scale) };
        let upper: Vec<f64> = (0..n)
            .map(|i| match i % 7 {
                5 => f64::NAN,
                _ => pick(40.0),
            })
            .collect();
        let snap_upper: Vec<f64> = (0..n).map(|_| pick(8.0)).collect();
        // Stored lower bounds include the ±inf sentinels the assignment
        // loop uses for fresh and reseeded points.
        let lower: Vec<f64> = (0..n)
            .map(|i| match i % 6 {
                4 => f64::INFINITY,
                5 => f64::NEG_INFINITY,
                _ => pick(60.0),
            })
            .collect();
        let snap_lower: Vec<f64> = (0..n).map(|_| pick(8.0)).collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 5 + 1) % k).collect();
        let cum_drift: Vec<f64> = (0..k).map(|_| pick(9.0)).collect();
        let cum_excl: Vec<f64> = (0..k).map(|_| pick(9.0)).collect();
        let s_half: Vec<f64> = (0..k).map(|_| pick(30.0)).collect();
        let hs = HamerlySlices {
            upper: &upper,
            snap_upper: &snap_upper,
            lower: &lower,
            snap_lower: &snap_lower,
            labels: &labels,
            cum_drift: &cum_drift,
            cum_excl: &cum_excl,
            s_half: &s_half,
            cum_max: 11.25,
        };
        let mut reference = Vec::new();
        simd::prune_survivors(SimdTier::Scalar, &hs, &mut reference);
        let key = |s: &simd::Survivor| (s.index, canon(s.u), canon(s.l));
        for tier in tiers() {
            let mut out = Vec::new();
            simd::prune_survivors(tier, &hs, &mut out);
            assert_eq!(
                out.iter().map(key).collect::<Vec<_>>(),
                reference.iter().map(key).collect::<Vec<_>>(),
                "prune_survivors {tier:?} n={n}"
            );
        }
    }
}

#[test]
fn scan_points_matches_scalar_bitwise_across_tiers() {
    for d in DIMS {
        for k in [1usize, 2, 3, 5, 8, 24] {
            let n = 40;
            let data = mixed_values(n * d, 0x5CA9 + (d * 43 + k) as u64);
            let centroids = mixed_values(k * d, 0xCE97 + (d + k * 7) as u64);
            for m in [0usize, 1, 2, 4, 5, 8, 9, 11, 40] {
                let indices: Vec<u32> = (0..m).map(|i| ((i * 7) % n) as u32).collect();
                let mut reference = Vec::new();
                simd::scan_points(
                    SimdTier::Scalar,
                    &data,
                    d,
                    &indices,
                    &centroids,
                    k,
                    &mut reference,
                );
                let key = |t: &(u32, f64, f64)| (t.0, canon(t.1), canon(t.2));
                for tier in tiers() {
                    let mut out = Vec::new();
                    simd::scan_points(tier, &data, d, &indices, &centroids, k, &mut out);
                    assert_eq!(
                        out.iter().map(key).collect::<Vec<_>>(),
                        reference.iter().map(key).collect::<Vec<_>>(),
                        "scan_points {tier:?} d={d} k={k} m={m}"
                    );
                }
            }
        }
    }
}

#[test]
fn scan_points_ties_break_first_and_nan_never_places() {
    // Centroids 1 and 3 are identical: the winner must be index 1 on every
    // tier (strict `<` keeps the first). Centroid 2 is all-NaN: its
    // distance is NaN, every comparison is false, and it never places.
    let d = 3;
    let data: Vec<f64> = (0..8 * d).map(|i| (i % 5) as f64 * 0.5).collect();
    let tied: Vec<f64> = vec![0.25; d];
    let mut centroids = Vec::new();
    centroids.extend(vec![9.0; d]); // 0: far
    centroids.extend(&tied); // 1: winner
    centroids.extend(vec![f64::NAN; d]); // 2: poisoned
    centroids.extend(&tied); // 3: equal to 1, must lose the tie
    let indices: Vec<u32> = (0..8).collect();
    for tier in tiers() {
        let mut out = Vec::new();
        simd::scan_points(tier, &data, d, &indices, &centroids, 4, &mut out);
        for (i, &(best, best_d, second_d)) in out.iter().enumerate() {
            assert_eq!(best, 1, "{tier:?} row {i}: tie must keep the first index");
            assert!(best_d.is_finite());
            // Second-best is the tied duplicate's identical distance, never
            // the NaN centroid.
            assert_eq!(
                second_d.to_bits(),
                best_d.to_bits(),
                "{tier:?} row {i}: duplicate centroid is second"
            );
        }
    }
}

#[test]
fn welford_fold_and_zscore_match_scalar_bitwise_across_tiers() {
    for d in DIMS {
        let steps = 29;
        let stream: Vec<Vec<f64>> = (0..steps)
            .map(|t| mixed_values(d, 0xF01D + (t * 131 + d) as u64))
            .collect();
        let mut ref_mean = vec![0.0f64; d];
        let mut ref_m2 = vec![0.0f64; d];
        for (t, xs) in stream.iter().enumerate() {
            stats_simd::welford_fold_scalar((t + 1) as f64, xs, &mut ref_mean, &mut ref_m2);
        }
        let mut ref_z = mixed_values(d, 0x2EE7);
        stats_simd::zscore_apply_scalar(steps as f64, &ref_mean, &ref_m2, &mut ref_z);

        for tier in tiers() {
            let mut mean = vec![0.0f64; d];
            let mut m2 = vec![0.0f64; d];
            for (t, xs) in stream.iter().enumerate() {
                stats_simd::welford_fold(tier, (t + 1) as f64, xs, &mut mean, &mut m2);
            }
            assert_eq!(bits(&mean), bits(&ref_mean), "welford mean {tier:?} d={d}");
            assert_eq!(bits(&m2), bits(&ref_m2), "welford m2 {tier:?} d={d}");
            let mut z = mixed_values(d, 0x2EE7);
            stats_simd::zscore_apply(tier, steps as f64, &mean, &m2, &mut z);
            assert_eq!(bits(&z), bits(&ref_z), "zscore {tier:?} d={d}");

            // n = 0: std is NaN, the comparison fails, every dimension is
            // centred by mean 0 — i.e. the input passes through unchanged.
            let zero_mean = vec![0.0f64; d];
            let zero_m2 = vec![0.0f64; d];
            let probe = mixed_values(d, 0x0);
            let mut z0 = probe.clone();
            stats_simd::zscore_apply(tier, 0.0, &zero_mean, &zero_m2, &mut z0);
            assert_eq!(bits(&z0), bits(&probe), "empty zscore {tier:?} d={d}");
        }
    }
}

#[test]
fn pca_projection_on_active_tier_matches_scalar_fold_bitwise() {
    // End-to-end: the default tier's batched projection must reproduce the
    // scalar `Σ (x−m)·c` fold bit for bit on whatever tier this host runs.
    let mut rng = UnitStream::new(0x9CA);
    let rows: Vec<Vec<f64>> = (0..23)
        .map(|_| (0..6).map(|_| rng.next_range(-50.0, 50.0)).collect())
        .collect();
    let data = Matrix::from_rows(&rows).expect("valid data");
    let fit = Pca::new(4).fit(&data).expect("pca fits");
    let t = fit.transform(&data).expect("projects");
    let means = data.column_means();
    for (i, row) in data.iter_rows().enumerate() {
        for (j, comp) in fit.components().iter().enumerate() {
            let scalar: f64 = row
                .iter()
                .zip(means.iter().zip(comp))
                .map(|(&x, (&m, &c))| (x - m) * c)
                .sum();
            assert_eq!(
                t.get(i, j).to_bits(),
                scalar.to_bits(),
                "pca projection row {i} component {j}"
            );
        }
    }
}

#[test]
fn fast_math_relative_error_stays_within_documented_bound() {
    const EPS: f64 = f64::EPSILON / 2.0; // ε = 2⁻⁵³, unit roundoff
    let mut rng = UnitStream::new(0xFA57);
    for d in 1..=64usize {
        let a: Vec<f64> = (0..d).map(|_| rng.next_range(-1e6, 1e6)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.next_range(-1e6, 1e6)).collect();
        let exact_sq = Matrix::sq_dist_hot(&a, &b);
        let exact_dot: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let dot_abs: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y).abs()).sum();
        for tier in tiers() {
            let fast_sq = simd::sq_dist_fast(tier, &a, &b);
            // Squared-distance terms are non-negative, so the sum of
            // absolute terms *is* the exact result.
            assert!(
                (fast_sq - exact_sq).abs() <= 2.0 * d as f64 * EPS * exact_sq,
                "sq_dist_fast {tier:?} d={d}: {fast_sq} vs {exact_sq}"
            );
            let fast_dot = simd::dot_fast(tier, &a, &b);
            assert!(
                (fast_dot - exact_dot).abs() <= 2.0 * d as f64 * EPS * dot_abs,
                "dot_fast {tier:?} d={d}: {fast_dot} vs {exact_dot}"
            );
        }
    }
}

#[test]
fn degenerate_shapes_are_exact() {
    // d = 0: both checked and hot variants agree on the empty fold.
    assert_eq!(Matrix::sq_dist(&[], &[]), 0.0);
    assert_eq!(Matrix::sq_dist_hot(&[], &[]), 0.0);
    // d = 1: a single squared difference, no vector lanes involved.
    assert_eq!(Matrix::sq_dist(&[3.0], &[-1.0]), 16.0);
    assert_eq!(
        Matrix::sq_dist_hot(&[3.0], &[-1.0]).to_bits(),
        16.0f64.to_bits()
    );
    // Single-row matrix: valid, row-addressable, zero distance to itself.
    let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).expect("single row");
    assert_eq!(m.rows(), 1);
    assert_eq!(Matrix::sq_dist(m.row(0), m.row(0)), 0.0);

    for tier in tiers() {
        // Zero rows through every batched kernel: no panic, no output.
        let inter = InterleavedRows::build(tier, &[], 3);
        let mut out: Vec<f64> = Vec::new();
        simd::sq_dist_batch(&[1.0, 2.0, 3.0], &inter, &mut out);
        simd::dot_batch(&[1.0, 2.0, 3.0], &inter, &mut out);
        assert!(out.is_empty());

        let xt = TransposedPoints::build(tier, &[], 0, 3);
        assert!(xt.is_empty());
        simd::sq_dist_to_point(&xt, &[0.0, 0.0, 0.0], &mut out);
        assert!(out.is_empty());

        let mut winners = Vec::new();
        simd::scan_points(tier, &[1.0, 2.0], 2, &[], &[0.0, 0.0], 1, &mut winners);
        assert!(winners.is_empty());
    }
}
