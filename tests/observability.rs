//! End-to-end observability contract of the `pka` binary: a traced run
//! emits schema-valid JSONL, and the `--metrics-out` manifest's counter
//! totals agree with the workload's ground truth (the Table 3 kernel
//! counts) and with the acceptance bar for stage coverage.

use std::path::PathBuf;
use std::process::Command;

use principal_kernel_analysis::obs;
use principal_kernel_analysis::workloads::all_workloads;
use serde_json::Value;

fn pka_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pka")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pka_obs_it_{}_{name}", std::process::id()))
}

fn read_json(path: &PathBuf) -> Value {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// `pka select` on a Table 3 workload with both sinks attached: the trace
/// must be schema-valid JSONL and the manifest's record counters must
/// equal the workload's kernel-launch count (gauss_208's Table 3 row).
#[test]
fn traced_select_manifest_matches_table3_kernel_count() {
    let trace = temp_path("select_trace.jsonl");
    let manifest = temp_path("select_manifest.json");
    let status = Command::new(pka_bin())
        .args([
            "select",
            "--workload",
            "gauss_208",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            manifest.to_str().unwrap(),
        ])
        .output()
        .expect("run pka select");
    assert!(
        status.status.success(),
        "pka select failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    // --- JSONL trace: every line parses; header first; records typed. ---
    let body = std::fs::read_to_string(&trace).expect("read trace");
    let lines: Vec<Value> = body
        .lines()
        .enumerate()
        .map(|(i, l)| {
            serde_json::from_str(l).unwrap_or_else(|e| panic!("trace line {i} invalid: {e}"))
        })
        .collect();
    assert!(!lines.is_empty(), "trace is empty");
    assert_eq!(lines[0]["schema"].as_str(), Some(obs::TRACE_SCHEMA));
    assert_eq!(lines[0]["type"].as_str(), Some("header"));
    for (i, line) in lines.iter().enumerate().skip(1) {
        match line["type"].as_str() {
            Some("span") => {
                assert!(line["name"].as_str().is_some(), "span {i} missing name");
                assert!(line["dur_ns"].as_u64().is_some(), "span {i} missing dur_ns");
                assert!(line["depth"].as_u64().is_some(), "span {i} missing depth");
            }
            Some("event") => {
                assert!(line["name"].as_str().is_some(), "event {i} missing name");
                assert!(line["fields"].as_object().is_some(), "event {i} missing fields");
            }
            other => panic!("trace line {i} has unexpected type {other:?}"),
        }
    }
    assert!(
        lines.iter().any(|l| l["name"].as_str() == Some("pks.select")),
        "trace never recorded the pks.select span"
    );

    // --- Manifest: counters agree with the workload's ground truth. ---
    let kernel_count = all_workloads()
        .into_iter()
        .find(|w| w.name() == "gauss_208")
        .expect("gauss_208 exists")
        .kernel_count();
    let m = read_json(&manifest);
    assert_eq!(m["schema"].as_str(), Some(obs::MANIFEST_SCHEMA));
    // gauss_208 profiles one-level (detailed profiling is tractable), so
    // every kernel launch becomes one detailed record fed to PKS — the
    // Table 3 kernel count.
    assert_eq!(
        m["counters"]["profile.detailed_records"].as_u64(),
        Some(kernel_count),
        "detailed records != Table 3 kernel count"
    );
    assert_eq!(
        m["counters"]["pks.records"].as_u64(),
        Some(kernel_count),
        "PKS input records != Table 3 kernel count"
    );
    assert!(m["gauges"]["pks.selected_k"].as_u64().unwrap_or(0) >= 1);
    assert!(
        m["checksums"]["selection"].as_u64().is_some(),
        "manifest missing selection checksum"
    );
    assert_eq!(m["config"]["command"].as_str(), Some("select"));

    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&manifest).ok();
}

/// `pka simulate` with metrics: the stop rule must actually fire, at least
/// six distinct counters must populate, and per-stage span timings must
/// cover >= 90% of total wall time (the acceptance bar).
#[test]
fn simulate_manifest_covers_wall_time_and_stop_rule() {
    let manifest = temp_path("simulate_manifest.json");
    let status = Command::new(pka_bin())
        .args([
            "simulate",
            "--workload",
            "bfs65536",
            "--metrics-out",
            manifest.to_str().unwrap(),
        ])
        .output()
        .expect("run pka simulate");
    assert!(
        status.status.success(),
        "pka simulate failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let m = read_json(&manifest);
    assert_eq!(m["schema"].as_str(), Some(obs::MANIFEST_SCHEMA));

    let counters = m["counters"].as_object().expect("counters object");
    let populated = counters.values().filter(|v| v.as_u64() != Some(0)).count();
    assert!(
        populated >= 6,
        "expected >= 6 nonzero counters, got {populated}: {counters:?}"
    );
    assert!(
        counters["pkp.stops"].as_u64().unwrap_or(0) >= 1,
        "the PKP stop rule never fired"
    );
    assert!(counters["pkp.evals"].as_u64().unwrap_or(0) >= 1);
    assert!(counters["sim.kernels"].as_u64().unwrap_or(0) >= 1);

    let wall_ns = m["wall_ns"].as_u64().expect("wall_ns");
    let max_stage_ns = m["stages"]
        .as_object()
        .expect("stages object")
        .values()
        .filter_map(|s| s["total_ns"].as_u64())
        .max()
        .unwrap_or(0);
    assert!(
        max_stage_ns as f64 >= 0.9 * wall_ns as f64,
        "stage coverage {max_stage_ns} ns < 90% of wall {wall_ns} ns"
    );

    std::fs::remove_file(&manifest).ok();
}
