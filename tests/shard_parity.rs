//! Sharded-vs-single parity: the `pka-stream` sharding acceptance contract.
//!
//! The sharded engine partitions the tail across N shard pipelines by
//! consistent hashing and reconciles them with a deterministic weighted
//! merge. The contract: routing assigns every record to exactly one shard
//! and is a pure function of the shard count; the merged selection matches
//! the single-pipeline stream exactly (same K, same projected cycles); the
//! final checkpoint is byte-identical across worker counts, across a live
//! mid-run reshard (lane moves are pure scheduling), and across a
//! checkpoint→resume round trip at any worker count.

use principal_kernel_analysis::core::Executor;
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::stream::{
    synthetic_workload, HashRing, ShardedCheckpoint, ShardedOutcome, ShardedStreamPks,
    StreamConfig, StreamPks, WorkloadSource,
};
use principal_kernel_analysis::workloads::Workload;

const PREFIX: u64 = 400;

fn stream_config() -> StreamConfig {
    StreamConfig::default()
        .with_prefix(PREFIX)
        .with_checkpoint_every(1_500)
        .with_reservoir(256)
        .with_batch(128)
}

fn source_for(w: &Workload) -> WorkloadSource {
    WorkloadSource::new(w.clone(), Profiler::new(GpuConfig::v100()))
}

fn run_sharded(w: &Workload, shards: usize, workers: usize) -> ShardedOutcome {
    let mut source = source_for(w);
    ShardedStreamPks::new(stream_config(), shards)
        .with_executor(Executor::new(workers))
        .run(&mut source, |_| Ok(()))
        .expect("sharded stream runs")
}

#[test]
fn every_position_routes_to_exactly_one_in_range_owner() {
    for shards in 1..=8usize {
        let ring = HashRing::new(shards);
        for pos in 0..10_000u64 {
            let owner = ring.route(pos);
            assert!(owner < shards, "pos {pos} routed to {owner} of {shards}");
            // Routing is a function: re-asking can never re-place a record.
            assert_eq!(owner, ring.route(pos));
        }
    }
}

#[test]
fn ring_placement_is_a_pure_function_of_the_shard_count() {
    for shards in 1..=8usize {
        let a = HashRing::new(shards);
        let b = HashRing::new(shards);
        // Independent constructions agree point for point, so placement
        // cannot depend on construction order, machine, or enumeration.
        assert_eq!(a.points(), b.points());
        assert_eq!(a.map_hash(), b.map_hash());
    }
    // Pin the 4-shard routing table across platforms and refactors: any
    // change to the hash, salt, or virtual-node layout lands here.
    assert_eq!(HashRing::new(4).map_hash(), 0xb59d_600c_c97f_f777);
}

#[test]
fn sharded_selection_matches_the_single_pipeline_exactly() {
    let w = synthetic_workload(6_000);
    let mut source = source_for(&w);
    let single = StreamPks::new(stream_config())
        .with_executor(Executor::sequential())
        .run(&mut source, |_| Ok(()))
        .expect("single-pipeline stream runs");

    for shards in [2usize, 4] {
        let sharded = run_sharded(&w, shards, 4);
        // The acceptance tolerance is 1% on projected cycles; the merge
        // reconciliation is deterministic shared code, so demand exactness.
        assert_eq!(sharded.report.selected_k, single.report.selected_k, "shards={shards}");
        assert_eq!(
            sharded.report.projected_cycles, single.report.projected_cycles,
            "shards={shards}"
        );
        assert_eq!(
            sharded.report.group_counts, single.report.group_counts,
            "shards={shards}"
        );
        // Every tail record landed on exactly one shard.
        assert_eq!(sharded.shard_records.len(), shards);
        assert_eq!(
            sharded.shard_records.iter().sum::<u64>(),
            sharded.report.records - PREFIX,
            "shards={shards}"
        );
        assert_eq!(sharded.map_hash, HashRing::new(shards).map_hash());
    }
}

#[test]
fn worker_counts_produce_byte_identical_sharded_checkpoints() {
    let w = synthetic_workload(5_000);
    let sequential = run_sharded(&w, 4, 1);
    for workers in [2usize, 4, 8] {
        let parallel = run_sharded(&w, 4, workers);
        assert_eq!(
            parallel.final_checkpoint.to_json(),
            sequential.final_checkpoint.to_json(),
            "workers={workers}"
        );
    }
}

#[test]
fn live_reshard_leaves_every_checkpoint_byte_identical() {
    let w = synthetic_workload(5_000);
    let collect = |engine: ShardedStreamPks| {
        let mut periodic: Vec<String> = Vec::new();
        let mut source = source_for(&w);
        let outcome = engine
            .with_executor(Executor::new(4))
            .run(&mut source, |cp| {
                periodic.push(cp.to_json());
                Ok(())
            })
            .expect("sharded stream runs");
        (periodic, outcome.final_checkpoint.to_json())
    };
    let (base_periodic, base_final) = collect(ShardedStreamPks::new(stream_config(), 4));
    // Migrate shard 1 to lane 3 mid-stream: ownership is pure scheduling,
    // so nothing serialized may move by a single byte.
    let (moved_periodic, moved_final) =
        collect(ShardedStreamPks::new(stream_config(), 4).with_reshard(2_500, 1, 3));
    assert!(!base_periodic.is_empty());
    assert_eq!(moved_periodic, base_periodic);
    assert_eq!(moved_final, base_final);
}

#[test]
fn sharded_resume_reproduces_the_final_checkpoint_at_any_worker_count() {
    let w = synthetic_workload(5_000);
    let uninterrupted = run_sharded(&w, 4, 4);

    let mut first: Option<ShardedCheckpoint> = None;
    let mut source = source_for(&w);
    ShardedStreamPks::new(stream_config(), 4)
        .with_executor(Executor::new(4))
        .run(&mut source, |cp| {
            if first.is_none() {
                first = Some(cp.clone());
            }
            Ok(())
        })
        .expect("sharded stream runs");
    let mid = first.expect("at least one periodic checkpoint");
    assert!(mid.records < uninterrupted.final_checkpoint.records);

    for workers in [1usize, 2, 4, 8] {
        let mut source = source_for(&w);
        let resumed = ShardedStreamPks::new(stream_config(), 4)
            .with_executor(Executor::new(workers))
            .resume(&mut source, &mid, |_| Ok(()))
            .expect("sharded resume runs");
        assert_eq!(
            resumed.final_checkpoint.to_json(),
            uninterrupted.final_checkpoint.to_json(),
            "workers={workers}"
        );
        assert_eq!(resumed.report.selected_k, uninterrupted.report.selected_k);
    }
}
