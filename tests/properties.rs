//! Property-based tests over the core invariants, spanning crates.

use principal_kernel_analysis::gpu::{
    GpuConfig, GpuGeneration, KernelDescriptor, KernelMetrics, Occupancy, SiliconExecutor,
};
use principal_kernel_analysis::ml::{KMeans, Matrix};
use principal_kernel_analysis::sim::{SimOptions, Simulator, WarpProgram};
use principal_kernel_analysis::stats::{OnlineStats, RollingStats};
use proptest::prelude::*;

/// A random but always-valid kernel descriptor, kept small enough for
/// debug-mode simulation.
fn arb_kernel() -> impl Strategy<Value = KernelDescriptor> {
    (
        1u32..32,        // blocks
        1u32..257,       // threads per block
        0u32..200,       // fp32
        0u32..40,        // global loads
        0u32..20,        // global stores
        0u32..60,        // shared loads
        0u32..4,         // syncs
        1.0f64..32.0,    // coalescing sectors
        0.0f64..1.0,     // l1 locality
        0.0f64..1.0,     // l2 locality
        0.05f64..1.0,    // divergence efficiency
        any::<u64>(),    // seed
    )
        .prop_map(
            |(blocks, tpb, fp, ld, st, sh, sync, coal, l1, l2, div, seed)| {
                KernelDescriptor::builder("prop")
                    .grid_blocks(blocks)
                    .block_threads(tpb)
                    .fp32_per_thread(fp)
                    .global_loads_per_thread(ld)
                    .global_stores_per_thread(st)
                    .shared_loads_per_thread(sh)
                    .syncs_per_thread(sync)
                    .coalescing_sectors(coal)
                    .l1_locality(l1)
                    .l2_locality(l2)
                    .divergence_efficiency(div)
                    .seed(seed)
                    .build()
                    .expect("all strategy values are in range")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_length_always_matches_descriptor(k in arb_kernel()) {
        let program = WarpProgram::from_descriptor(&k);
        prop_assert_eq!(program.len(), k.instructions_per_thread());
    }

    #[test]
    fn silicon_is_deterministic_and_positive(k in arb_kernel()) {
        let silicon = SiliconExecutor::new(GpuConfig::v100());
        let a = silicon.execute(&k).expect("in-range kernels launch");
        let b = silicon.execute(&k).expect("in-range kernels launch");
        prop_assert_eq!(a, b);
        prop_assert!(a.cycles > 0);
        prop_assert!(a.seconds > 0.0);
        prop_assert!((0.0..=100.0).contains(&a.dram_util_pct));
        prop_assert!((0.0..=100.0).contains(&a.l2_miss_rate_pct));
    }

    #[test]
    fn occupancy_never_exceeds_hardware_limits(k in arb_kernel()) {
        let config = GpuConfig::v100();
        let occ = Occupancy::compute(&k, &config).expect("in-range kernels fit");
        prop_assert!(occ.blocks_per_sm() >= 1);
        prop_assert!(occ.blocks_per_sm() <= config.max_blocks_per_sm());
        prop_assert!(occ.resident_warps_per_sm() <= config.max_warps_per_sm());
        prop_assert!(occ.fraction() <= 1.0);
        // Waves cover the grid exactly.
        prop_assert!(occ.waves() * occ.wave_blocks() >= k.total_blocks());
        prop_assert!((occ.waves() - 1) * occ.wave_blocks() < k.total_blocks());
    }

    #[test]
    fn metrics_scale_linearly_with_grid(k in arb_kernel()) {
        let m1 = KernelMetrics::from_descriptor(&k, GpuGeneration::Volta);
        let doubled = KernelDescriptor::builder(k.name())
            .grid_blocks(k.grid().x * 2)
            .block(k.block())
            .fp32_per_thread(k.count(principal_kernel_analysis::gpu::InstClass::Fp32))
            .global_loads_per_thread(k.count(principal_kernel_analysis::gpu::InstClass::LdGlobal))
            .int_per_thread(k.count(principal_kernel_analysis::gpu::InstClass::Int))
            .branches_per_thread(k.count(principal_kernel_analysis::gpu::InstClass::Branch))
            .build()
            .expect("valid");
        let m2 = KernelMetrics::from_descriptor(&doubled, GpuGeneration::Volta);
        prop_assert_eq!(m2.thread_blocks, m1.thread_blocks * 2);
        // Shared per-thread structure means instruction counts double with
        // the grid (up to the classes carried over).
        prop_assert!(m2.thread_global_loads >= m1.thread_global_loads);
    }

    #[test]
    fn simulation_retires_every_instruction(k in arb_kernel()) {
        let sim = Simulator::new(
            GpuConfig::builder("prop4").num_sms(4).build().expect("valid"),
            SimOptions::default(),
        );
        let r = sim.run_kernel(&k).expect("in-range kernels simulate");
        prop_assert_eq!(r.instructions, k.total_warp_instructions());
        prop_assert_eq!(r.blocks_completed, k.total_blocks());
        prop_assert!(!r.early_stop);
        // IPC cannot exceed the device issue bound.
        let peak = 4.0 * 4.0;
        prop_assert!(r.warp_ipc <= peak + 1e-9);
    }

    #[test]
    fn rolling_stats_match_naive_window(xs in prop::collection::vec(-1e6f64..1e6, 1..200),
                                         window in 1usize..32) {
        let mut rolling = RollingStats::new(window);
        for (i, &x) in xs.iter().enumerate() {
            rolling.push(x);
            let lo = (i + 1).saturating_sub(window);
            let win = &xs[lo..=i];
            let naive: OnlineStats = win.iter().copied().collect();
            let mean_scale = naive.mean().abs().max(1.0);
            prop_assert!((rolling.mean() - naive.mean()).abs() / mean_scale < 1e-9);
            let var_scale = naive.population_variance().abs().max(1.0);
            prop_assert!(
                (rolling.variance() - naive.population_variance()).abs() / var_scale < 1e-6,
                "variance {} vs {}", rolling.variance(), naive.population_variance()
            );
        }
    }

    #[test]
    fn kmeans_labels_are_a_partition(points in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 3), 2..60),
            k in 1usize..8) {
        let data = Matrix::from_rows(&points).expect("non-empty");
        let fit = KMeans::new(k).with_seed(7).fit(&data).expect("fits");
        prop_assert_eq!(fit.labels().len(), points.len());
        for &l in fit.labels() {
            prop_assert!(l < fit.k());
        }
        // Inertia is non-negative and zero only if every point sits on a
        // centroid.
        prop_assert!(fit.inertia() >= 0.0);
        let members: usize = fit.members().iter().map(|m| m.len()).sum();
        prop_assert_eq!(members, points.len());
    }
}
