//! Invariants that must hold for every one of the 147 studied workloads —
//! the contract the PKA pipeline relies on.

use std::collections::BTreeSet;

use principal_kernel_analysis::gpu::{GpuConfig, GpuGeneration, KernelMetrics, Occupancy};
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::workloads::{all_workloads, Suite};

/// A cheap sample of launch indices spanning a stream.
fn probe_ids(count: u64) -> Vec<u64> {
    let mut ids: BTreeSet<u64> = [0, count / 3, count / 2, 2 * count / 3, count - 1]
        .into_iter()
        .map(|i| i.min(count - 1))
        .collect();
    ids.insert(0);
    ids.into_iter().collect()
}

#[test]
fn every_kernel_launches_on_every_studied_gpu() {
    let configs = [GpuConfig::v100(), GpuConfig::rtx2060(), GpuConfig::rtx3070()];
    for w in all_workloads() {
        for id in probe_ids(w.kernel_count()) {
            let k = w.kernel(id.into());
            for config in &configs {
                let occ = Occupancy::compute(&k, config);
                assert!(
                    occ.is_ok(),
                    "{} kernel {id} does not fit on {}: {:?}",
                    w.name(),
                    config.name(),
                    occ.err()
                );
            }
        }
    }
}

#[test]
fn every_kernel_produces_finite_metrics() {
    for w in all_workloads() {
        for id in probe_ids(w.kernel_count()) {
            let k = w.kernel(id.into());
            let m = KernelMetrics::from_descriptor(&k, GpuGeneration::Volta);
            let v = m.to_feature_vector();
            assert!(
                v.iter().all(|x| x.is_finite()),
                "{} kernel {id} has non-finite features",
                w.name()
            );
            assert!(m.instructions > 0.0, "{} kernel {id}", w.name());
        }
    }
}

#[test]
fn silicon_executes_every_probed_kernel() {
    let profiler = Profiler::new(GpuConfig::v100());
    for w in all_workloads() {
        for id in probe_ids(w.kernel_count()) {
            let records = profiler
                .detailed(&w, id..id + 1)
                .unwrap_or_else(|e| panic!("{} kernel {id}: {e}", w.name()));
            assert!(records[0].cycles > 0);
            assert!(records[0].seconds > 0.0);
        }
    }
}

#[test]
fn only_mlperf_needs_two_level_profiling() {
    let profiler = Profiler::new(GpuConfig::v100());
    for w in all_workloads() {
        let intractable = profiler.profiling_cost(&w).detailed_is_intractable();
        match w.suite() {
            Suite::MlPerf => {
                // The big three must trip the rule; ResNet and 3D-UNet must
                // not (the paper profiled them in full).
                let expects_two_level = w.name().contains("ssd")
                    || w.name().contains("bert")
                    || w.name().contains("gnmt");
                assert_eq!(
                    intractable,
                    expects_two_level,
                    "{}: two-level = {intractable}",
                    w.name()
                );
            }
            _ => assert!(!intractable, "{} should profile in full", w.name()),
        }
    }
}

#[test]
fn iteration_hints_exist_exactly_for_cyclic_workloads() {
    let all = all_workloads();
    // Every MLPerf app is iteration-structured (that is what makes the
    // single-iteration baseline applicable to them).
    for w in all.iter().filter(|w| w.suite() == Suite::MlPerf) {
        assert!(w.iteration_hint().is_some(), "{}", w.name());
    }
    // Single-kernel workloads cannot have one.
    for name in ["nn", "lavaMD", "gemm", "syrk"] {
        let w = all.iter().find(|w| w.name() == name).expect("exists");
        assert!(w.iteration_hint().is_none(), "{name}");
    }
}

#[test]
fn classic_workloads_stay_within_full_simulation_reach() {
    // The paper's classic suites are sized to complete in simulation;
    // keep ours bounded so the harness remains runnable.
    for w in all_workloads().into_iter().filter(|w| w.suite() != Suite::MlPerf) {
        let insts: u64 = w.iter().map(|(_, k)| k.total_warp_instructions()).sum();
        assert!(
            insts < 600_000_000,
            "{} has {insts} warp instructions — classic suites must stay simulable",
            w.name()
        );
        assert!(w.kernel_count() <= 10_000, "{}", w.name());
    }
}

#[test]
fn mlperf_dwarfs_the_classic_suites() {
    let all = all_workloads();
    let max_classic = all
        .iter()
        .filter(|w| w.suite() != Suite::MlPerf)
        .map(|w| w.kernel_count())
        .max()
        .expect("non-empty");
    let min_mlperf_scaled = all
        .iter()
        .filter(|w| w.suite() == Suite::MlPerf && !w.name().contains("3dunet"))
        .map(|w| w.kernel_count())
        .min()
        .expect("non-empty");
    assert!(
        min_mlperf_scaled > max_classic,
        "scaled MLPerf streams ({min_mlperf_scaled}) must dwarf classic ones ({max_classic})"
    );
}
