//! Golden test for `pka trace export`: converting the committed
//! `pka.trace/v1` fixture must reproduce the committed Chrome
//! trace-event JSON byte for byte, and the output must satisfy the
//! structural invariants Perfetto / `about:tracing` rely on.

use std::path::{Path, PathBuf};
use std::process::Command;

use serde_json::Value;

fn pka_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pka")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pka_export_it_{}_{name}", std::process::id()))
}

#[test]
fn export_matches_committed_golden() {
    let out = temp_path("chrome.json");
    let run = Command::new(pka_bin())
        .args([
            "trace",
            "export",
            fixture("trace_fixture.jsonl").to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("run pka trace export");
    assert!(
        run.status.success(),
        "pka trace export failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let produced = std::fs::read_to_string(&out).expect("read produced chrome json");
    let golden = std::fs::read_to_string(fixture("trace_fixture_chrome.json"))
        .expect("read golden chrome json");
    assert_eq!(produced, golden, "chrome trace diverged from the golden fixture");
    std::fs::remove_file(&out).ok();
}

/// Structural invariants of the exported document, independent of the
/// exact golden bytes: valid JSON, the two top-level Chrome keys, every
/// event carrying the mandatory `ph`/`pid`/`name` fields, "X" events with
/// microsecond `ts`/`dur`, and one named lane per thread.
#[test]
fn export_is_valid_chrome_trace_json() {
    let run = Command::new(pka_bin())
        .args([
            "trace",
            "export",
            fixture("trace_fixture.jsonl").to_str().unwrap(),
        ])
        .output()
        .expect("run pka trace export");
    assert!(run.status.success());
    let stdout = String::from_utf8(run.stdout).expect("stdout is UTF-8");
    let doc: Value = serde_json::from_str(&stdout).expect("stdout is valid JSON");
    assert_eq!(doc["displayTimeUnit"].as_str(), Some("ms"));
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    let mut lanes = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev["ph"].as_str().unwrap_or_else(|| panic!("event {i} missing ph"));
        assert!(ev["pid"].as_u64().is_some(), "event {i} missing pid");
        assert!(ev["name"].as_str().is_some(), "event {i} missing name");
        match ph {
            "M" => {
                if ev["name"].as_str() == Some("thread_name") {
                    lanes.push(ev["args"]["name"].as_str().unwrap().to_string());
                }
            }
            "X" => {
                assert!(ev["ts"].as_f64().is_some(), "span {i} missing ts");
                assert!(ev["dur"].as_f64().is_some(), "span {i} missing dur");
            }
            "i" => {
                assert_eq!(ev["s"].as_str(), Some("t"), "instant {i} missing scope");
            }
            other => panic!("event {i} has unexpected phase {other:?}"),
        }
    }
    // The fixture exercises the deterministic lane mapping: main first,
    // then the executor workers in index order.
    assert_eq!(lanes, ["main", "pka-w0", "pka-w1"]);

    // The fixture's unknown record type must be skipped, not exported.
    assert!(!events
        .iter()
        .any(|e| e["name"].as_str() == Some("ignored")));
}

/// Golden test for the counter-track fixture: a trace carrying
/// `"counter"` records (snapshot throughput, reservoir occupancy, one
/// lane per shard) converts to the committed Chrome JSON byte for byte,
/// with one `"C"` event per well-formed counter record.
#[test]
fn counter_tracks_match_committed_golden() {
    let out = temp_path("counters_chrome.json");
    let run = Command::new(pka_bin())
        .args([
            "trace",
            "export",
            fixture("trace_fixture_counters.jsonl").to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("run pka trace export");
    assert!(
        run.status.success(),
        "pka trace export failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let produced = std::fs::read_to_string(&out).expect("read produced chrome json");
    let golden = std::fs::read_to_string(fixture("trace_fixture_counters_chrome.json"))
        .expect("read golden chrome json");
    assert_eq!(produced, golden, "counter-track export diverged from the golden fixture");
    std::fs::remove_file(&out).ok();

    let doc: Value = serde_json::from_str(&golden).expect("golden is valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    let counters: Vec<&Value> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("C"))
        .collect();
    // 8 well-formed counter records; the one missing `values` is skipped.
    assert_eq!(counters.len(), 8);
    for c in &counters {
        assert!(c["name"].as_str().is_some());
        assert!(c["ts"].as_f64().is_some());
        assert!(c["args"].as_object().is_some_and(|m| !m.is_empty()));
    }
    // One counter lane per shard: distinct per-shard track names.
    for name in ["snapshot.shard0.records", "snapshot.shard1.records"] {
        assert_eq!(
            counters.iter().filter(|c| c["name"].as_str() == Some(name)).count(),
            2,
            "missing shard lane {name}"
        );
    }
    assert!(!events
        .iter()
        .any(|e| e["name"].as_str() == Some("malformed-no-values")));
}

/// A file that is not a `pka.trace/v1` stream is refused.
#[test]
fn export_rejects_non_trace_input() {
    let bogus = temp_path("bogus.jsonl");
    std::fs::write(&bogus, "{\"schema\":\"other/v1\",\"type\":\"header\"}\n").unwrap();
    let run = Command::new(pka_bin())
        .args(["trace", "export", bogus.to_str().unwrap()])
        .output()
        .expect("run pka trace export");
    assert!(!run.status.success(), "bogus input was accepted");
    std::fs::remove_file(&bogus).ok();
}
