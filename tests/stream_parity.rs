//! Batch-vs-stream parity: the `pka-stream` acceptance contract.
//!
//! The streaming pipeline must converge to exactly what the batch two-level
//! pipeline computes on the same kernels — same selected K, same projected
//! cycles (the tail classification and count folds are literally the same
//! code, so "within 1%" is in practice "bit-identical") — while holding only
//! O(K·d + reservoir + batch) records in memory, for any worker count, and
//! a checkpoint→resume round trip must reproduce the uninterrupted run's
//! final checkpoint byte for byte.

use principal_kernel_analysis::core::{Executor, TwoLevel, TwoLevelConfig};
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::stream::{
    synthetic_workload, Checkpoint, JsonlSource, StreamConfig, StreamPks, WorkloadSource,
};
use principal_kernel_analysis::workloads::{all_workloads, Workload};

const PREFIX: u64 = 400;

fn workload(name: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.name() == name)
        .expect("known workload")
}

fn stream_config() -> StreamConfig {
    StreamConfig::default()
        .with_prefix(PREFIX)
        .with_checkpoint_every(1_500)
        .with_reservoir(256)
        .with_batch(128)
}

/// Runs the streaming pipeline over `w` and returns the outcome.
fn run_stream(
    w: &Workload,
    config: StreamConfig,
    workers: usize,
) -> principal_kernel_analysis::stream::StreamOutcome {
    let mut source = WorkloadSource::new(w.clone(), Profiler::new(GpuConfig::v100()));
    StreamPks::new(config)
        .with_executor(Executor::new(workers))
        .run(&mut source, |_| Ok(()))
        .expect("stream runs")
}

#[test]
fn stream_matches_batch_selection_exactly_at_any_worker_count() {
    // A real workload with structure (gramschmidt's three-kernel cycle) and
    // a synthetic million-kernel-shaped stream scaled down for test time.
    for w in [workload("gramschmidt"), synthetic_workload(6_000)] {
        let batch = TwoLevel::new(
            TwoLevelConfig::default()
                .with_pks(stream_config().pks())
                .with_detailed_prefix_cap(PREFIX),
        )
        .analyze(&w, &Profiler::new(GpuConfig::v100()))
        .expect("batch analyzes");

        for workers in [1usize, 4] {
            let outcome = run_stream(&w, stream_config(), workers);
            assert_eq!(
                outcome.report.selected_k,
                batch.k(),
                "{}: selected K must match batch exactly (workers={workers})",
                w.name()
            );
            // The acceptance tolerance is 1% relative; the implementation
            // shares the batch code path, so demand exactness.
            assert_eq!(
                outcome.report.projected_cycles,
                batch.projected_cycles(),
                "{}: projected cycles must match batch (workers={workers})",
                w.name()
            );
            let counts = |s: &principal_kernel_analysis::core::Selection| -> Vec<u64> {
                s.groups().iter().map(|g| g.count()).collect()
            };
            assert_eq!(
                counts(&outcome.selection),
                counts(&batch),
                "{}: group populations must match batch (workers={workers})",
                w.name()
            );
        }
    }
}

#[test]
fn worker_counts_produce_byte_identical_final_checkpoints() {
    let w = synthetic_workload(5_000);
    let sequential = run_stream(&w, stream_config(), 1);
    for workers in [2usize, 4, 8] {
        let parallel = run_stream(&w, stream_config(), workers);
        assert_eq!(
            parallel.final_checkpoint.to_json(),
            sequential.final_checkpoint.to_json(),
            "workers={workers}"
        );
    }
}

#[test]
fn checkpoint_resume_reproduces_the_final_checkpoint_byte_for_byte() {
    let w = synthetic_workload(5_000);
    let config = stream_config();
    let uninterrupted = run_stream(&w, config, 4);

    // Capture a mid-stream checkpoint, then resume from it (with a
    // different worker count, which must not matter) and compare ends.
    let mut first: Option<Checkpoint> = None;
    let mut source = WorkloadSource::new(w.clone(), Profiler::new(GpuConfig::v100()));
    StreamPks::new(config)
        .with_executor(Executor::new(4))
        .run(&mut source, |cp| {
            if first.is_none() {
                first = Some(cp.clone());
            }
            Ok(())
        })
        .expect("stream runs");
    let mid = first.expect("at least one periodic checkpoint");
    assert!(mid.records < uninterrupted.final_checkpoint.records);

    let mut source = WorkloadSource::new(w.clone(), Profiler::new(GpuConfig::v100()));
    let resumed = StreamPks::new(config)
        .with_executor(Executor::new(1))
        .resume(&mut source, &mid, |_| Ok(()))
        .expect("resume runs");
    assert_eq!(
        resumed.final_checkpoint.to_json(),
        uninterrupted.final_checkpoint.to_json(),
        "resumed run must reproduce the uninterrupted final checkpoint"
    );
    assert_eq!(resumed.report.selected_k, uninterrupted.report.selected_k);
}

#[test]
fn tail_memory_stays_bounded_by_reservoir_plus_batch() {
    let config = StreamConfig::default()
        .with_prefix(200)
        .with_checkpoint_every(10_000)
        .with_reservoir(1_024)
        .with_batch(512);
    let w = synthetic_workload(50_000);
    let outcome = run_stream(&w, config, 4);
    assert_eq!(outcome.report.records, 50_000);
    assert!(
        outcome.report.max_buffered <= (1_024 + 512) as u64,
        "max buffered {} exceeds reservoir + batch",
        outcome.report.max_buffered
    );
}

#[test]
fn jsonl_round_trip_matches_the_workload_source() {
    // Export a workload as the JSONL interchange format, stream the file
    // back in, and require the identical outcome: the reader path is then
    // covered end to end, not just record by record.
    let w = synthetic_workload(3_000);
    let config = StreamConfig::default()
        .with_prefix(150)
        .with_checkpoint_every(1_000)
        .with_reservoir(128)
        .with_batch(64);
    let direct = run_stream(&w, config, 2);

    let profiler = Profiler::new(GpuConfig::v100());
    let mut lines = String::new();
    let mut export = WorkloadSource::new(w.clone(), profiler);
    use principal_kernel_analysis::stream::KernelSource;
    for i in 0.. {
        // The detailed prefix needs detailed records; the tail does not.
        let want_detailed = i < 150;
        match export.next_record(want_detailed).expect("export records") {
            Some(record) => {
                lines.push_str(&record.to_jsonl().to_string());
                lines.push('\n');
            }
            None => break,
        }
    }
    let path = std::env::temp_dir().join("pka_stream_parity_roundtrip.jsonl");
    std::fs::write(&path, &lines).expect("write jsonl");
    let mut source = JsonlSource::open(&path).expect("open jsonl");
    let from_file = StreamPks::new(config)
        .with_executor(Executor::new(2))
        .run(&mut source, |_| Ok(()))
        .expect("stream from file");
    std::fs::remove_file(&path).ok();

    assert_eq!(from_file.report.selected_k, direct.report.selected_k);
    assert_eq!(
        from_file.report.projected_cycles,
        direct.report.projected_cycles
    );
    assert_eq!(from_file.report.group_counts, direct.report.group_counts);
}
