#!/usr/bin/env bash
# Continuous-integration entry point. Mirrors .github/workflows/ci.yml so
# the same gate runs locally: `./ci.sh`.
#
# Stages:
#   1. release build (the binaries the experiments run through)
#   2. tier-1 test suite (root package: integration + parity + property tests)
#   3. tier-1 again, single-threaded — the parity suite spawns its own
#      worker threads, so this catches any accidental dependence on the
#      test harness's parallelism
#   4. workspace tests (member-crate unit suites are NOT part of the root
#      package run)
#   5. bench smoke — the hot-path benchmarks at reduced iteration counts,
#      plus a jq schema check over the BENCH_pka.json they emit
#   6. observability smoke — a traced `pka simulate` run whose
#      run_manifest.json is jq-validated (schema, a fired PKP stop rule,
#      populated stage timings)
#   7. stream smoke — online PKS over a synthetic 100k-kernel stream with
#      `--verify-batch` (exact batch-vs-stream selected-K agreement,
#      projected cycles within 1%), plus a jq schema check over the emitted
#      `pka.stream_checkpoint/v1` file including the bounded-memory
#      invariant (max_buffered <= reservoir cap + batch size)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier 1)"
cargo test -q

echo "==> cargo test -q -- --test-threads=1 (tier 1, serial harness)"
cargo test -q -- --test-threads=1

echo "==> cargo test --workspace -q (member crates)"
cargo test --workspace -q

echo "==> bench smoke (reduced iterations)"
BENCH_SMOKE_JSON="$(mktemp -t bench_pka_smoke.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_JSON"' EXIT
rm -f "$BENCH_SMOKE_JSON"
PKA_BENCH_JSON="$BENCH_SMOKE_JSON" PKA_BENCH_SAMPLES=2 PKA_BENCH_WARMUP=1 \
    cargo bench -q -p pka-bench --bench hot_paths
if command -v jq >/dev/null 2>&1; then
    jq -e '
        type == "array" and length >= 3
        and all(.[]; has("name") and has("iterations")
                     and has("median_ns") and has("stddev_ns"))
    ' "$BENCH_SMOKE_JSON" >/dev/null
    echo "bench json OK ($(jq length "$BENCH_SMOKE_JSON") records)"
else
    echo "jq not found; skipping bench json schema check" >&2
fi

echo "==> observability smoke (traced pka simulate)"
OBS_MANIFEST="$(mktemp -t pka_manifest.XXXXXX.json)"
OBS_TRACE="$(mktemp -t pka_trace.XXXXXX.jsonl)"
trap 'rm -f "$BENCH_SMOKE_JSON" "$OBS_MANIFEST" "$OBS_TRACE"' EXIT
./target/release/pka simulate --workload bfs65536 \
    --metrics-out "$OBS_MANIFEST" --trace-out "$OBS_TRACE" >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .schema == "pka.run_manifest/v1"
        and (.counters["pkp.stops"] // 0) > 0
        and (.counters | length) >= 6
        and (.stages | length) >= 3
        and (.wall_ns > 0)
    ' "$OBS_MANIFEST" >/dev/null
    echo "run manifest OK ($(jq '.counters | length' "$OBS_MANIFEST") counters)"
else
    echo "jq not found; skipping manifest schema check" >&2
fi
test -s "$OBS_TRACE"
echo "trace OK ($(wc -l < "$OBS_TRACE") lines)"

echo "==> stream smoke (online PKS vs batch on synthetic:100000)"
STREAM_CKPT="$(mktemp -t pka_stream_ckpt.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_JSON" "$OBS_MANIFEST" "$OBS_TRACE" "$STREAM_CKPT"' EXIT
./target/release/pka stream --source synthetic:100000 --prefix 1000 \
    --checkpoint-every 20000 --checkpoint "$STREAM_CKPT" \
    --workers 4 --verify-batch >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .schema == "pka.stream_checkpoint/v1"
        and .records == 100000
        and .prefix == 1000
        and .selected_k >= 1
        and (.centroids | length) == .selected_k
        and (.reservoir.items | length) <= .reservoir.cap
        and .max_buffered <= (.reservoir.cap + .config.batch)
        and (.config | has("pks"))
    ' "$STREAM_CKPT" >/dev/null
    echo "stream checkpoint OK (K=$(jq .selected_k "$STREAM_CKPT"), max_buffered=$(jq .max_buffered "$STREAM_CKPT"))"
else
    echo "jq not found; skipping stream checkpoint schema check" >&2
fi

echo "CI OK"
