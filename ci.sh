#!/usr/bin/env bash
# Continuous-integration entry point. Mirrors .github/workflows/ci.yml so
# the same gate runs locally: `./ci.sh`.
#
# Stages:
#   1. release build (the binaries the experiments run through)
#   2. tier-1 test suite (root package: integration + parity + property tests)
#   3. tier-1 again, single-threaded — the parity suite spawns its own
#      worker threads, so this catches any accidental dependence on the
#      test harness's parallelism
#   4. workspace tests (member-crate unit suites are NOT part of the root
#      package run)
#   5. SIMD dispatch matrix — the tier-1 suite again under codegen pinned
#      to AVX2, pinned to SSE4.1, and with the vector tiers disabled
#      entirely (PKA_NO_SIMD=1): the differential parity proof must hold
#      on every dispatch path, and the forced-scalar fallback must pass
#      the identical suite with zero test changes
#   6. bench smoke — the hot-path benchmarks at reduced iteration counts,
#      plus a jq schema check over the BENCH_pka.json they emit (which
#      must include the kmeans_sweep/bounded_simd fast-math entry)
#   7. observability smoke — a traced `pka simulate` run whose
#      run_manifest.json is jq-validated (schema, a fired PKP stop rule,
#      populated stage timings)
#   8. stream smoke — online PKS over a synthetic 100k-kernel stream with
#      `--verify-batch` (exact batch-vs-stream selected-K agreement,
#      projected cycles within 1%), plus a jq schema check over the emitted
#      `pka.stream_checkpoint/v1` file including the bounded-memory
#      invariant (max_buffered <= reservoir cap + batch size)
#   9. live observability smoke — a snapshot-emitting stream run whose
#      `pka.snapshot/v1` JSONL is jq-validated, `pka trace export` over its
#      trace (valid Chrome trace-event JSON with worker lanes), and the
#      `pka obs diff` regression gate: a counters-only diff against the
#      committed results/ci_baseline_manifest.json, a bench-medians diff
#      against results/ci_baseline_bench.json (catastrophic-only tolerance
#      — medians jitter across hosts), and a self-test proving the gate
#      fires on an injected 1.3x stage-timing regression
#  10. attribution smoke — a `pka.attribution/v1` artifact from
#      `--attribution-out`, jq-validated (schema, per-group terms summing
#      exactly to the reported error), rendered through `pka obs explain`,
#      byte-identical across --workers counts on the stream path, and a
#      self-test proving the accuracy gate fires on an injected
#      representative swap
#  11. server smoke — `pka serve` driven end-to-end over HTTP with curl:
#      a streaming session must report the same selected K and projected
#      cycles as the batch CLI run and serve byte-identical checkpoint and
#      attribution artifacts (`cmp`), including under `--shards 2`; a
#      DELETE mid-stream must exit cleanly leaving a resumable checkpoint
#      the CLI can finish from. Live telemetry rides the same service run:
#      `/metrics` is awk-validated raw (every sample family carries a
#      # TYPE), `pka obs scrape | obs diff` gates the deterministic
#      families against committed results/ci_baseline_scrape.json (and a
#      jq-injected regression must fire), a second scrape mid-1M-session
#      proves counters monotonic and `server.sessions.active` == 1, an SSE
#      subscriber sees the snapshot header, and after shutdown the access
#      log's request id for the parity checkpoint fetch must join into a
#      `server.request` trace event carrying the same session id
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier 1)"
cargo test -q

echo "==> cargo test -q -- --test-threads=1 (tier 1, serial harness)"
cargo test -q -- --test-threads=1

echo "==> cargo test --workspace -q (member crates)"
cargo test --workspace -q

echo "==> SIMD dispatch matrix (tier 1 under +avx2 / +sse4.1 / forced scalar)"
# Pinned-codegen runs get their own target dirs so they don't thrash the
# main incremental cache; the forced-scalar run changes no codegen and
# reuses the default dir.
RUSTFLAGS="-C target-feature=+avx2" CARGO_TARGET_DIR=target/simd-avx2 \
    cargo test -q
RUSTFLAGS="-C target-feature=+sse4.1" CARGO_TARGET_DIR=target/simd-sse41 \
    cargo test -q
PKA_NO_SIMD=1 cargo test -q

echo "==> bench smoke (reduced iterations)"
BENCH_SMOKE_JSON="$(mktemp -t bench_pka_smoke.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_JSON"' EXIT
rm -f "$BENCH_SMOKE_JSON"
PKA_BENCH_JSON="$BENCH_SMOKE_JSON" PKA_BENCH_SAMPLES=2 PKA_BENCH_WARMUP=1 \
    cargo bench -q -p pka-bench --bench hot_paths
if command -v jq >/dev/null 2>&1; then
    jq -e '
        type == "array" and length >= 3
        and all(.[]; has("name") and has("iterations")
                     and has("median_ns") and has("stddev_ns"))
        and any(.[]; .name == "kmeans_sweep/bounded_simd/50000")
        and any(.[]; .name == "stream_ingest/online_pks/500000")
        and any(.[]; .name == "stream_ingest/sharded_s2/500000")
        and any(.[]; .name == "stream_ingest/sharded_s4/500000")
        and any(.[]; .name == "server_session_roundtrip/http_session/100000")
    ' "$BENCH_SMOKE_JSON" >/dev/null
    echo "bench json OK ($(jq length "$BENCH_SMOKE_JSON") records)"
else
    echo "jq not found; skipping bench json schema check" >&2
fi

echo "==> observability smoke (traced pka simulate)"
OBS_MANIFEST="$(mktemp -t pka_manifest.XXXXXX.json)"
OBS_TRACE="$(mktemp -t pka_trace.XXXXXX.jsonl)"
trap 'rm -f "$BENCH_SMOKE_JSON" "$OBS_MANIFEST" "$OBS_TRACE"' EXIT
./target/release/pka simulate --workload bfs65536 \
    --metrics-out "$OBS_MANIFEST" --trace-out "$OBS_TRACE" >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .schema == "pka.run_manifest/v1"
        and (.counters["pkp.stops"] // 0) > 0
        and (.counters | length) >= 6
        and (.stages | length) >= 3
        and (.wall_ns > 0)
    ' "$OBS_MANIFEST" >/dev/null
    echo "run manifest OK ($(jq '.counters | length' "$OBS_MANIFEST") counters)"
else
    echo "jq not found; skipping manifest schema check" >&2
fi
test -s "$OBS_TRACE"
echo "trace OK ($(wc -l < "$OBS_TRACE") lines)"

echo "==> stream smoke (online PKS vs batch on synthetic:100000)"
STREAM_CKPT="$(mktemp -t pka_stream_ckpt.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_JSON" "$OBS_MANIFEST" "$OBS_TRACE" "$STREAM_CKPT"' EXIT
./target/release/pka stream --source synthetic:100000 --prefix 1000 \
    --checkpoint-every 20000 --checkpoint "$STREAM_CKPT" \
    --workers 4 --verify-batch >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .schema == "pka.stream_checkpoint/v1"
        and .records == 100000
        and .prefix == 1000
        and .selected_k >= 1
        and (.centroids | length) == .selected_k
        and (.reservoir.items | length) <= .reservoir.cap
        and .max_buffered <= (.reservoir.cap + .config.batch)
        and (.config | has("pks"))
    ' "$STREAM_CKPT" >/dev/null
    echo "stream checkpoint OK (K=$(jq .selected_k "$STREAM_CKPT"), max_buffered=$(jq .max_buffered "$STREAM_CKPT"))"
else
    echo "jq not found; skipping stream checkpoint schema check" >&2
fi

echo "==> sharded stream smoke (4 shards, forced reshard, verify-batch)"
SHARD_CKPT="$(mktemp -t pka_shard_ckpt.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_JSON" "$OBS_MANIFEST" "$OBS_TRACE" "$STREAM_CKPT" "$SHARD_CKPT"' EXIT
# --reshard-at migrates a shard to a different lane mid-run; lanes are pure
# scheduling, so the final checkpoint must stay byte-identical to an
# unperturbed run and the batch-PKS parity check must still pass.
./target/release/pka stream --source synthetic:100000 --prefix 1000 \
    --checkpoint-every 20000 --checkpoint "$SHARD_CKPT" \
    --shards 4 --reshard-at 50000:1:3 --workers 4 --verify-batch >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .schema == "pka.stream_checkpoint/v1"
        and .records == 100000
        and .topology.shards == 4
        and (.shards | length) == 4
        and ([.shards[].records] | add) == (.records - .prefix)
        and .selected_k >= 1
        and (.merged | has("centroids"))
        and (.config | has("pks"))
    ' "$SHARD_CKPT" >/dev/null
    echo "sharded checkpoint OK (K=$(jq .selected_k "$SHARD_CKPT"), map_hash=$(jq .topology.map_hash "$SHARD_CKPT"))"
else
    echo "jq not found; skipping sharded checkpoint schema check" >&2
fi

echo "==> live observability smoke (snapshots, trace export, obs diff gate)"
LIVE_DIR="$(mktemp -d -t pka_live.XXXXXX)"
trap 'rm -f "$BENCH_SMOKE_JSON" "$OBS_MANIFEST" "$OBS_TRACE" "$STREAM_CKPT"; rm -rf "$LIVE_DIR"' EXIT
./target/release/pka stream --source synthetic:100000 --prefix 1000 \
    --checkpoint-every 20000 --workers 4 \
    --snapshot-out "$LIVE_DIR/snapshots.jsonl" --snapshot-every 25000 \
    --trace-out "$LIVE_DIR/trace.jsonl" >/dev/null
if command -v jq >/dev/null 2>&1; then
    head -n 1 "$LIVE_DIR/snapshots.jsonl" \
        | jq -e '.schema == "pka.snapshot/v1" and .type == "header"' >/dev/null
    jq -es '
        [.[] | select(.type == "snapshot")]
        | length >= 4
        and all(.[]; .phase != "" and .records > 0 and .selected_k >= 1
                     and (.timing | has("kernels_per_sec")))
        and (last.records == 100000)
    ' "$LIVE_DIR/snapshots.jsonl" >/dev/null
    echo "snapshots OK ($(grep -c '"type":"snapshot"' "$LIVE_DIR/snapshots.jsonl") records)"
else
    echo "jq not found; skipping snapshot schema check" >&2
fi

./target/release/pka trace export "$LIVE_DIR/trace.jsonl" --out "$LIVE_DIR/chrome.json"
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .displayTimeUnit == "ms"
        and (.traceEvents | length) > 0
        and ([.traceEvents[] | select(.ph == "M" and .name == "thread_name")]
             | length) >= 2
    ' "$LIVE_DIR/chrome.json" >/dev/null
    echo "chrome trace OK ($(jq '.traceEvents | length' "$LIVE_DIR/chrome.json") events)"
fi

# Regression gate: counters, checksums and gauges are deterministic for a
# fixed config, so a counters-only diff against the committed baseline is
# exact on any host. Bench medians are machine-dependent; that gate only
# catches catastrophic slowdowns.
./target/release/pka simulate --workload bfs65536 \
    --metrics-out "$LIVE_DIR/current_manifest.json" >/dev/null
./target/release/pka obs diff results/ci_baseline_manifest.json \
    "$LIVE_DIR/current_manifest.json" --counters-only
./target/release/pka obs diff results/ci_baseline_bench.json \
    "$BENCH_SMOKE_JSON" --bench --bench-tol 500

# Trend gate: the single-run diff tolerates sub-threshold noise, so a slow
# creep (each step inside the stage tolerance, monotonically up) is
# invisible to it. `obs trend-push` maintains a bounded ring of recent
# manifests; `obs diff --trend` flags exactly that creeping shape.
TREND_DIR="$LIVE_DIR/trend"
./target/release/pka obs trend-push "$LIVE_DIR/current_manifest.json" \
    "$TREND_DIR" --trend-cap 8
# A short history must report without flagging.
./target/release/pka obs diff --trend "$TREND_DIR"
if command -v jq >/dev/null 2>&1; then
    # Inject a +10-12%/run monotonic creep (every step under the 25% stage
    # tolerance, cumulative well over it) and require a non-zero exit.
    for pct in 12 24 38 52; do
        jq --argjson p "$pct" '
            (.stages[].total_ns) |= (. * (100 + $p) / 100 | floor)
            | .wall_ns |= (. * (100 + $p) / 100 | floor)
        ' "$LIVE_DIR/current_manifest.json" > "$LIVE_DIR/creep_$pct.json"
        ./target/release/pka obs trend-push "$LIVE_DIR/creep_$pct.json" \
            "$TREND_DIR/creep" --trend-cap 8
    done
    if ./target/release/pka obs diff --trend "$TREND_DIR/creep" \
        > "$LIVE_DIR/trend_out.txt" 2>&1; then
        echo "obs diff --trend failed to flag an injected creeping slowdown" >&2
        exit 1
    fi
    grep -q "creeping" "$LIVE_DIR/trend_out.txt"
    echo "obs trend gate OK (injected creep detected)"
fi

# The gate must actually fire: inject a 1.3x stage-timing regression and
# require a non-zero exit. Both sides pass through jq so the comparison is
# not polluted by jq's float re-rendering of 64-bit checksums.
if command -v jq >/dev/null 2>&1; then
    jq '.' "$LIVE_DIR/current_manifest.json" > "$LIVE_DIR/manifest_base.json"
    jq '(.stages[].total_ns) |= (. * 13 / 10 | floor)' \
        "$LIVE_DIR/current_manifest.json" > "$LIVE_DIR/manifest_regressed.json"
    if ./target/release/pka obs diff "$LIVE_DIR/manifest_base.json" \
        "$LIVE_DIR/manifest_regressed.json" > "$LIVE_DIR/diff_out.txt" 2>&1; then
        echo "obs diff failed to flag an injected 30% stage regression" >&2
        exit 1
    fi
    grep -q "REGRESSION" "$LIVE_DIR/diff_out.txt"
    echo "obs diff gate OK (injected regression detected)"
fi

echo "==> attribution smoke (pka.attribution/v1, explain, accuracy gate)"
ATTR_DIR="$(mktemp -d -t pka_attr.XXXXXX)"
trap 'rm -f "$BENCH_SMOKE_JSON" "$OBS_MANIFEST" "$OBS_TRACE" "$STREAM_CKPT"; rm -rf "$LIVE_DIR" "$ATTR_DIR"' EXIT
./target/release/pka simulate --workload bfs65536 \
    --attribution-out "$ATTR_DIR/attr.json" >/dev/null
if command -v jq >/dev/null 2>&1; then
    # The decomposition contract: signed per-group terms sum exactly to the
    # signed reported errors (1e-9 relative in the library; 1e-6 absolute
    # here to stay clear of jq's float re-rendering).
    jq -e '
        def abs: if . < 0 then -. else . end;
        .schema == "pka.attribution/v1"
        and .kind == "simulation"
        and (.groups | length) >= 1
        and ((([.groups[].pks_term_pct] | add) - .pks_err_signed_pct) | abs) < 1e-6
        and ((([.groups[].total_term_pct] | add) - .pka_err_signed_pct) | abs) < 1e-6
        and ((.pks_err_signed_pct | abs) - .pks_err_pct | abs) < 1e-9
        and all(.groups[]; has("representative") and has("chrono_rank")
                           and has("distance_to_centroid") and has("weight")
                           and has("member_mean_ci_low") and has("member_mean_ci_high"))
    ' "$ATTR_DIR/attr.json" >/dev/null
    echo "attribution artifact OK ($(jq '.groups | length' "$ATTR_DIR/attr.json") groups)"
else
    echo "jq not found; skipping attribution schema check" >&2
fi
./target/release/pka obs explain "$ATTR_DIR/attr.json" > "$ATTR_DIR/explain.txt"
grep -q "pka.attribution/v1" "$ATTR_DIR/explain.txt"
echo "obs explain OK ($(wc -l < "$ATTR_DIR/explain.txt") lines)"

# Stream-path determinism: the artifact is byte-identical for any worker
# count (the same contract the checkpoints already gate on).
./target/release/pka stream --source synthetic:100000 --prefix 1000 \
    --workers 1 --attribution-out "$ATTR_DIR/attr_w1.json" >/dev/null
./target/release/pka stream --source synthetic:100000 --prefix 1000 \
    --workers 4 --attribution-out "$ATTR_DIR/attr_w4.json" >/dev/null
cmp -s "$ATTR_DIR/attr_w1.json" "$ATTR_DIR/attr_w4.json"
echo "attribution worker parity OK"

# The accuracy gate must actually fire: identical artifacts pass, an
# injected representative swap is an exact-match regression.
./target/release/pka obs diff "$ATTR_DIR/attr.json" "$ATTR_DIR/attr.json" >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq '.groups[0].representative = 424242' "$ATTR_DIR/attr.json" \
        > "$ATTR_DIR/attr_swapped.json"
    if ./target/release/pka obs diff "$ATTR_DIR/attr.json" \
        "$ATTR_DIR/attr_swapped.json" > "$ATTR_DIR/attr_diff_out.txt" 2>&1; then
        echo "obs diff failed to flag an injected representative swap" >&2
        exit 1
    fi
    grep -q "REGRESSION" "$ATTR_DIR/attr_diff_out.txt"
    echo "attribution gate OK (injected representative swap detected)"
fi

echo "==> server smoke (pka serve: HTTP session parity, sharded, teardown)"
SRV_DIR="$(mktemp -d -t pka_srv.XXXXXX)"
SERVE_PID=""
cleanup_server() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -f "$BENCH_SMOKE_JSON" "$OBS_MANIFEST" "$OBS_TRACE" "$STREAM_CKPT"
    rm -rf "$LIVE_DIR" "$ATTR_DIR" "$SRV_DIR"
}
trap cleanup_server EXIT
if command -v curl >/dev/null 2>&1 && command -v jq >/dev/null 2>&1; then
    # Batch CLI reference artifacts the service must reproduce bytewise.
    ./target/release/pka stream --source synthetic:60000 --prefix 800 \
        --checkpoint-every 20000 --checkpoint "$SRV_DIR/cli_ckpt.json" \
        --attribution-out "$SRV_DIR/cli_attr.json" >/dev/null
    ./target/release/pka stream --source synthetic:60000 --prefix 800 \
        --checkpoint-every 20000 --shards 2 \
        --checkpoint "$SRV_DIR/cli_shard_ckpt.json" >/dev/null

    ./target/release/pka serve --addr 127.0.0.1:0 --read-timeout-ms 5000 \
        --trace-out "$SRV_DIR/serve_trace.jsonl" > "$SRV_DIR/serve.log" 2>&1 &
    SERVE_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's#^pka-server listening on http://##p' "$SRV_DIR/serve.log")"
        [ -n "$ADDR" ] && break
        sleep 0.1
    done
    [ -n "$ADDR" ] || { echo "pka serve did not come up" >&2; exit 1; }
    curl -sf "http://$ADDR/healthz" >/dev/null

    # Wait for a session to leave the running states and fetch its result.
    wait_result() {
        for _ in $(seq 1 600); do
            CODE="$(curl -s -o "$SRV_DIR/result.json" -w '%{http_code}' \
                "http://$ADDR/v1/sessions/$1/result")"
            [ "$CODE" = 200 ] && return 0
            [ "$CODE" = 202 ] || break
            sleep 0.1
        done
        echo "session $1 did not finish (last status $CODE)" >&2
        cat "$SRV_DIR/result.json" >&2
        return 1
    }

    # Single-pipeline streaming session: K and projected cycles must match
    # the CLI run exactly; checkpoint/attribution must be byte-identical.
    SID="$(curl -sf -X POST "http://$ADDR/v1/sessions" \
        -d '{"mode":"stream","source":"synthetic:60000","prefix":800,"checkpoint_every":20000}' \
        | jq -r .id)"
    wait_result "$SID"
    jq -e --argjson k "$(jq .selected_k "$SRV_DIR/cli_ckpt.json")" \
        --argjson cycles "$(jq .projected_cycles "$SRV_DIR/cli_ckpt.json")" \
        '.selected_k == $k and .projected_cycles == $cycles' \
        "$SRV_DIR/result.json" >/dev/null
    curl -sf "http://$ADDR/v1/sessions/$SID/checkpoint" -o "$SRV_DIR/srv_ckpt.json"
    curl -sf "http://$ADDR/v1/sessions/$SID/attribution" -o "$SRV_DIR/srv_attr.json"
    cmp -s "$SRV_DIR/cli_ckpt.json" "$SRV_DIR/srv_ckpt.json"
    cmp -s "$SRV_DIR/cli_attr.json" "$SRV_DIR/srv_attr.json"
    head -n 1 <(curl -sf "http://$ADDR/v1/sessions/$SID/progress") \
        | jq -e '.schema == "pka.snapshot/v1" and .type == "header"' >/dev/null
    echo "server session parity OK (K=$(jq .selected_k "$SRV_DIR/result.json"), artifacts byte-identical)"
    PARITY_SID="$SID"

    # Live telemetry: raw /metrics must satisfy the exposition grammar
    # (every sample line's family declared by a preceding # TYPE), and the
    # scrape->diff gate must pass clean against the committed deterministic
    # baseline. Extra live families (server traffic, timing histograms) are
    # informational on the current side; a baseline family disappearing or
    # drifting is a regression.
    curl -sf "http://$ADDR/metrics" -o "$SRV_DIR/metrics1.txt"
    awk '
        /^# TYPE / { type[$3] = 1; next }
        /^#/ { next }
        NF == 0 { next }
        {
            name = $1; sub(/\{.*/, "", name)
            fam = name
            sub(/_bucket$/, "", fam); sub(/_count$/, "", fam); sub(/_sum$/, "", fam)
            if (!(name in type) && !(fam in type)) {
                print "sample without # TYPE: " $1 > "/dev/stderr"; exit 1
            }
        }
    ' "$SRV_DIR/metrics1.txt"
    ./target/release/pka obs scrape "http://$ADDR/metrics" --out "$SRV_DIR/scrape1.json"
    ./target/release/pka obs diff results/ci_baseline_scrape.json \
        "$SRV_DIR/scrape1.json" --counters-only
    jq '.counters.pka_stream_records_total += 1' results/ci_baseline_scrape.json \
        > "$SRV_DIR/scrape_regressed.json"
    if ./target/release/pka obs diff "$SRV_DIR/scrape_regressed.json" \
        "$SRV_DIR/scrape1.json" --counters-only > "$SRV_DIR/scrape_diff_out.txt" 2>&1; then
        echo "obs diff failed to flag an injected scrape regression" >&2
        exit 1
    fi
    grep -q "REGRESSION" "$SRV_DIR/scrape_diff_out.txt"
    echo "server scrape gate OK ($(jq '.counters | length' "$SRV_DIR/scrape1.json") counter series)"

    # Sharded session: same contract under --shards 2.
    SID="$(curl -sf -X POST "http://$ADDR/v1/sessions" \
        -d '{"mode":"stream","source":"synthetic:60000","prefix":800,"checkpoint_every":20000,"shards":2}' \
        | jq -r .id)"
    wait_result "$SID"
    curl -sf "http://$ADDR/v1/sessions/$SID/checkpoint" -o "$SRV_DIR/srv_shard_ckpt.json"
    cmp -s "$SRV_DIR/cli_shard_ckpt.json" "$SRV_DIR/srv_shard_ckpt.json"
    echo "server sharded parity OK (map_hash=$(jq .topology.map_hash "$SRV_DIR/srv_shard_ckpt.json"))"

    # DELETE mid-stream: cancellation-safe teardown must stop at a batch
    # boundary and leave a checkpoint the CLI can resume to completion.
    SID="$(curl -sf -X POST "http://$ADDR/v1/sessions" \
        -d "{\"mode\":\"stream\",\"source\":\"synthetic:1000000\",\"prefix\":800,\"checkpoint_every\":10000,\"checkpoint_path\":\"$SRV_DIR/teardown_ckpt.json\"}" \
        | jq -r .id)"
    for _ in $(seq 1 600); do
        REC="$(curl -sf "http://$ADDR/v1/sessions/$SID" | jq .records)"
        [ "$REC" -ge 10000 ] && break
        sleep 0.05
    done

    # Mid-session telemetry: the 1M-kernel session is live right now. The
    # bare host:port form exercises the default /metrics path of `scrape`.
    ./target/release/pka obs scrape "http://$ADDR" --out "$SRV_DIR/scrape2.json"
    jq -e '
        .gauges.pka_server_sessions_active == 1
        and .counters.pka_server_sessions_created_total == 3
    ' "$SRV_DIR/scrape2.json" >/dev/null
    # Counters and stage totals only move forward between scrapes.
    jq -en --slurpfile a "$SRV_DIR/scrape1.json" --slurpfile b "$SRV_DIR/scrape2.json" '
        all($a[0].counters | to_entries[]; ($b[0].counters[.key] // -1) >= .value)
        and all($a[0].stages | to_entries[];
                ($b[0].stages[.key].total_ns // -1) >= .value.total_ns)
    ' >/dev/null
    # A live SSE subscriber sees the snapshot header frame first.
    (curl -sN --max-time 3 "http://$ADDR/v1/sessions/$SID/events" || true) \
        | head -n 1 > "$SRV_DIR/sse_head.txt"
    grep -q '^data: {"schema":"pka.snapshot/v1","type":"header"}' "$SRV_DIR/sse_head.txt"
    echo "server live telemetry OK (sessions_active=1 mid-1M-session, counters monotonic, SSE header seen)"

    curl -sf -X DELETE "http://$ADDR/v1/sessions/$SID" -o "$SRV_DIR/teardown.json"
    jq -e '.status == "cancelled" and .records < 1000000' \
        "$SRV_DIR/teardown.json" >/dev/null
    jq -e '.schema == "pka.stream_checkpoint/v1" and .records < 1000000' \
        "$SRV_DIR/teardown_ckpt.json" >/dev/null
    ./target/release/pka stream --source synthetic:1000000 --resume \
        --checkpoint "$SRV_DIR/teardown_ckpt.json" >/dev/null
    jq -e '.records == 1000000' "$SRV_DIR/teardown_ckpt.json" >/dev/null
    echo "server teardown OK (cancelled at $(jq .records "$SRV_DIR/teardown.json") records, CLI resumed to 1000000)"

    # Clean service exit: shutdown joins every worker before returning.
    curl -sf -X POST "http://$ADDR/v1/shutdown" >/dev/null
    wait "$SERVE_PID"
    SERVE_PID=""
    grep -q "pka-server stopped" "$SRV_DIR/serve.log"
    echo "server shutdown OK"

    # Request correlation: the access line for the parity checkpoint fetch
    # must round-trip its request id into a `server.request` trace event
    # carrying the same session id.
    REQ_ID="$(grep '"type":"access"' "$SRV_DIR/serve.log" \
        | jq -s --arg p "/v1/sessions/$PARITY_SID/checkpoint" \
            '[.[] | select(.path == $p)][0].req_id')"
    [ -n "$REQ_ID" ] && [ "$REQ_ID" != "null" ]
    jq -es --argjson id "$REQ_ID" --arg sid "$PARITY_SID" '
        any(.[]; .type == "event" and .name == "server.request"
                 and .fields.req_id == $id and .fields.session == $sid)
    ' "$SRV_DIR/serve_trace.jsonl" >/dev/null
    echo "server request correlation OK (req_id $REQ_ID joined access log to trace)"
else
    echo "curl or jq not found; skipping server smoke" >&2
fi

echo "CI OK"
