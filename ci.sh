#!/usr/bin/env bash
# Continuous-integration entry point. Mirrors .github/workflows/ci.yml so
# the same gate runs locally: `./ci.sh`.
#
# Stages:
#   1. release build (the binaries the experiments run through)
#   2. tier-1 test suite (root package: integration + parity + property tests)
#   3. tier-1 again, single-threaded — the parity suite spawns its own
#      worker threads, so this catches any accidental dependence on the
#      test harness's parallelism
#   4. workspace tests (member-crate unit suites are NOT part of the root
#      package run)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier 1)"
cargo test -q

echo "==> cargo test -q -- --test-threads=1 (tier 1, serial harness)"
cargo test -q -- --test-threads=1

echo "==> cargo test --workspace -q (member crates)"
cargo test --workspace -q

echo "CI OK"
