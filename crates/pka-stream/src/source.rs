use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use pka_gpu::{KernelDescriptor, KernelId, KernelMetrics};
use pka_profile::{DetailedRecord, LightweightRecord, Profiler};
use pka_workloads::{KernelTemplate, Suite, Workload};
use serde_json::{Map, Value};

use crate::StreamError;

/// One record pulled from a [`KernelSource`]: the lightweight view always,
/// the detailed (hardware-counter) view only when the consumer asked for it
/// and the source can supply it.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceRecord {
    /// The Nsight-Systems-style launch record.
    pub lightweight: LightweightRecord,
    /// The Nsight-Compute-style record, present when requested and
    /// available (the detailed prefix).
    pub detailed: Option<DetailedRecord>,
}

impl SourceRecord {
    /// Serialises the record as one `pka.kernel_record/v1` JSONL object —
    /// the wire format [`JsonlSource`] reads back. Detailed fields are
    /// emitted only when the detailed view is present.
    pub fn to_jsonl(&self) -> Value {
        let lw = &self.lightweight;
        let mut obj = Map::new();
        obj.insert("id".into(), Value::from(lw.kernel_id.index()));
        obj.insert("name".into(), Value::from(lw.name.clone()));
        obj.insert("grid_blocks".into(), Value::from(lw.grid_blocks));
        obj.insert("block_threads".into(), Value::from(u64::from(lw.block_threads)));
        obj.insert(
            "shared_mem_bytes".into(),
            Value::from(u64::from(lw.shared_mem_bytes)),
        );
        obj.insert("tensor_elements".into(), Value::from(lw.tensor_elements));
        if let Some(d) = &self.detailed {
            obj.insert("cycles".into(), Value::from(d.cycles));
            obj.insert("seconds".into(), Value::from(d.seconds));
            obj.insert("dram_util_pct".into(), Value::from(d.dram_util_pct));
            obj.insert("l2_miss_rate_pct".into(), Value::from(d.l2_miss_rate_pct));
            let m = &d.metrics;
            let mut metrics = Map::new();
            metrics.insert("coalesced_global_loads".into(), Value::from(m.coalesced_global_loads));
            metrics.insert("coalesced_global_stores".into(), Value::from(m.coalesced_global_stores));
            metrics.insert("coalesced_local_loads".into(), Value::from(m.coalesced_local_loads));
            metrics.insert("thread_global_loads".into(), Value::from(m.thread_global_loads));
            metrics.insert("thread_global_stores".into(), Value::from(m.thread_global_stores));
            metrics.insert("thread_local_loads".into(), Value::from(m.thread_local_loads));
            metrics.insert("thread_shared_loads".into(), Value::from(m.thread_shared_loads));
            metrics.insert("thread_shared_stores".into(), Value::from(m.thread_shared_stores));
            metrics.insert("thread_global_atomics".into(), Value::from(m.thread_global_atomics));
            metrics.insert("instructions".into(), Value::from(m.instructions));
            metrics.insert("divergence_efficiency".into(), Value::from(m.divergence_efficiency));
            metrics.insert("thread_blocks".into(), Value::from(m.thread_blocks));
            obj.insert("metrics".into(), Value::Object(metrics));
        }
        Value::Object(obj)
    }
}

/// A pull-based kernel-record stream.
///
/// Sources yield records in launch order, once each. The consumer signals
/// through `want_detailed` whether the hardware-counter view is needed —
/// the online pipeline asks for it only during the detailed prefix, so
/// sources never pay detailed-profiling cost for the (million-kernel) tail.
pub trait KernelSource {
    /// Human-readable source identifier (stamped into checkpoints).
    fn name(&self) -> String;

    /// Total records this source will yield, when known up front.
    fn len_hint(&self) -> Option<u64>;

    /// Pulls the next record, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Fails when the underlying medium fails, or when `want_detailed` is
    /// set but the source cannot supply the detailed view for this record.
    fn next_record(&mut self, want_detailed: bool) -> Result<Option<SourceRecord>, StreamError>;

    /// Pulls the next record's classifier feature vector
    /// ([`LightweightRecord::FEATURE_COUNT`] values appended to `out`),
    /// returning `false` at end of stream.
    ///
    /// This is the tail's feature-only fast path: the floats are
    /// bit-identical to `next_record(false)` followed by
    /// `to_feature_vector`, but sources that know their launch geometry up
    /// front override it to skip materialising the record (and its name
    /// `String`) entirely.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::next_record`] failures.
    fn next_features_into(&mut self, out: &mut Vec<f64>) -> Result<bool, StreamError> {
        match self.next_record(false)? {
            None => Ok(false),
            Some(rec) => {
                let lw = &rec.lightweight;
                LightweightRecord::write_features(
                    &lw.name,
                    lw.grid_blocks,
                    lw.block_threads,
                    lw.shared_mem_bytes,
                    lw.tensor_elements,
                    out,
                );
                Ok(true)
            }
        }
    }

    /// Skips up to `n` records and returns how many were actually skipped
    /// (fewer at end of stream). Sources with random access override this
    /// with an O(1) seek; the default pulls and discards lightweight
    /// records.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::next_record`] failures.
    fn skip(&mut self, n: u64) -> Result<u64, StreamError> {
        let mut skipped = 0;
        while skipped < n {
            if self.next_record(false)?.is_none() {
                break;
            }
            skipped += 1;
        }
        Ok(skipped)
    }

    /// Rewinds the source to its first record, for checkpoint resume (which
    /// re-derives the prefix deterministically) and batch verification.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NotRestartable`] for single-pass media
    /// (stdin).
    fn restart(&mut self) -> Result<(), StreamError>;
}

// ---------------------------------------------------------------------------
// Workload-backed source (and the synthetic million-kernel generator)
// ---------------------------------------------------------------------------

/// Streams a [`Workload`]'s launch stream through a [`Profiler`].
///
/// Workloads materialise kernels lazily, so this source is O(1) memory no
/// matter how many launches the stream contains — the substrate for the
/// `synthetic:N` million-kernel streams. Detailed records are produced by
/// per-kernel silicon profiling (prefix only); tail records cost one
/// descriptor materialisation each.
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    workload: Workload,
    profiler: Profiler,
    pos: u64,
}

impl WorkloadSource {
    /// Creates a source over `workload`, profiling with `profiler`.
    pub fn new(workload: Workload, profiler: Profiler) -> Self {
        Self {
            workload,
            profiler,
            pos: 0,
        }
    }

    /// The workload backing this source.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The profiler detailed records are measured with.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }
}

impl KernelSource for WorkloadSource {
    fn name(&self) -> String {
        format!("workload:{}", self.workload.name())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.workload.kernel_count())
    }

    fn next_record(&mut self, want_detailed: bool) -> Result<Option<SourceRecord>, StreamError> {
        if self.pos >= self.workload.kernel_count() {
            return Ok(None);
        }
        let id = KernelId::new(self.pos);
        let kernel = self.workload.kernel(id);
        let lightweight = LightweightRecord::new(id, &kernel);
        let detailed = if want_detailed {
            let mut records = self.profiler.detailed(&self.workload, self.pos..self.pos + 1)?;
            Some(records.remove(0))
        } else {
            None
        };
        self.pos += 1;
        Ok(Some(SourceRecord {
            lightweight,
            detailed,
        }))
    }

    fn next_features_into(&mut self, out: &mut Vec<f64>) -> Result<bool, StreamError> {
        if self.pos >= self.workload.kernel_count() {
            return Ok(false);
        }
        // The launch view skips the descriptor rebuild (and its name
        // clones); `write_features` guarantees the floats match the
        // record-materialising default bit-for-bit.
        let view = self.workload.launch_view(KernelId::new(self.pos));
        self.pos += 1;
        LightweightRecord::write_features(
            view.name,
            view.total_blocks,
            view.threads_per_block,
            view.shared_mem_per_block,
            view.total_threads(),
            out,
        );
        Ok(true)
    }

    fn skip(&mut self, n: u64) -> Result<u64, StreamError> {
        let remaining = self.workload.kernel_count() - self.pos;
        let skipped = n.min(remaining);
        self.pos += skipped;
        Ok(skipped)
    }

    fn restart(&mut self) -> Result<(), StreamError> {
        self.pos = 0;
        Ok(())
    }
}

/// Kernel-behaviour templates for the synthetic stream: a compute-bound
/// GEMM-style kernel, a tensor-pipe kernel, a memory-bound scatter, a cheap
/// elementwise op, and a reduction — cycled per "layer" the way an MLPerf
/// training step cycles its operator sequence, with rotating grid sizes so
/// launches of the same kernel land in different PKS groups.
fn synthetic_templates() -> Vec<KernelTemplate> {
    let gemm = KernelDescriptor::builder("syn_gemm")
        .grid_blocks(1024)
        .block_threads(256)
        .fp32_per_thread(420)
        .global_loads_per_thread(24)
        .global_stores_per_thread(8)
        .shared_loads_per_thread(64)
        .shared_stores_per_thread(16)
        .shared_mem_per_block(24 * 1024)
        .build()
        .expect("valid synthetic gemm");
    let tensor = KernelDescriptor::builder("syn_attention")
        .grid_blocks(512)
        .block_threads(128)
        .tensor_per_thread(96)
        .fp32_per_thread(48)
        .global_loads_per_thread(16)
        .global_stores_per_thread(4)
        .build()
        .expect("valid synthetic attention");
    let scatter = KernelDescriptor::builder("syn_scatter")
        .grid_blocks(2048)
        .block_threads(128)
        .int_per_thread(32)
        .global_loads_per_thread(40)
        .global_stores_per_thread(40)
        .build()
        .expect("valid synthetic scatter");
    let relu = KernelDescriptor::builder("syn_relu")
        .grid_blocks(4096)
        .block_threads(256)
        .fp32_per_thread(4)
        .global_loads_per_thread(2)
        .global_stores_per_thread(2)
        .build()
        .expect("valid synthetic relu");
    let reduce = KernelDescriptor::builder("syn_reduce")
        .grid_blocks(256)
        .block_threads(512)
        .fp32_per_thread(24)
        .global_loads_per_thread(16)
        .shared_loads_per_thread(18)
        .shared_stores_per_thread(18)
        .syncs_per_thread(9)
        .shared_mem_per_block(8 * 1024)
        .build()
        .expect("valid synthetic reduce");
    vec![
        KernelTemplate::new(gemm).with_grid_cycle(vec![1024, 2048, 512]),
        KernelTemplate::new(tensor).with_grid_cycle(vec![512, 768]),
        KernelTemplate::new(scatter),
        KernelTemplate::new(relu).with_grid_cycle(vec![4096, 8192]),
        KernelTemplate::new(reduce),
    ]
}

/// Builds the `synthetic:N` workload: `n` kernel launches cycling through
/// five MLPerf-shaped operator templates with rotating grid geometry. The
/// stream is lazily materialised (O(1) memory regardless of `n`) and fully
/// deterministic, so batch and streaming runs over the same `n` see
/// identical records.
///
/// # Panics
///
/// Panics if `n` is zero (a workload must launch something).
pub fn synthetic_workload(n: u64) -> Workload {
    assert!(n > 0, "synthetic stream needs at least one kernel");
    let templates = synthetic_templates();
    let per_cycle = templates.len() as u64;
    let repeats = n / per_cycle;
    let remainder = (n % per_cycle) as usize;
    let mut builder = Workload::builder(format!("synthetic{n}"), Suite::MlPerf);
    if repeats > 0 {
        builder = builder.cycle(templates.clone(), repeats);
    }
    for template in templates.into_iter().take(remainder) {
        builder = builder.run(template, 1);
    }
    builder.build()
}

// ---------------------------------------------------------------------------
// In-memory records source
// ---------------------------------------------------------------------------

/// Streams already-profiled [`pka_profile`] records from memory — the
/// adapter for experiments that hold a detailed record set and want to feed
/// it through the online pipeline (parity tests, replays).
#[derive(Debug, Clone)]
pub struct RecordsSource {
    label: String,
    records: Vec<(DetailedRecord, LightweightRecord)>,
    pos: usize,
}

impl RecordsSource {
    /// Wraps detailed records paired with their lightweight views.
    pub fn new(label: impl Into<String>, records: Vec<(DetailedRecord, LightweightRecord)>) -> Self {
        Self {
            label: label.into(),
            records,
            pos: 0,
        }
    }

    /// Profiles `workload` up front (both views, full stream) and wraps the
    /// result. Only sensible for workloads that fit in memory.
    ///
    /// # Errors
    ///
    /// Propagates profiling failures.
    pub fn profile(workload: &Workload, profiler: &Profiler) -> Result<Self, StreamError> {
        let detailed = profiler.detailed(workload, 0..workload.kernel_count())?;
        let lightweight = profiler.lightweight(workload, 0..workload.kernel_count());
        Ok(Self::new(
            format!("records:{}", workload.name()),
            detailed.into_iter().zip(lightweight).collect(),
        ))
    }
}

impl KernelSource for RecordsSource {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }

    fn next_record(&mut self, want_detailed: bool) -> Result<Option<SourceRecord>, StreamError> {
        let Some((detailed, lightweight)) = self.records.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        Ok(Some(SourceRecord {
            lightweight: lightweight.clone(),
            detailed: want_detailed.then(|| detailed.clone()),
        }))
    }

    fn skip(&mut self, n: u64) -> Result<u64, StreamError> {
        let remaining = (self.records.len() - self.pos) as u64;
        let skipped = n.min(remaining);
        self.pos += skipped as usize;
        Ok(skipped)
    }

    fn restart(&mut self) -> Result<(), StreamError> {
        self.pos = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSONL file / stdin source
// ---------------------------------------------------------------------------

/// Reads `pka.kernel_record/v1` JSONL from a file or stdin.
///
/// Each line is one object with the lightweight fields required and the
/// detailed fields optional:
///
/// ```json
/// {"id": 0, "name": "sgemm", "grid_blocks": 1024, "block_threads": 256,
///  "shared_mem_bytes": 0, "tensor_elements": 262144,
///  "cycles": 48210, "seconds": 3.2e-5, "dram_util_pct": 41.0,
///  "l2_miss_rate_pct": 12.5, "metrics": {"instructions": 1.9e6, ...}}
/// ```
///
/// Detailed fields (`cycles`, `seconds`, `dram_util_pct`,
/// `l2_miss_rate_pct`, `metrics`) must be present on the first *j* lines
/// when the online pipeline's prefix asks for them; tail lines need only
/// the lightweight fields. [`SourceRecord::to_jsonl`] produces this format.
pub struct JsonlSource {
    label: String,
    path: Option<PathBuf>,
    reader: Box<dyn BufRead + Send>,
    line: u64,
}

impl std::fmt::Debug for JsonlSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSource")
            .field("label", &self.label)
            .field("line", &self.line)
            .finish()
    }
}

impl JsonlSource {
    /// Opens a JSONL file.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be opened.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, StreamError> {
        let path = path.into();
        let file = File::open(&path)?;
        Ok(Self {
            label: format!("jsonl:{}", path.display()),
            path: Some(path),
            reader: Box::new(BufReader::new(file)),
            line: 0,
        })
    }

    /// Reads JSONL from standard input (single-pass: no resume, no batch
    /// verification).
    pub fn stdin() -> Self {
        Self {
            label: "jsonl:-".to_string(),
            path: None,
            reader: Box::new(BufReader::new(std::io::stdin())),
            line: 0,
        }
    }

    /// Wraps any buffered reader (tests, pipes).
    pub fn from_reader(label: impl Into<String>, reader: impl BufRead + Send + 'static) -> Self {
        Self {
            label: label.into(),
            path: None,
            reader: Box::new(reader),
            line: 0,
        }
    }

    fn next_line(&mut self) -> Result<Option<String>, StreamError> {
        loop {
            let mut buf = String::new();
            let n = self.reader.read_line(&mut buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.line += 1;
            if !buf.trim().is_empty() {
                return Ok(Some(buf));
            }
        }
    }

    fn parse(&self, text: &str, want_detailed: bool) -> Result<SourceRecord, StreamError> {
        parse_record_line(text, self.line, want_detailed)
    }
}

/// Parses one `pka.kernel_record/v1` JSONL line (the format
/// [`SourceRecord::to_jsonl`] emits) into a [`SourceRecord`]. `line` is the
/// 1-based position used in parse errors. The detailed view is only
/// extracted when `want_detailed` is set — exactly [`JsonlSource`]'s
/// behaviour, which also backs [`FeedSource`] so records fed over the wire
/// parse byte-for-byte like records read from a file.
fn parse_record_line(
    text: &str,
    line: u64,
    want_detailed: bool,
) -> Result<SourceRecord, StreamError> {
    {
        let bad = |message: String| StreamError::Parse { line, message };
        let value: Value = serde_json::from_str(text.trim())
            .map_err(|e| bad(format!("invalid json: {e}")))?;
        let Value::Object(obj) = &value else {
            return Err(bad("record is not a json object".into()));
        };
        let req_u64 = |key: &str| -> Result<u64, StreamError> {
            obj.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad(format!("missing or non-integer `{key}`")))
        };
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `name`".into()))?
            .to_string();
        let kernel_id = KernelId::new(req_u64("id")?);
        let lightweight = LightweightRecord {
            kernel_id,
            name: name.clone(),
            grid_blocks: req_u64("grid_blocks")?,
            block_threads: u32::try_from(req_u64("block_threads")?)
                .map_err(|_| bad("`block_threads` exceeds u32".into()))?,
            shared_mem_bytes: u32::try_from(req_u64("shared_mem_bytes")?)
                .map_err(|_| bad("`shared_mem_bytes` exceeds u32".into()))?,
            tensor_elements: req_u64("tensor_elements")?,
        };
        if !want_detailed {
            return Ok(SourceRecord {
                lightweight,
                detailed: None,
            });
        }
        let req_f64 = |key: &str| -> Result<f64, StreamError> {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| bad(format!("detailed prefix record missing `{key}`")))
        };
        let Some(Value::Object(metrics)) = obj.get("metrics") else {
            return Err(bad(
                "detailed prefix record missing `metrics` object".into()
            ));
        };
        let metric = |key: &str| -> Result<f64, StreamError> {
            metrics
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| bad(format!("metrics missing `{key}`")))
        };
        let detailed = DetailedRecord {
            kernel_id,
            name,
            metrics: KernelMetrics {
                coalesced_global_loads: metric("coalesced_global_loads")?,
                coalesced_global_stores: metric("coalesced_global_stores")?,
                coalesced_local_loads: metric("coalesced_local_loads")?,
                thread_global_loads: metric("thread_global_loads")?,
                thread_global_stores: metric("thread_global_stores")?,
                thread_local_loads: metric("thread_local_loads")?,
                thread_shared_loads: metric("thread_shared_loads")?,
                thread_shared_stores: metric("thread_shared_stores")?,
                thread_global_atomics: metric("thread_global_atomics")?,
                instructions: metric("instructions")?,
                divergence_efficiency: metric("divergence_efficiency")?,
                thread_blocks: metrics
                    .get("thread_blocks")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad("metrics missing `thread_blocks`".into()))?,
            },
            cycles: req_u64("cycles")?,
            seconds: req_f64("seconds")?,
            dram_util_pct: req_f64("dram_util_pct")?,
            l2_miss_rate_pct: req_f64("l2_miss_rate_pct")?,
        };
        Ok(SourceRecord {
            lightweight,
            detailed: Some(detailed),
        })
    }
}

impl KernelSource for JsonlSource {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn len_hint(&self) -> Option<u64> {
        None
    }

    fn next_record(&mut self, want_detailed: bool) -> Result<Option<SourceRecord>, StreamError> {
        match self.next_line()? {
            None => Ok(None),
            Some(text) => Ok(Some(self.parse(&text, want_detailed)?)),
        }
    }

    fn skip(&mut self, n: u64) -> Result<u64, StreamError> {
        // Lines are skipped without parsing — resume fast-forwards through
        // the already-processed region at I/O speed.
        let mut skipped = 0;
        while skipped < n {
            if self.next_line()?.is_none() {
                break;
            }
            skipped += 1;
        }
        Ok(skipped)
    }

    fn restart(&mut self) -> Result<(), StreamError> {
        let Some(path) = &self.path else {
            return Err(StreamError::NotRestartable);
        };
        let file = File::open(path)?;
        self.reader = Box::new(BufReader::new(file));
        self.line = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Incremental feed
// ---------------------------------------------------------------------------

/// Shared state between a [`FeedSource`] and its [`FeedHandle`]s: a bounded
/// queue of raw `pka.kernel_record/v1` lines plus the end-of-feed /
/// abandoned flags. Raw lines (not parsed records) are queued so the
/// consumer side parses with the `want_detailed` flag the pipeline actually
/// asked for — byte-for-byte the same records a [`JsonlSource`] over the
/// concatenated lines would produce.
struct FeedShared {
    queue: Mutex<FeedQueue>,
    /// Signalled when lines arrive, the feed finishes, or it is abandoned.
    ready: Condvar,
    /// Signalled when queue space frees up (producer back-pressure).
    space: Condvar,
}

struct FeedQueue {
    lines: VecDeque<String>,
    /// Producer promised no more lines.
    finished: bool,
    /// Consumer side told producers to stop (teardown): pushes fail fast
    /// instead of blocking on a queue nobody will drain.
    abandoned: bool,
    capacity: usize,
}

/// Producer half of an in-process record feed: push JSONL lines in, they
/// come out of the paired [`FeedSource`] in order. Cloneable; all clones
/// share the queue.
#[derive(Clone)]
pub struct FeedHandle {
    shared: Arc<FeedShared>,
}

impl FeedHandle {
    /// Appends one `pka.kernel_record/v1` JSONL line. Blocks while the
    /// queue is at capacity (bounded-memory back-pressure); blank lines are
    /// ignored, matching [`JsonlSource`].
    ///
    /// # Errors
    ///
    /// [`StreamError::Source`] when the feed was already finished, or when
    /// the consumer abandoned it (session teardown).
    pub fn push_line(&self, line: &str) -> Result<(), StreamError> {
        if line.trim().is_empty() {
            return Ok(());
        }
        let mut queue = self.shared.queue.lock().expect("feed queue lock");
        loop {
            if queue.abandoned {
                return Err(StreamError::Source {
                    message: "feed abandoned: the consuming session was torn down".into(),
                });
            }
            if queue.finished {
                return Err(StreamError::Source {
                    message: "feed already finished: no more records accepted".into(),
                });
            }
            if queue.lines.len() < queue.capacity {
                queue.lines.push_back(line.to_string());
                self.shared.ready.notify_all();
                return Ok(());
            }
            queue = self
                .shared
                .space
                .wait(queue)
                .expect("feed queue lock");
        }
    }

    /// Appends every non-blank line of `text`, returning how many were
    /// accepted.
    ///
    /// # Errors
    ///
    /// Same as [`push_line`](Self::push_line); lines before the failure
    /// stay queued.
    pub fn push_lines(&self, text: &str) -> Result<u64, StreamError> {
        let mut accepted = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            self.push_line(line)?;
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Marks the feed complete: the paired [`FeedSource`] reports end of
    /// stream once the queue drains. Idempotent.
    pub fn finish(&self) {
        let mut queue = self.shared.queue.lock().expect("feed queue lock");
        queue.finished = true;
        self.shared.ready.notify_all();
        self.shared.space.notify_all();
    }

    /// Marks the feed abandoned: blocked and future pushes fail, and the
    /// paired [`FeedSource`] reports end of stream once the queue drains —
    /// the consumer folds what it already has and stops cleanly. Used by
    /// session teardown together with a
    /// [`CancelToken`](crate::CancelToken). Idempotent.
    pub fn abandon(&self) {
        let mut queue = self.shared.queue.lock().expect("feed queue lock");
        queue.abandoned = true;
        queue.finished = true;
        self.shared.ready.notify_all();
        self.shared.space.notify_all();
    }

    /// Lines currently buffered (waiting to be consumed).
    pub fn buffered(&self) -> usize {
        self.shared.queue.lock().expect("feed queue lock").lines.len()
    }
}

/// A [`KernelSource`] fed incrementally by a [`FeedHandle`] — the
/// `pka-server` streaming-session transport. Records arrive as raw
/// `pka.kernel_record/v1` JSONL lines and are parsed on consumption with
/// the pipeline's own `want_detailed` flag, so a feed carrying the lines of
/// a file is indistinguishable from a [`JsonlSource`] over that file
/// (including parse errors and line numbers). The queue is bounded:
/// producers block at `capacity` lines, keeping per-session memory at
/// O(capacity) on top of the pipeline's own budget.
///
/// Not restartable (records are consumed as they stream through), so
/// `--verify-batch`-style re-reads and in-place resume are unavailable;
/// resume a checkpoint against a restartable source carrying the same
/// records (the label names it).
pub struct FeedSource {
    shared: Arc<FeedShared>,
    label: String,
    line: u64,
}

impl FeedSource {
    /// Creates a feed with the given source label (use the name of the
    /// restartable source the records come from, e.g. `jsonl:records.jsonl`
    /// — checkpoints embed it, and resume matches on it) and queue
    /// capacity in lines.
    pub fn new(label: impl Into<String>, capacity: usize) -> (Self, FeedHandle) {
        let shared = Arc::new(FeedShared {
            queue: Mutex::new(FeedQueue {
                lines: VecDeque::new(),
                finished: false,
                abandoned: false,
                capacity: capacity.max(1),
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        let source = Self {
            shared: Arc::clone(&shared),
            label: label.into(),
            line: 0,
        };
        (source, FeedHandle { shared })
    }

    /// Blocks until a line is available or the feed is finished; `None`
    /// means end of feed.
    fn next_line(&mut self) -> Option<String> {
        let mut queue = self.shared.queue.lock().expect("feed queue lock");
        loop {
            if let Some(line) = queue.lines.pop_front() {
                self.shared.space.notify_all();
                self.line += 1;
                return Some(line);
            }
            if queue.finished {
                return None;
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .expect("feed queue lock");
        }
    }
}

impl KernelSource for FeedSource {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn len_hint(&self) -> Option<u64> {
        None
    }

    fn next_record(&mut self, want_detailed: bool) -> Result<Option<SourceRecord>, StreamError> {
        match self.next_line() {
            None => Ok(None),
            Some(text) => Ok(Some(parse_record_line(&text, self.line, want_detailed)?)),
        }
    }

    fn skip(&mut self, n: u64) -> Result<u64, StreamError> {
        let mut skipped = 0;
        while skipped < n {
            if self.next_line().is_none() {
                break;
            }
            skipped += 1;
        }
        Ok(skipped)
    }

    fn restart(&mut self) -> Result<(), StreamError> {
        Err(StreamError::NotRestartable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_gpu::GpuConfig;

    #[test]
    fn synthetic_workload_has_exact_count_and_varied_kernels() {
        for n in [1u64, 4, 5, 7, 1000] {
            let w = synthetic_workload(n);
            assert_eq!(w.kernel_count(), n, "n={n}");
        }
        let w = synthetic_workload(100);
        let names: std::collections::BTreeSet<String> = (0..10)
            .map(|i| w.kernel(KernelId::new(i)).name().to_string())
            .collect();
        assert!(names.len() >= 5, "expected 5 distinct operators: {names:?}");
    }

    #[test]
    fn workload_source_streams_in_order_and_restarts() {
        let mut src = WorkloadSource::new(synthetic_workload(12), Profiler::new(GpuConfig::v100()));
        assert_eq!(src.len_hint(), Some(12));
        let first = src.next_record(true).unwrap().unwrap();
        assert_eq!(first.lightweight.kernel_id, KernelId::new(0));
        assert!(first.detailed.is_some());
        let second = src.next_record(false).unwrap().unwrap();
        assert_eq!(second.lightweight.kernel_id, KernelId::new(1));
        assert!(second.detailed.is_none());
        assert_eq!(src.skip(100).unwrap(), 10);
        assert!(src.next_record(false).unwrap().is_none());
        src.restart().unwrap();
        let again = src.next_record(true).unwrap().unwrap();
        assert_eq!(again.detailed, first.detailed);
    }

    #[test]
    fn feature_fast_path_is_bit_identical_to_records() {
        // The launch-view override must produce exactly the floats the
        // record-materialising path produces, for every launch across the
        // synthetic operator and grid cycles.
        let n = 2_500u64;
        let profiler = Profiler::new(GpuConfig::v100());
        let mut fast = WorkloadSource::new(synthetic_workload(n), profiler.clone());
        let mut slow = WorkloadSource::new(synthetic_workload(n), profiler);
        let mut features = Vec::new();
        for i in 0..n {
            features.clear();
            assert!(fast.next_features_into(&mut features).unwrap());
            let rec = slow.next_record(false).unwrap().unwrap();
            let reference = rec.lightweight.to_feature_vector();
            assert_eq!(features, reference, "launch {i}");
        }
        assert!(!fast.next_features_into(&mut features).unwrap());
    }

    #[test]
    fn default_feature_path_appends_and_signals_end() {
        let w = synthetic_workload(3);
        let profiler = Profiler::new(GpuConfig::v100());
        let mut via_jsonl = {
            let mut src = WorkloadSource::new(w, profiler);
            let mut lines = String::new();
            while let Some(rec) = src.next_record(false).unwrap() {
                lines.push_str(&rec.to_jsonl().to_string());
                lines.push('\n');
            }
            JsonlSource::from_reader("jsonl:test", std::io::Cursor::new(lines))
        };
        let mut out = Vec::new();
        for pulled in 0..3 {
            assert!(via_jsonl.next_features_into(&mut out).unwrap());
            assert_eq!(out.len(), (pulled + 1) * LightweightRecord::FEATURE_COUNT);
        }
        assert!(!via_jsonl.next_features_into(&mut out).unwrap());
        assert_eq!(out.len(), 3 * LightweightRecord::FEATURE_COUNT);
    }

    #[test]
    fn records_source_matches_workload_source() {
        let w = synthetic_workload(8);
        let profiler = Profiler::new(GpuConfig::v100());
        let mut a = WorkloadSource::new(w.clone(), profiler.clone());
        let mut b = RecordsSource::profile(&w, &profiler).unwrap();
        for _ in 0..8 {
            let ra = a.next_record(true).unwrap().unwrap();
            let rb = b.next_record(true).unwrap().unwrap();
            assert_eq!(ra, rb);
        }
        assert!(b.next_record(true).unwrap().is_none());
    }

    #[test]
    fn jsonl_roundtrip_preserves_both_views() {
        let w = synthetic_workload(6);
        let profiler = Profiler::new(GpuConfig::v100());
        let mut src = WorkloadSource::new(w, profiler);
        let mut lines = String::new();
        let mut originals = Vec::new();
        while let Some(rec) = src.next_record(true).unwrap() {
            lines.push_str(&rec.to_jsonl().to_string());
            lines.push('\n');
            originals.push(rec);
        }
        let mut parsed = JsonlSource::from_reader("jsonl:test", std::io::Cursor::new(lines));
        for original in &originals {
            let got = parsed.next_record(true).unwrap().unwrap();
            assert_eq!(got.lightweight, original.lightweight);
            let (g, o) = (got.detailed.unwrap(), original.detailed.clone().unwrap());
            assert_eq!(g.kernel_id, o.kernel_id);
            assert_eq!(g.cycles, o.cycles);
            assert_eq!(g.metrics.thread_blocks, o.metrics.thread_blocks);
            assert_eq!(g.metrics.to_feature_vector(), o.metrics.to_feature_vector());
        }
        assert!(parsed.next_record(false).unwrap().is_none());
    }

    #[test]
    fn jsonl_prefix_without_detailed_fields_errors() {
        let line = r#"{"id":0,"name":"k","grid_blocks":8,"block_threads":64,"shared_mem_bytes":0,"tensor_elements":512}"#;
        let mut src = JsonlSource::from_reader("jsonl:test", std::io::Cursor::new(line.to_string()));
        // Lightweight pull succeeds ...
        let mut src2 =
            JsonlSource::from_reader("jsonl:test", std::io::Cursor::new(line.to_string()));
        assert!(src2.next_record(false).unwrap().is_some());
        // ... but a detailed pull over the same line reports the gap.
        match src.next_record(true) {
            Err(StreamError::Parse { line: 1, .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn stdin_like_sources_refuse_restart() {
        let mut src = JsonlSource::from_reader("jsonl:-", std::io::Cursor::new(String::new()));
        assert_eq!(src.restart(), Err(StreamError::NotRestartable));
    }

    /// Records pulled from a feed carrying a file's lines are identical to
    /// records read from the file itself — both views, in order.
    #[test]
    fn feed_source_matches_jsonl_source() {
        let workload = synthetic_workload(40);
        let profiler = Profiler::new(GpuConfig::v100());
        let records = RecordsSource::profile(&workload, &profiler).unwrap();
        let mut lines = String::new();
        let mut reference = Vec::new();
        let mut src = records;
        while let Some(r) = src.next_record(true).unwrap() {
            lines.push_str(&r.to_jsonl().to_string());
            lines.push('\n');
            reference.push(r);
        }

        let (mut feed, handle) = FeedSource::new("jsonl:feed-test", 8);
        let mut jsonl =
            JsonlSource::from_reader("jsonl:feed-test", std::io::Cursor::new(lines.clone()));
        let producer = std::thread::spawn(move || {
            let pushed = handle.push_lines(&lines).unwrap();
            handle.finish();
            pushed
        });
        assert_eq!(feed.name(), "jsonl:feed-test");
        for (i, original) in reference.iter().enumerate() {
            let want_detailed = i < 10;
            let from_feed = feed.next_record(want_detailed).unwrap().unwrap();
            let from_file = jsonl.next_record(want_detailed).unwrap().unwrap();
            assert_eq!(from_feed.lightweight, from_file.lightweight);
            assert_eq!(
                from_feed.detailed.is_some(),
                from_file.detailed.is_some(),
                "record {i}"
            );
            assert_eq!(from_feed.lightweight.kernel_id, original.lightweight.kernel_id);
        }
        assert!(feed.next_record(false).unwrap().is_none());
        assert!(jsonl.next_record(false).unwrap().is_none());
        assert_eq!(producer.join().unwrap(), reference.len() as u64);
        assert_eq!(feed.restart(), Err(StreamError::NotRestartable));
    }

    /// The queue is bounded: a producer pushing past capacity blocks until
    /// the consumer drains, and never loses or reorders lines.
    #[test]
    fn feed_backpressure_blocks_and_preserves_order() {
        let line = |id: u64| {
            format!(
                r#"{{"id":{id},"name":"k","grid_blocks":8,"block_threads":64,"shared_mem_bytes":0,"tensor_elements":512}}"#
            )
        };
        let (mut feed, handle) = FeedSource::new("jsonl:bp", 4);
        let producer = std::thread::spawn(move || {
            for id in 0..64u64 {
                handle.push_line(&line(id)).unwrap();
            }
            handle.finish();
        });
        let mut seen = Vec::new();
        while let Some(r) = feed.next_record(false).unwrap() {
            seen.push(r.lightweight.kernel_id.index());
        }
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
        producer.join().unwrap();
    }

    /// Abandoning the feed fails producers fast and ends the stream for
    /// the consumer once the buffered lines drain.
    #[test]
    fn feed_abandon_unblocks_producer_and_ends_stream() {
        let line = r#"{"id":1,"name":"k","grid_blocks":8,"block_threads":64,"shared_mem_bytes":0,"tensor_elements":512}"#;
        let (mut feed, handle) = FeedSource::new("jsonl:abandon", 1);
        handle.push_line(line).unwrap();
        let blocked = {
            let handle = handle.clone();
            let line = line.to_string();
            std::thread::spawn(move || handle.push_line(&line))
        };
        // The producer is now blocked on the full queue; abandoning must
        // wake it with an error rather than leaving it stuck.
        std::thread::sleep(std::time::Duration::from_millis(20));
        handle.abandon();
        assert!(matches!(
            blocked.join().unwrap(),
            Err(StreamError::Source { .. })
        ));
        // The already-buffered line still drains, then the stream ends.
        assert!(feed.next_record(false).unwrap().is_some());
        assert!(feed.next_record(false).unwrap().is_none());
        assert!(matches!(
            handle.push_line(line),
            Err(StreamError::Source { .. })
        ));
    }
}
