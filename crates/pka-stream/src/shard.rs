//! Sharded multi-stream ingestion with a deterministic merge.
//!
//! [`ShardedStreamPks`] partitions the tail of a kernel stream across N
//! independent shard pipelines via the consistent-hash [`HashRing`]
//! (placement is a pure function of stream position and shard count), runs
//! every shard's online state concurrently on the shared
//! [`Executor`](pka_stats::Executor), and reconciles the shard
//! centroids/reservoirs into one global selection with the deterministic
//! weighted merge in [`crate::merge`].
//!
//! # Parity with the single-shard pipeline
//!
//! Both engines bootstrap through the same [`PrefixModel`]: identical
//! detailed prefix, identical batch PKS (same K, same representatives),
//! identical classifier ensemble. Tail classification is a pure function
//! of a record's raw features — group membership never depends on shard
//! state — so the per-group tail counts summed across shards equal the
//! single pipeline's counts exactly, and the merged selection (and its
//! projected cycles) is *identical by construction*, not approximately.
//!
//! # Determinism
//!
//! Routing is worker-independent; each shard folds its records strictly in
//! stream order; cross-shard reductions (counts, the final merge) iterate
//! in shard-id order. Final output is bitwise identical for any worker
//! count, any shard enumeration order, and across a live reshard — moving
//! a shard's state to a new owner lane changes *which thread* runs it,
//! never what it computes, and checkpoints deliberately omit owner lanes.
//!
//! # Throughput
//!
//! The tail avoids the single-shard pipeline's per-record costs: features
//! come from the source's launch-view fast path
//! ([`KernelSource::next_features_into`]), classification is batched
//! ([`Ensemble::predict_into`]'s majority short-circuit) behind an exact
//! memo table keyed on the raw feature bits, and records fold shard-local
//! with no cross-shard synchronisation inside a round.

use pka_core::{selection_attribution, ErrorAttribution, Selection, ShardAttribution};
use pka_ml::classify::{Classifier, Ensemble};
use pka_stats::hash::{mix64, UnitStream};
use pka_stats::Executor;
use serde_json::json;
use std::sync::{Mutex, RwLock};

use crate::cancel::CancelToken;
use crate::checkpoint::{MergedSection, ReservoirItem, ReservoirState, ShardSection, ShardedCheckpoint};
use crate::drift::{Drift, DriftTracker};
use crate::merge::{lloyd_iterations, merge_sections};
use crate::normalize::StreamingNormalizer;
use crate::pipeline::{PrefixModel, StreamConfig, StreamReport};
use crate::ring::HashRing;
use crate::source::KernelSource;
use crate::StreamError;

/// Slots in each shard's direct-mapped classification memo. The synthetic
/// and real streams are template-heavy (few distinct launch shapes), so a
/// small exact cache absorbs almost every ensemble call.
const MEMO_SLOTS: usize = 1024;

/// FNV-1a over the raw feature bit patterns; the full row is still
/// compared on lookup, so a colliding slot can only miss, never mislabel.
fn memo_key(row: &[f64]) -> (u64, usize) {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in row {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h, (h % MEMO_SLOTS as u64) as usize)
}

/// One shard's complete online state (plus unpersisted scratch).
struct ShardState {
    normalizer: StreamingNormalizer,
    centroids: Vec<Vec<f64>>,
    centroid_counts: Vec<u64>,
    drift: Vec<DriftTracker>,
    tail_counts: Vec<u64>,
    reservoir_items: Vec<ReservoirItem>,
    reservoir_seen: u64,
    records: u64,
    drifts: u64,
    reclusters: u64,
    // Scratch below: pure caches/buffers, never checkpointed. A shard
    // rebuilt from its serialised section starts these fresh, which cannot
    // change any output (the memo is an exact cache of a pure function).
    memo_keys: Vec<u64>,
    memo_labels: Vec<usize>,
    memo_rows: Vec<f64>,
    row_idx: Vec<usize>,
    labels: Vec<usize>,
    miss_idx: Vec<usize>,
    miss_flat: Vec<f64>,
    miss_labels: Vec<usize>,
    norm: Vec<f64>,
}

impl ShardState {
    /// Seeds a shard from the shared prefix model: same normalizer stats,
    /// same prefix centroids and populations, fresh drift envelopes and an
    /// empty reservoir (the prefix is global state, not any shard's tail).
    fn seeded(model: &PrefixModel, config: &StreamConfig) -> Self {
        let k = model.selection.k();
        Self::assemble(
            StreamingNormalizer::from_stats(model.normalizer.stats()),
            model.centroids.clone(),
            model.centroid_counts.clone(),
            vec![
                DriftTracker::new(
                    config.drift_calibration,
                    config.drift_sigma,
                    config.drift_alpha,
                );
                k
            ],
            vec![0; k],
            Vec::new(),
            0,
            0,
            0,
            0,
            model.normalizer.dims(),
        )
    }

    fn from_section(section: ShardSection, dims: usize) -> Self {
        Self::assemble(
            StreamingNormalizer::from_stats(section.normalizer),
            section.centroids,
            section.centroid_counts,
            section.drift,
            section.tail_counts,
            section.reservoir.items,
            section.reservoir.seen,
            section.records,
            section.drifts,
            section.reclusters,
            dims,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        normalizer: StreamingNormalizer,
        centroids: Vec<Vec<f64>>,
        centroid_counts: Vec<u64>,
        drift: Vec<DriftTracker>,
        tail_counts: Vec<u64>,
        reservoir_items: Vec<ReservoirItem>,
        reservoir_seen: u64,
        records: u64,
        drifts: u64,
        reclusters: u64,
        dims: usize,
    ) -> Self {
        Self {
            normalizer,
            centroids,
            centroid_counts,
            drift,
            tail_counts,
            reservoir_items,
            reservoir_seen,
            records,
            drifts,
            reclusters,
            memo_keys: vec![0; MEMO_SLOTS],
            memo_labels: vec![usize::MAX; MEMO_SLOTS],
            memo_rows: vec![0.0; MEMO_SLOTS * dims],
            row_idx: Vec::new(),
            labels: Vec::new(),
            miss_idx: Vec::new(),
            miss_flat: Vec::new(),
            miss_labels: Vec::new(),
            norm: Vec::with_capacity(dims),
        }
    }

    fn section(&self, shard_cap: usize) -> ShardSection {
        ShardSection {
            records: self.records,
            tail_counts: self.tail_counts.clone(),
            normalizer: self.normalizer.stats(),
            centroids: self.centroids.clone(),
            centroid_counts: self.centroid_counts.clone(),
            drift: self.drift.clone(),
            reservoir: ReservoirState {
                cap: shard_cap,
                seen: self.reservoir_seen,
                items: self.reservoir_items.clone(),
            },
            drifts: self.drifts,
            reclusters: self.reclusters,
        }
    }
}

/// One round's shared inputs: the flat feature batch plus routing.
struct RoundInput {
    /// Row-major features, `rows × dims`.
    flat: Vec<f64>,
    /// Records in this round.
    rows: usize,
    /// Absolute stream position of row 0.
    base_pos: u64,
    /// Owning shard per row (precomputed from the ring, in row order).
    owners: Vec<usize>,
    /// Which executor lane currently runs each shard. Starts as the
    /// identity; a live reshard rewrites one entry. Placement (`owners`)
    /// never consults this — lanes are pure scheduling.
    lane_of: Vec<usize>,
}

/// Summary of a sharded run: the familiar [`StreamReport`] plus the shard
/// topology's own outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Run summary (counts aggregated across shards).
    pub report: StreamReport,
    /// Tail records folded by each shard, in shard-id order.
    pub shard_records: Vec<u64>,
    /// [`HashRing::map_hash`] of the placement used for the run.
    pub map_hash: u64,
    /// The merged selection over the entire stream — identical to the
    /// single-shard pipeline's on the same records.
    pub selection: Selection,
    /// Final resumable snapshot, including the [`MergedSection`].
    pub final_checkpoint: ShardedCheckpoint,
    /// Per-group error attribution (`pka.attribution/v1`) over the merged
    /// selection, with one shard section per shard pipeline. Identical to
    /// the single-shard pipeline's artifact apart from those sections.
    pub attribution: ErrorAttribution,
}

/// The sharded online PKS engine. See the module docs for the contract.
///
/// # Examples
///
/// ```
/// use pka_gpu::GpuConfig;
/// use pka_profile::Profiler;
/// use pka_stream::{ShardedStreamPks, StreamConfig, WorkloadSource, synthetic_workload};
///
/// let workload = synthetic_workload(5_000);
/// let mut source = WorkloadSource::new(workload, Profiler::new(GpuConfig::v100()));
/// let engine = ShardedStreamPks::new(StreamConfig::default().with_prefix(500), 4);
/// let outcome = engine.run(&mut source, |_checkpoint| Ok(()))?;
/// assert_eq!(outcome.report.records, 5_000);
/// assert_eq!(outcome.shard_records.iter().sum::<u64>(), 4_500);
/// # Ok::<(), pka_stream::StreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedStreamPks {
    config: StreamConfig,
    shards: usize,
    exec: Executor,
    reshard: Option<(u64, usize, usize)>,
}

impl ShardedStreamPks {
    /// Creates the engine with `shards` shard pipelines (min 1) on the
    /// sequential executor.
    pub fn new(config: StreamConfig, shards: usize) -> Self {
        Self {
            config,
            shards: shards.max(1),
            exec: Executor::sequential(),
            reshard: None,
        }
    }

    /// Runs the shard pipelines (and the prefix bootstrap) over `exec`.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// Schedules a live reshard: once `at_records` total records have been
    /// consumed, `shard`'s reservoir + centroid state is serialised,
    /// re-parsed and handed to executor lane `new_lane` (qdrant-style
    /// state move with the ring untouched). The final output is
    /// byte-identical with or without the move.
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `new_lane` is out of range.
    pub fn with_reshard(mut self, at_records: u64, shard: usize, new_lane: usize) -> Self {
        assert!(shard < self.shards, "reshard source {shard} out of range");
        assert!(new_lane < self.shards, "reshard lane {new_lane} out of range");
        self.reshard = Some((at_records, shard, new_lane));
        self
    }

    /// The configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs the engine over `source` from its current position to end of
    /// stream. `on_checkpoint` observes every periodic sharded checkpoint;
    /// erroring from it aborts the run.
    ///
    /// Checkpoints are emitted at mini-batch grain: the first batch
    /// boundary at or past each `checkpoint_every` multiple. The cadence
    /// depends only on the batch size and the stream, never on workers.
    ///
    /// # Errors
    ///
    /// Propagates source, clustering, classification and callback
    /// failures. An empty source is a [`StreamError::Pipeline`] error.
    pub fn run<S, F>(
        &self,
        source: &mut S,
        on_checkpoint: F,
    ) -> Result<ShardedOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&ShardedCheckpoint) -> Result<(), StreamError>,
    {
        self.run_with_cancel(source, on_checkpoint, &CancelToken::new())
    }

    /// [`run`](Self::run) with cooperative cancellation: `cancel` is polled
    /// at every tail batch boundary. When it fires, one teardown checkpoint
    /// covering every folded record is delivered through `on_checkpoint`
    /// and the run returns [`StreamError::Cancelled`];
    /// [`resume`](Self::resume) continues from that checkpoint.
    ///
    /// # Errors
    ///
    /// Everything [`run`](Self::run) can fail with, plus
    /// [`StreamError::Cancelled`] when the token fires.
    pub fn run_with_cancel<S, F>(
        &self,
        source: &mut S,
        on_checkpoint: F,
        cancel: &CancelToken,
    ) -> Result<ShardedOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&ShardedCheckpoint) -> Result<(), StreamError>,
    {
        let model = PrefixModel::bootstrap(&self.config, &self.exec, source)?;
        let states: Vec<ShardState> = (0..self.shards)
            .map(|_| ShardState::seeded(&model, &self.config))
            .collect();
        self.drain(source, model, states, 0, 0, 0, on_checkpoint, cancel)
    }

    /// Resumes from `checkpoint` against a restartable `source`,
    /// continuing to a final checkpoint byte-identical to an uninterrupted
    /// run's.
    ///
    /// # Errors
    ///
    /// Fails when the checkpoint disagrees with this configuration,
    /// topology or source, and for anything [`run`](Self::run) can fail
    /// with.
    pub fn resume<S, F>(
        &self,
        source: &mut S,
        checkpoint: &ShardedCheckpoint,
        on_checkpoint: F,
    ) -> Result<ShardedOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&ShardedCheckpoint) -> Result<(), StreamError>,
    {
        self.resume_with_cancel(source, checkpoint, on_checkpoint, &CancelToken::new())
    }

    /// [`resume`](Self::resume) with cooperative cancellation, with the
    /// same batch-boundary semantics as
    /// [`run_with_cancel`](Self::run_with_cancel).
    ///
    /// # Errors
    ///
    /// Everything [`resume`](Self::resume) can fail with, plus
    /// [`StreamError::Cancelled`] when the token fires.
    pub fn resume_with_cancel<S, F>(
        &self,
        source: &mut S,
        checkpoint: &ShardedCheckpoint,
        on_checkpoint: F,
        cancel: &CancelToken,
    ) -> Result<ShardedOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&ShardedCheckpoint) -> Result<(), StreamError>,
    {
        let corrupt = |message: String| StreamError::Checkpoint { message };
        if checkpoint.config != self.config.to_value() {
            return Err(corrupt(
                "checkpoint was taken under a different configuration".into(),
            ));
        }
        if checkpoint.shards != self.shards {
            return Err(corrupt(format!(
                "checkpoint has {} shards, engine has {}",
                checkpoint.shards, self.shards
            )));
        }
        let ring_hash = HashRing::new(self.shards).map_hash();
        if checkpoint.map_hash != ring_hash {
            return Err(corrupt(format!(
                "checkpoint shard map {:#x} does not match the ring for {} shards ({ring_hash:#x})",
                checkpoint.map_hash, self.shards
            )));
        }
        source.restart()?;
        if checkpoint.source != source.name() {
            return Err(corrupt(format!(
                "checkpoint is for source `{}`, not `{}`",
                checkpoint.source,
                source.name()
            )));
        }
        let model = PrefixModel::bootstrap(&self.config, &self.exec, source)?;
        if model.records != checkpoint.prefix {
            return Err(corrupt(format!(
                "source prefix is {} records, checkpoint recorded {}",
                model.records, checkpoint.prefix
            )));
        }
        if model.selection.k() != checkpoint.selected_k {
            return Err(corrupt(format!(
                "re-derived prefix selects K={}, checkpoint recorded K={}",
                model.selection.k(),
                checkpoint.selected_k
            )));
        }
        let snapshot: Selection = serde_json::from_value(checkpoint.selection.clone())
            .map_err(|e| corrupt(format!("checkpoint selection does not parse: {e}")))?;
        if snapshot.representative_ids() != model.selection.representative_ids() {
            return Err(corrupt(
                "checkpoint selection has different representatives than the \
                 re-derived prefix — wrong stream or corrupted checkpoint"
                    .into(),
            ));
        }
        let dims = model.normalizer.dims();
        let states: Vec<ShardState> = checkpoint
            .shard_sections
            .iter()
            .map(|s| ShardState::from_section(s.clone(), dims))
            .collect();

        let to_skip = checkpoint.records - checkpoint.prefix;
        let skipped = source.skip(to_skip)?;
        if skipped != to_skip {
            return Err(corrupt(format!(
                "stream ended while skipping to record {} (skipped {skipped} of {to_skip})",
                checkpoint.records
            )));
        }
        if pka_obs::enabled() {
            pka_obs::counter("stream.resumes").incr();
            pka_obs::trace_event(
                "stream.resume",
                json!({
                    "seq": checkpoint.seq,
                    "records": checkpoint.records,
                    "source": checkpoint.source,
                    "shards": checkpoint.shards as u64,
                }),
            );
        }
        self.drain(
            source,
            model,
            states,
            checkpoint.records - checkpoint.prefix,
            checkpoint.seq,
            checkpoint.max_buffered,
            on_checkpoint,
            cancel,
        )
    }

    /// Per-shard reservoir capacity: the global budget split evenly,
    /// rounded up so the union always covers the global cap.
    fn shard_cap(&self) -> usize {
        (self.config.reservoir + self.shards - 1) / self.shards
    }

    /// Streams the tail through the shard pipelines until end of stream.
    #[allow(clippy::too_many_arguments)]
    fn drain<S, F>(
        &self,
        source: &mut S,
        model: PrefixModel,
        states: Vec<ShardState>,
        tail_done: u64,
        seq: u64,
        max_buffered: u64,
        mut on_checkpoint: F,
        cancel: &CancelToken,
    ) -> Result<ShardedOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&ShardedCheckpoint) -> Result<(), StreamError>,
    {
        let _span = pka_obs::span("stream.shard_tail");
        let obs = pka_obs::enabled();
        let snap_every = if obs { pka_obs::snapshot_every() } else { 0 };
        let ring = HashRing::new(self.shards);
        let map_hash = ring.map_hash();
        let dims = model.normalizer.dims();
        let shard_cap = self.shard_cap();
        let every = self.config.checkpoint_every;
        let prefix_records = model.records;
        let source_name = model.source_name.clone();
        let pristine = model.selection.clone();

        let mut seq = seq;
        let mut checkpoints_emitted = 0u64;
        let mut max_buffered = max_buffered;
        let mut records = prefix_records + tail_done;

        let cells: Vec<Mutex<ShardState>> = states.into_iter().map(Mutex::new).collect();
        // Per-shard metric names are interned once (`&'static`, bounded by
        // the shard count) so the hot loop takes handles, not allocations.
        let counter_names: Vec<&'static str> = (0..self.shards)
            .map(|s| pka_obs::intern(&format!("stream.shard{s}.records")))
            .collect();

        match model.ensemble.as_ref() {
            None => {
                if source.next_record(false)?.is_some() {
                    return Err(StreamError::Pipeline {
                        message: "source yielded tail records after reporting end of stream"
                            .into(),
                    });
                }
            }
            Some(ensemble) => {
                let input_cell = RwLock::new(RoundInput {
                    flat: Vec::with_capacity(self.config.batch * dims),
                    rows: 0,
                    base_pos: 0,
                    owners: Vec::with_capacity(self.config.batch),
                    lane_of: (0..self.shards).collect(),
                });
                let mut resharded = false;
                self.exec.rounds(
                    self.shards,
                    1,
                    |_, range| -> Result<(), StreamError> {
                        let input = input_cell.read().expect("shard round input lock");
                        for lane in range {
                            for shard in 0..self.shards {
                                if input.lane_of[shard] != lane {
                                    continue;
                                }
                                let mut state = cells[shard].lock().expect("shard state lock");
                                classify_and_fold(
                                    &mut state,
                                    &input,
                                    shard,
                                    &self.config,
                                    ensemble,
                                    dims,
                                    shard_cap,
                                )?;
                            }
                        }
                        Ok(())
                    },
                    |run| -> Result<(), StreamError> {
                        loop {
                            // Cancellation point: between batches, so every
                            // folded record is in the teardown checkpoint
                            // and no half-classified batch is observable.
                            if cancel.is_cancelled() {
                                seq += 1;
                                checkpoints_emitted += 1;
                                let checkpoint = build_checkpoint(
                                    &self.config,
                                    &cells,
                                    &pristine,
                                    seq,
                                    records,
                                    prefix_records,
                                    &source_name,
                                    self.shards,
                                    map_hash,
                                    shard_cap,
                                    max_buffered,
                                    None,
                                );
                                on_checkpoint(&checkpoint)?;
                                if obs {
                                    pka_obs::counter("stream.cancels").incr();
                                    pka_obs::trace_event(
                                        "stream.cancel",
                                        json!({
                                            "seq": checkpoint.seq,
                                            "records": checkpoint.records,
                                        }),
                                    );
                                }
                                return Err(StreamError::Cancelled);
                            }
                            // Live reshard: serialise the shard's section,
                            // re-parse it, hand the rebuilt state to its new
                            // lane. Placement is untouched, so every byte of
                            // downstream output is unchanged by the move.
                            if let Some((at, shard, lane)) = self.reshard {
                                if !resharded && records >= at {
                                    resharded = true;
                                    let section = {
                                        let state =
                                            cells[shard].lock().expect("shard state lock");
                                        state.section(shard_cap)
                                    };
                                    let parsed = ShardSection::from_value(
                                        &section.to_value(),
                                        "reshard",
                                        pristine.k(),
                                        dims,
                                    )?;
                                    *cells[shard].lock().expect("shard state lock") =
                                        ShardState::from_section(parsed, dims);
                                    input_cell.write().expect("shard round input lock").lane_of
                                        [shard] = lane;
                                    if obs {
                                        pka_obs::counter("stream.reshards").incr();
                                        pka_obs::trace_event(
                                            "stream.reshard",
                                            json!({
                                                "shard": shard as u64,
                                                "lane": lane as u64,
                                                "records": records,
                                            }),
                                        );
                                    }
                                }
                            }

                            // Refill the flat batch via the launch-view fast
                            // path and route every row.
                            let filled = {
                                let mut input =
                                    input_cell.write().expect("shard round input lock");
                                let input = &mut *input;
                                input.flat.clear();
                                input.owners.clear();
                                input.base_pos = records;
                                let mut rows = 0usize;
                                while rows < self.config.batch {
                                    if !source.next_features_into(&mut input.flat)? {
                                        break;
                                    }
                                    rows += 1;
                                }
                                for i in 0..rows {
                                    input
                                        .owners
                                        .push(ring.route(input.base_pos + i as u64));
                                }
                                input.rows = rows;
                                rows
                            };
                            if filled == 0 {
                                return Ok(());
                            }

                            let reservoir_total: u64 = cells
                                .iter()
                                .map(|c| {
                                    c.lock().expect("shard state lock").reservoir_items.len()
                                        as u64
                                })
                                .sum();
                            max_buffered = max_buffered.max(filled as u64 + reservoir_total);

                            for result in run() {
                                result?;
                            }
                            let before = records;
                            records += filled as u64;

                            if obs {
                                let input = input_cell.read().expect("shard round input lock");
                                let mut per_shard = vec![0u64; self.shards];
                                for &owner in &input.owners {
                                    per_shard[owner] += 1;
                                }
                                drop(input);
                                pka_obs::counter("stream.records").add(filled as u64);
                                for (&name, &n) in counter_names.iter().zip(&per_shard) {
                                    if n > 0 {
                                        pka_obs::counter(name).add(n);
                                    }
                                }
                                pka_obs::gauge("stream.max_buffered").set(max_buffered as i64);
                            }

                            if before / every < records / every {
                                seq += 1;
                                checkpoints_emitted += 1;
                                let checkpoint = build_checkpoint(
                                    &self.config,
                                    &cells,
                                    &pristine,
                                    seq,
                                    records,
                                    prefix_records,
                                    &source_name,
                                    self.shards,
                                    map_hash,
                                    shard_cap,
                                    max_buffered,
                                    None,
                                );
                                on_checkpoint(&checkpoint)?;
                                if obs {
                                    pka_obs::trace_event(
                                        "stream.checkpoint",
                                        json!({
                                            "seq": checkpoint.seq,
                                            "records": checkpoint.records,
                                        }),
                                    );
                                }
                            }
                            if snap_every != 0 && before / snap_every < records / snap_every {
                                emit_shard_snapshot(
                                    &self.config,
                                    &cells,
                                    &pristine,
                                    records,
                                    checkpoints_emitted,
                                    max_buffered,
                                );
                            }
                        }
                    },
                )?;
            }
        }

        let states: Vec<ShardState> = cells
            .into_iter()
            .map(|cell| cell.into_inner().expect("shard state lock"))
            .collect();
        let sections: Vec<ShardSection> =
            states.iter().map(|s| s.section(shard_cap)).collect();
        let merged = merge_sections(&sections, self.config.reservoir, self.config.recluster_iters);
        let selection = merged_selection(&pristine, &sections);
        let shard_records: Vec<u64> = states.iter().map(|s| s.records).collect();
        let drifts: u64 = states.iter().map(|s| s.drifts).sum();
        let reclusters: u64 = states.iter().map(|s| s.reclusters).sum();

        if obs {
            pka_obs::counter("stream.checkpoints").add(checkpoints_emitted);
            pka_obs::counter("stream.drifts").add(drifts);
            pka_obs::counter("stream.reclusters").add(reclusters);
            for (shard, state) in states.iter().enumerate() {
                pka_obs::gauge(pka_obs::intern(&format!("stream.shard{shard}.reservoir")))
                    .set(state.reservoir_items.len() as i64);
            }
            pka_obs::gauge("stream.selected_k").set(selection.k() as i64);
        }

        seq += 1;
        let final_checkpoint = ShardedCheckpoint {
            seq,
            records,
            prefix: prefix_records,
            source: source_name.clone(),
            selected_k: selection.k(),
            selection: serde_json::to_value(&selection).expect("selection serialises to json"),
            projected_cycles: selection.projected_cycles(),
            shards: self.shards,
            map_hash,
            shard_sections: sections,
            merged: Some(merged),
            max_buffered,
            config: self.config.to_value(),
        };
        let report = StreamReport {
            records,
            prefix: prefix_records,
            selected_k: selection.k(),
            projected_cycles: selection.projected_cycles(),
            group_counts: selection.groups().iter().map(|g| g.count()).collect(),
            drifts,
            reclusters,
            checkpoints: checkpoints_emitted,
            max_buffered,
        };
        // Attribution over the merged selection. The merged selection and
        // the provenance both come from the shared prefix bootstrap, so the
        // group sections are byte-identical to the single-shard pipeline's;
        // only the shard sections below are new.
        let mut attribution =
            selection_attribution(&source_name, &selection, &model.provenance);
        attribution.shards = states
            .iter()
            .enumerate()
            .map(|(shard, state)| ShardAttribution {
                shard,
                records: state.records,
                tail_counts: state.tail_counts.clone(),
            })
            .collect();
        Ok(ShardedOutcome {
            report,
            shard_records,
            map_hash,
            selection,
            final_checkpoint,
            attribution,
        })
    }
}

/// The global selection: the pristine prefix selection plus every shard's
/// classified tail counts, summed in shard-id order.
fn merged_selection(pristine: &Selection, sections: &[ShardSection]) -> Selection {
    let mut selection = pristine.clone();
    let k = selection.k();
    let mut totals = vec![0u64; k];
    for section in sections {
        for (total, &count) in totals.iter_mut().zip(&section.tail_counts) {
            *total += count;
        }
    }
    for (group, &n) in totals.iter().enumerate() {
        if n > 0 {
            selection.add_classified_members(group, n);
        }
    }
    selection
}

/// Builds a periodic sharded checkpoint from the live shard states.
#[allow(clippy::too_many_arguments)]
fn build_checkpoint(
    config: &StreamConfig,
    cells: &[Mutex<ShardState>],
    pristine: &Selection,
    seq: u64,
    records: u64,
    prefix: u64,
    source_name: &str,
    shards: usize,
    map_hash: u64,
    shard_cap: usize,
    max_buffered: u64,
    merged: Option<MergedSection>,
) -> ShardedCheckpoint {
    let sections: Vec<ShardSection> = cells
        .iter()
        .map(|cell| cell.lock().expect("shard state lock").section(shard_cap))
        .collect();
    let selection = merged_selection(pristine, &sections);
    ShardedCheckpoint {
        seq,
        records,
        prefix,
        source: source_name.to_string(),
        selected_k: selection.k(),
        selection: serde_json::to_value(&selection).expect("selection serialises to json"),
        projected_cycles: selection.projected_cycles(),
        shards,
        map_hash,
        shard_sections: sections,
        merged,
        max_buffered,
        config: config.to_value(),
    }
}

/// Emits one aggregated `pka.snapshot/v1` record with per-shard lanes.
fn emit_shard_snapshot(
    config: &StreamConfig,
    cells: &[Mutex<ShardState>],
    pristine: &Selection,
    records: u64,
    checkpoints: u64,
    max_buffered: u64,
) {
    let mut reservoir_len = 0u64;
    let mut drifts = 0u64;
    let mut reclusters = 0u64;
    let mut totals = vec![0u64; pristine.k()];
    let mut shard_records = Vec::with_capacity(cells.len());
    for cell in cells {
        let state = cell.lock().expect("shard state lock");
        reservoir_len += state.reservoir_items.len() as u64;
        drifts += state.drifts;
        reclusters += state.reclusters;
        shard_records.push(state.records);
        for (total, &count) in totals.iter_mut().zip(&state.tail_counts) {
            *total += count;
        }
    }
    let group_counts: Vec<u64> = pristine
        .groups()
        .iter()
        .zip(&totals)
        .map(|(g, &t)| g.count() + t)
        .collect();
    let record = pka_obs::SnapshotRecord {
        phase: "tail".to_string(),
        records,
        selected_k: pristine.k() as i64,
        group_counts,
        reservoir_len,
        reservoir_cap: config.reservoir as u64,
        drifts,
        reclusters,
        checkpoints,
        max_buffered,
        shards: shard_records,
    };
    pka_obs::emit_snapshot(&record, json!({}));
}

/// Classifies and folds every row routed to `shard`, in stream order.
///
/// Classification is memo-first: an exact direct-mapped cache over the raw
/// feature bits, with misses batch-predicted through the ensemble's
/// short-circuit path. Labels are identical to per-record
/// `ensemble.predict` on every row.
fn classify_and_fold(
    state: &mut ShardState,
    input: &RoundInput,
    shard: usize,
    config: &StreamConfig,
    ensemble: &Ensemble,
    dims: usize,
    shard_cap: usize,
) -> Result<(), StreamError> {
    let mut row_idx = std::mem::take(&mut state.row_idx);
    row_idx.clear();
    for (row, &owner) in input.owners.iter().enumerate() {
        if owner == shard {
            row_idx.push(row);
        }
    }
    if row_idx.is_empty() {
        state.row_idx = row_idx;
        return Ok(());
    }

    let mut labels = std::mem::take(&mut state.labels);
    let mut miss_idx = std::mem::take(&mut state.miss_idx);
    let mut miss_flat = std::mem::take(&mut state.miss_flat);
    labels.clear();
    labels.resize(row_idx.len(), usize::MAX);
    miss_idx.clear();
    miss_flat.clear();
    for (i, &row) in row_idx.iter().enumerate() {
        let features = &input.flat[row * dims..(row + 1) * dims];
        let (key, slot) = memo_key(features);
        if state.memo_labels[slot] != usize::MAX
            && state.memo_keys[slot] == key
            && state.memo_rows[slot * dims..(slot + 1) * dims] == *features
        {
            labels[i] = state.memo_labels[slot];
        } else {
            miss_idx.push(i);
            miss_flat.extend_from_slice(features);
        }
    }
    if !miss_idx.is_empty() {
        let mut miss_labels = std::mem::take(&mut state.miss_labels);
        ensemble.predict_into(&miss_flat, dims, &mut miss_labels)?;
        for (&i, &label) in miss_idx.iter().zip(&miss_labels) {
            labels[i] = label;
            let features = &input.flat[row_idx[i] * dims..(row_idx[i] + 1) * dims];
            let (key, slot) = memo_key(features);
            state.memo_keys[slot] = key;
            state.memo_labels[slot] = label;
            state.memo_rows[slot * dims..(slot + 1) * dims].copy_from_slice(features);
        }
        state.miss_labels = miss_labels;
    }

    for (i, &row) in row_idx.iter().enumerate() {
        let pos = input.base_pos + row as u64;
        let features = &input.flat[row * dims..(row + 1) * dims];
        fold_row(state, config, shard_cap, labels[i], features, pos);
    }

    state.row_idx = row_idx;
    state.labels = labels;
    state.miss_idx = miss_idx;
    state.miss_flat = miss_flat;
    Ok(())
}

/// Folds one classified record into its shard's online state — the same
/// update sequence as the single-shard pipeline's fold, restricted to the
/// shard: counts, normalizer, centroid, reservoir (Algorithm R keyed on
/// the absolute position, counted per shard), drift and bounded
/// re-cluster.
fn fold_row(
    state: &mut ShardState,
    config: &StreamConfig,
    shard_cap: usize,
    label: usize,
    features: &[f64],
    pos: u64,
) {
    state.tail_counts[label] += 1;
    state.norm.clear();
    state.norm.extend_from_slice(features);
    state.normalizer.observe(&state.norm);
    state.normalizer.normalize(&mut state.norm);

    let distance = state.centroids[label]
        .iter()
        .zip(&state.norm)
        .map(|(c, x)| (x - c) * (x - c))
        .sum::<f64>()
        .sqrt();

    state.centroid_counts[label] += 1;
    let n = state.centroid_counts[label] as f64;
    for (c, x) in state.centroids[label].iter_mut().zip(&state.norm) {
        *c += (x - *c) / n;
    }

    state.reservoir_seen += 1;
    if state.reservoir_items.len() < shard_cap {
        state.reservoir_items.push(ReservoirItem {
            pos,
            label,
            features: state.norm.clone(),
        });
    } else {
        let slot = UnitStream::new(mix64(config.seed ^ pos))
            .next_index(state.reservoir_seen as usize);
        if slot < shard_cap {
            state.reservoir_items[slot] = ReservoirItem {
                pos,
                label,
                features: state.norm.clone(),
            };
        }
    }

    if state.drift[label].observe(distance) == Drift::Fired {
        state.drifts += 1;
        if !state.reservoir_items.is_empty() && !state.centroids.is_empty() {
            lloyd_iterations(
                &mut state.centroids,
                &state.reservoir_items,
                config.recluster_iters,
            );
            for tracker in &mut state.drift {
                tracker.reset();
            }
            let k = state.centroids.len();
            let mut counts = vec![0u64; k];
            for item in &state.reservoir_items {
                if item.label < k {
                    counts[item.label] += 1;
                }
            }
            for (cc, c) in state.centroid_counts.iter_mut().zip(counts) {
                *cc = c.max(1);
            }
            state.reclusters += 1;
        }
    }
    state.records += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{synthetic_workload, WorkloadSource};
    use pka_gpu::GpuConfig;
    use pka_profile::Profiler;

    fn source(n: u64) -> WorkloadSource {
        WorkloadSource::new(synthetic_workload(n), Profiler::new(GpuConfig::v100()))
    }

    fn small_config() -> StreamConfig {
        StreamConfig::default()
            .with_prefix(200)
            .with_batch(64)
            .with_reservoir(128)
            .with_checkpoint_every(500)
    }

    #[test]
    fn every_record_lands_in_exactly_one_shard() {
        let mut src = source(2_000);
        let outcome = ShardedStreamPks::new(small_config(), 4)
            .run(&mut src, |_| Ok(()))
            .unwrap();
        assert_eq!(outcome.report.records, 2_000);
        assert_eq!(
            outcome.shard_records.iter().sum::<u64>(),
            1_800,
            "all tail records distributed across shards"
        );
        assert!(outcome.shard_records.iter().all(|&r| r > 0));
        assert_eq!(
            outcome.report.group_counts.iter().sum::<u64>(),
            2_000,
            "every kernel lands in a group"
        );
    }

    #[test]
    fn worker_count_does_not_change_the_final_checkpoint() {
        let run = |workers: usize| {
            let mut src = source(1_500);
            ShardedStreamPks::new(small_config(), 4)
                .with_executor(Executor::new(workers))
                .run(&mut src, |_| Ok(()))
                .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.report, b.report);
        assert_eq!(
            a.final_checkpoint.to_json(),
            b.final_checkpoint.to_json(),
            "final checkpoints must be byte-identical across worker counts"
        );
        assert_eq!(
            serde_json::to_string(&a.attribution).unwrap(),
            serde_json::to_string(&b.attribution).unwrap(),
            "attribution artifacts must be byte-identical across worker counts"
        );
    }

    #[test]
    fn attribution_matches_single_pipeline_apart_from_shard_sections() {
        let mut src = source(2_000);
        let sharded = ShardedStreamPks::new(small_config(), 4)
            .run(&mut src, |_| Ok(()))
            .unwrap();
        let mut src = source(2_000);
        let single = crate::StreamPks::new(small_config())
            .run(&mut src, |_| Ok(()))
            .unwrap();

        sharded.attribution.verify_sums().expect("sharded terms sum");
        assert_eq!(sharded.attribution.shards.len(), 4);
        assert_eq!(
            sharded
                .attribution
                .shards
                .iter()
                .map(|s| s.records)
                .collect::<Vec<_>>(),
            sharded.shard_records
        );

        // Strip the shard sections: what remains must be byte-identical to
        // the single-shard pipeline's artifact.
        let strip = |a: &pka_core::ErrorAttribution| {
            let mut v = serde_json::to_value(a).unwrap();
            if let serde_json::Value::Object(m) = &mut v {
                m.remove("shards");
            }
            serde_json::to_string(&v).unwrap()
        };
        assert_eq!(
            strip(&sharded.attribution),
            strip(&single.attribution),
            "sharded attribution differs from single only by its shard sections"
        );
    }

    #[test]
    fn reshard_move_is_byte_invisible() {
        let run = |engine: ShardedStreamPks| {
            let mut src = source(1_500);
            engine.run(&mut src, |_| Ok(())).unwrap()
        };
        let plain = run(ShardedStreamPks::new(small_config(), 4));
        let moved = run(ShardedStreamPks::new(small_config(), 4).with_reshard(700, 0, 3));
        assert_eq!(
            plain.final_checkpoint.to_json(),
            moved.final_checkpoint.to_json(),
            "a live reshard must not change any output byte"
        );
        assert_eq!(plain.report, moved.report);
    }

    #[test]
    fn single_shard_engine_matches_reference_selection() {
        let mut src = source(2_000);
        let sharded = ShardedStreamPks::new(small_config(), 1)
            .run(&mut src, |_| Ok(()))
            .unwrap();
        let mut src = source(2_000);
        let reference = crate::StreamPks::new(small_config())
            .run(&mut src, |_| Ok(()))
            .unwrap();
        assert_eq!(sharded.selection.k(), reference.selection.k());
        assert_eq!(
            sharded.selection.representative_ids(),
            reference.selection.representative_ids()
        );
        assert_eq!(
            sharded.report.group_counts, reference.report.group_counts,
            "single-shard engine must agree with the reference pipeline"
        );
        assert_eq!(
            sharded.report.projected_cycles,
            reference.report.projected_cycles
        );
    }

    #[test]
    fn checkpoint_callback_error_aborts() {
        let mut src = source(2_000);
        let result = ShardedStreamPks::new(small_config(), 2).run(&mut src, |_| {
            Err(StreamError::Checkpoint {
                message: "sink full".into(),
            })
        });
        assert!(matches!(result, Err(StreamError::Checkpoint { .. })));
    }

    #[test]
    fn stream_ending_inside_prefix_still_selects() {
        let mut src = source(150);
        let outcome = ShardedStreamPks::new(small_config(), 4)
            .run(&mut src, |_| Ok(()))
            .unwrap();
        assert_eq!(outcome.report.records, 150);
        assert_eq!(outcome.shard_records, vec![0, 0, 0, 0]);
        assert_eq!(outcome.report.checkpoints, 0);
    }

    #[test]
    fn resume_rejects_wrong_topology() {
        let mut src = source(1_200);
        let outcome = ShardedStreamPks::new(small_config(), 2)
            .run(&mut src, |_| Ok(()))
            .unwrap();
        let err = ShardedStreamPks::new(small_config(), 4)
            .resume(&mut src, &outcome.final_checkpoint, |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, StreamError::Checkpoint { .. }), "{err:?}");
    }

    #[test]
    fn resume_reproduces_uninterrupted_run() {
        let engine = ShardedStreamPks::new(small_config(), 4);
        let mut src = source(2_000);
        let uninterrupted = engine.run(&mut src, |_| Ok(())).unwrap();

        // Capture the first periodic checkpoint, then resume from it.
        let mut first: Option<ShardedCheckpoint> = None;
        let mut src = source(2_000);
        engine
            .run(&mut src, |cp| {
                if first.is_none() {
                    first = Some(cp.clone());
                }
                Ok(())
            })
            .unwrap();
        let first = first.expect("at least one periodic checkpoint");
        let mut src = source(2_000);
        let resumed = engine.resume(&mut src, &first, |_| Ok(())).unwrap();
        assert_eq!(
            resumed.final_checkpoint.to_json(),
            uninterrupted.final_checkpoint.to_json(),
            "resume must reproduce the uninterrupted run byte-for-byte"
        );
    }

    /// Sharded cancellation mirrors the single-pipeline contract: stop at a
    /// batch boundary, deliver a teardown checkpoint, resume to the same
    /// selection as an uninterrupted run.
    #[test]
    fn sharded_cancel_leaves_resumable_checkpoint() {
        let engine = ShardedStreamPks::new(small_config(), 3);
        let mut src = source(2_400);
        let full = engine.run(&mut src, |_| Ok(())).unwrap();

        let cancel = CancelToken::new();
        let mut teardown: Option<ShardedCheckpoint> = None;
        let mut src = source(2_400);
        let result = engine.run_with_cancel(
            &mut src,
            |cp| {
                cancel.cancel();
                teardown = Some(cp.clone());
                Ok(())
            },
            &cancel,
        );
        assert_eq!(result.unwrap_err(), StreamError::Cancelled);
        let teardown = teardown.expect("teardown checkpoint was delivered");
        assert!(teardown.records < 2_400);

        let mut src = source(2_400);
        let resumed = engine.resume(&mut src, &teardown, |_| Ok(())).unwrap();
        assert_eq!(resumed.report.records, 2_400);
        assert_eq!(resumed.report.selected_k, full.report.selected_k);
        assert_eq!(
            resumed.report.projected_cycles,
            full.report.projected_cycles
        );
    }
}
