//! Deterministic hash-ring shard placement.
//!
//! Incoming kernels are partitioned across shards by consistent hashing:
//! each shard owns a fixed set of virtual points on a 64-bit ring, and a
//! record at stream position `t` routes to the owner of the first point at
//! or after `hash(t)` (wrapping). The ring is a pure function of the shard
//! *count* — construction iterates shard ids in ascending order and sorts
//! the points — so placement is identical no matter how callers enumerate
//! shards, which machine builds the ring, or how many workers execute the
//! shard pipelines. Qdrant-style resharding moves a shard's *state* to a
//! new owner lane without touching the ring, so routing (and therefore
//! every downstream byte) is unchanged by a live move.

use pka_stats::hash::{fnv1a, mix64};

/// Virtual points per shard. More points flatten the per-shard load
/// imbalance (relative spread ~ `1/sqrt(V)`); 64 keeps a 4-shard ring
/// within a few percent of uniform while staying cheap to build and hash.
pub const VIRTUAL_NODES: usize = 64;

/// Salt folded into position hashes so the routing keyspace is not the raw
/// record index (which would correlate with the virtual-point hashes).
const ROUTE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// A consistent-hash ring over `shards` shards.
///
/// # Examples
///
/// ```
/// use pka_stream::HashRing;
///
/// let ring = HashRing::new(4);
/// let owner = ring.route(12_345);
/// assert!(owner < 4);
/// // Placement is a pure function: same position, same owner, always.
/// assert_eq!(owner, HashRing::new(4).route(12_345));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    shards: usize,
    /// `(point_hash, shard_id)` sorted ascending — ties (astronomically
    /// rare) resolve toward the lower shard id, deterministically.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VIRTUAL_NODES);
        for s in 0..shards {
            let base = fnv1a(format!("pka.shard/{s}").as_bytes());
            for v in 0..VIRTUAL_NODES as u64 {
                points.push((mix64(base ^ mix64(v.wrapping_add(1))), s));
            }
        }
        points.sort_unstable();
        Self { shards, points }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The sorted `(point_hash, shard_id)` table (for checkpoints and
    /// diagnostics).
    pub fn points(&self) -> &[(u64, usize)] {
        &self.points
    }

    /// Routes stream position `pos` to its owning shard.
    pub fn route(&self, pos: u64) -> usize {
        let key = mix64(pos ^ ROUTE_SALT);
        let i = self.points.partition_point(|&(h, _)| h <= key);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1
    }

    /// A 64-bit digest of the full routing table — stamped into sharded
    /// checkpoints and reports so a resume (or a reader) can verify it is
    /// looking at the same placement.
    pub fn map_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.points.len() * 16);
        for &(h, s) in &self.points {
            bytes.extend_from_slice(&h.to_le_bytes());
            bytes.extend_from_slice(&(s as u64).to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_position_routes_to_exactly_one_valid_shard() {
        for shards in [1usize, 2, 3, 4, 8] {
            let ring = HashRing::new(shards);
            for pos in 0..5_000u64 {
                let owner = ring.route(pos);
                assert!(owner < shards, "pos {pos} routed to {owner} of {shards}");
                // Pure function: re-routing is identical.
                assert_eq!(owner, ring.route(pos));
            }
        }
    }

    #[test]
    fn placement_is_stable_under_enumeration_order() {
        // The ring is a function of the shard count alone; building it
        // twice — or routing positions in any order — yields the same
        // table and the same placements.
        let a = HashRing::new(4);
        let b = HashRing::new(4);
        assert_eq!(a.points(), b.points());
        assert_eq!(a.map_hash(), b.map_hash());
        let forward: Vec<usize> = (0..2_000).map(|p| a.route(p)).collect();
        let mut backward: Vec<usize> = (0..2_000).rev().map(|p| b.route(p)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::new(4);
        let mut counts = [0u64; 4];
        for pos in 0..100_000u64 {
            counts[ring.route(pos)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (10_000..=45_000).contains(&c),
                "shard {s} holds {c} of 100k — unreasonably unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn different_shard_counts_have_different_maps() {
        assert_ne!(HashRing::new(2).map_hash(), HashRing::new(4).map_hash());
    }

    #[test]
    fn single_shard_takes_everything() {
        let ring = HashRing::new(1);
        for pos in [0u64, 1, 999, u64::MAX] {
            assert_eq!(ring.route(pos), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = HashRing::new(0);
    }
}
