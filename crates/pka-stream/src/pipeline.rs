use pka_core::{
    selection_attribution, ErrorAttribution, GroupProvenance, Pks, PksConfig,
    RepresentativePolicy, Selection,
};
use pka_ml::classify::{Classifier, Ensemble, GaussianNb, MlpClassifier, SgdClassifier};
use pka_ml::Matrix;
use pka_profile::{DetailedRecord, LightweightRecord};
use pka_stats::hash::{mix64, UnitStream};
use pka_stats::Executor;
use serde_json::{json, Map, Value};

use crate::cancel::CancelToken;
use crate::checkpoint::{Checkpoint, ReservoirItem, ReservoirState};
use crate::drift::{Drift, DriftTracker};
use crate::normalize::StreamingNormalizer;
use crate::source::{KernelSource, SourceRecord};
use crate::StreamError;

/// Tail records classified per parallel work item. Fixed (never derived
/// from the worker count) so the chunk grid — and therefore every
/// classification — is identical for any executor.
const TAIL_CHUNK: usize = 512;

/// Bucket edges (ns) for the `stream.checkpoint_write_ns` histogram:
/// 10 µs / 100 µs / 1 ms / 10 ms / 100 ms, plus overflow.
const CHECKPOINT_WRITE_EDGES: &[u64] =
    &[10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// Configuration for the online pipeline.
///
/// # Examples
///
/// ```
/// use pka_stream::StreamConfig;
///
/// let config = StreamConfig::default().with_prefix(600).with_batch(1024);
/// assert_eq!(config.prefix(), 600);
/// assert_eq!(config.batch(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    pub(crate) prefix: u64,
    pub(crate) checkpoint_every: u64,
    pub(crate) reservoir: usize,
    pub(crate) batch: usize,
    pub(crate) drift_sigma: f64,
    pub(crate) drift_alpha: f64,
    pub(crate) drift_calibration: u64,
    pub(crate) recluster_iters: usize,
    pub(crate) seed: u64,
    pub(crate) classifier_seed: u64,
    pub(crate) pks: PksConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            // The paper detail-profiles 20k of SSD training's 5.3M kernels.
            prefix: 20_000,
            checkpoint_every: 100_000,
            reservoir: 4096,
            batch: 2048,
            drift_sigma: 3.0,
            drift_alpha: 0.05,
            drift_calibration: 256,
            recluster_iters: 2,
            seed: 0,
            classifier_seed: 0,
            pks: PksConfig::default(),
        }
    }
}

impl StreamConfig {
    /// Sets the detailed-prefix length *j* (min 1).
    pub fn with_prefix(mut self, prefix: u64) -> Self {
        self.prefix = prefix.max(1);
        self
    }

    /// Sets how many records elapse between checkpoints (min 1).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Sets the reservoir-sample capacity (min 1).
    pub fn with_reservoir(mut self, cap: usize) -> Self {
        self.reservoir = cap.max(1);
        self
    }

    /// Sets the tail mini-batch size (min 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the drift envelope width (standard deviations above the mean).
    pub fn with_drift_sigma(mut self, sigma: f64) -> Self {
        self.drift_sigma = sigma;
        self
    }

    /// Sets the EWMA smoothing for drift exceedance tracking.
    pub fn with_drift_alpha(mut self, alpha: f64) -> Self {
        self.drift_alpha = alpha;
        self
    }

    /// Sets how many distances calibrate a drift envelope.
    pub fn with_drift_calibration(mut self, n: u64) -> Self {
        self.drift_calibration = n.max(2);
        self
    }

    /// Sets the Lloyd iterations per bounded re-cluster.
    pub fn with_recluster_iters(mut self, iters: usize) -> Self {
        self.recluster_iters = iters.max(1);
        self
    }

    /// Sets the reservoir-sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the classifier training seed (matches
    /// `TwoLevelConfig::with_classifier_seed`).
    pub fn with_classifier_seed(mut self, seed: u64) -> Self {
        self.classifier_seed = seed;
        self
    }

    /// Sets the PKS configuration applied to the detailed prefix.
    pub fn with_pks(mut self, pks: PksConfig) -> Self {
        self.pks = pks;
        self
    }

    /// The detailed-prefix length *j*.
    pub fn prefix(&self) -> u64 {
        self.prefix
    }

    /// Records between checkpoints.
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// Reservoir capacity.
    pub fn reservoir(&self) -> usize {
        self.reservoir
    }

    /// Tail mini-batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The PKS configuration.
    pub fn pks(&self) -> PksConfig {
        self.pks
    }

    /// Canonical JSON echo of this configuration, embedded in every
    /// checkpoint. [`StreamPks::resume`] refuses a checkpoint whose echo
    /// disagrees with the live configuration — resuming under different
    /// parameters would silently break byte-for-byte reproducibility.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("prefix".into(), Value::from(self.prefix));
        m.insert("checkpoint_every".into(), Value::from(self.checkpoint_every));
        m.insert("reservoir".into(), Value::from(self.reservoir as u64));
        m.insert("batch".into(), Value::from(self.batch as u64));
        m.insert("drift_sigma_bits".into(), Value::from(self.drift_sigma.to_bits()));
        m.insert("drift_alpha_bits".into(), Value::from(self.drift_alpha.to_bits()));
        m.insert("drift_calibration".into(), Value::from(self.drift_calibration));
        m.insert("recluster_iters".into(), Value::from(self.recluster_iters as u64));
        m.insert("seed".into(), Value::from(self.seed));
        m.insert("classifier_seed".into(), Value::from(self.classifier_seed));
        let mut pks = Map::new();
        pks.insert(
            "target_error_pct_bits".into(),
            Value::from(self.pks.target_error_pct().to_bits()),
        );
        pks.insert("max_k".into(), Value::from(self.pks.max_k() as u64));
        pks.insert(
            "pca_variance_bits".into(),
            Value::from(self.pks.pca_variance().to_bits()),
        );
        pks.insert("seed".into(), Value::from(self.pks.seed()));
        pks.insert(
            "representative".into(),
            Value::from(format!("{:?}", self.pks.representative())),
        );
        m.insert("pks".into(), Value::Object(pks));
        Value::Object(m)
    }

    /// Reconstructs a configuration from a checkpoint's `config` echo — the
    /// exact inverse of [`StreamConfig::to_value`], so a resume can adopt
    /// the original run's parameters without the caller re-specifying them.
    ///
    /// # Examples
    ///
    /// ```
    /// use pka_stream::StreamConfig;
    ///
    /// let config = StreamConfig::default().with_prefix(600).with_batch(64);
    /// let round_tripped = StreamConfig::from_value(&config.to_value()).unwrap();
    /// assert_eq!(round_tripped, config);
    /// ```
    pub fn from_value(value: &Value) -> Result<Self, StreamError> {
        let bad = |what: &str| StreamError::Checkpoint {
            message: format!("config echo is missing or malformed: {what}"),
        };
        let map = value.as_object().ok_or_else(|| bad("not an object"))?;
        let int = |key: &str| {
            map.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad(key))
        };
        let float_bits = |key: &str| int(key).map(f64::from_bits);
        let pks_map = map
            .get("pks")
            .and_then(Value::as_object)
            .ok_or_else(|| bad("pks"))?;
        let pks_int = |key: &str| {
            pks_map
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad(key))
        };
        let rep_text = pks_map
            .get("representative")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("pks.representative"))?;
        let representative = if rep_text == "FirstChronological" {
            RepresentativePolicy::FirstChronological
        } else if rep_text == "ClusterCentre" {
            RepresentativePolicy::ClusterCentre
        } else if let Some(seed) = rep_text
            .strip_prefix("Random(")
            .and_then(|s| s.strip_suffix(')'))
            .and_then(|s| s.parse().ok())
        {
            RepresentativePolicy::Random(seed)
        } else {
            return Err(bad("pks.representative"));
        };
        let pks = PksConfig::default()
            .with_target_error_pct(f64::from_bits(pks_int("target_error_pct_bits")?))
            .with_max_k(pks_int("max_k")? as usize)
            .with_pca_variance(f64::from_bits(pks_int("pca_variance_bits")?))
            .with_seed(pks_int("seed")?)
            .with_representative(representative);
        Ok(Self::default()
            .with_prefix(int("prefix")?)
            .with_checkpoint_every(int("checkpoint_every")?)
            .with_reservoir(int("reservoir")? as usize)
            .with_batch(int("batch")? as usize)
            .with_drift_sigma(float_bits("drift_sigma_bits")?)
            .with_drift_alpha(float_bits("drift_alpha_bits")?)
            .with_drift_calibration(int("drift_calibration")?)
            .with_recluster_iters(int("recluster_iters")? as usize)
            .with_seed(int("seed")?)
            .with_classifier_seed(int("classifier_seed")?)
            .with_pks(pks))
    }
}

/// Summary of one streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Total records consumed (prefix + tail).
    pub records: u64,
    /// Detailed-prefix length actually used.
    pub prefix: u64,
    /// Group count selected by PKS over the prefix.
    pub selected_k: usize,
    /// Projected total cycles for the whole stream.
    pub projected_cycles: u64,
    /// Per-group member counts (prefix members + classified tail).
    pub group_counts: Vec<u64>,
    /// Drift firings over the tail.
    pub drifts: u64,
    /// Bounded re-cluster passes triggered by drift.
    pub reclusters: u64,
    /// Checkpoints emitted through the callback (excludes the final
    /// snapshot returned in [`StreamOutcome`]).
    pub checkpoints: u64,
    /// High-water mark of simultaneously buffered tail records.
    pub max_buffered: u64,
}

impl StreamReport {
    /// The report as a JSON value (for manifests and the CLI).
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("records".into(), Value::from(self.records));
        m.insert("prefix".into(), Value::from(self.prefix));
        m.insert("selected_k".into(), Value::from(self.selected_k as u64));
        m.insert("projected_cycles".into(), Value::from(self.projected_cycles));
        m.insert(
            "group_counts".into(),
            Value::Array(self.group_counts.iter().map(|&c| Value::from(c)).collect()),
        );
        m.insert("drifts".into(), Value::from(self.drifts));
        m.insert("reclusters".into(), Value::from(self.reclusters));
        m.insert("checkpoints".into(), Value::from(self.checkpoints));
        m.insert("max_buffered".into(), Value::from(self.max_buffered));
        Value::Object(m)
    }
}

/// Everything a streaming run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// Run summary.
    pub report: StreamReport,
    /// The selection covering the entire stream — identical to what the
    /// batch two-level pipeline produces on the same records.
    pub selection: Selection,
    /// Snapshot of the pipeline at end of stream (resumable, and the
    /// object byte-compared by the checkpoint→resume parity test).
    pub final_checkpoint: Checkpoint,
    /// Per-group error attribution (`pka.attribution/v1`): each group's
    /// representative provenance and its signed contribution to the
    /// selection's projected-cycle error over the detailed prefix.
    pub attribution: ErrorAttribution,
}

/// The online PKS pipeline.
///
/// [`run`](Self::run) consumes a [`KernelSource`] once: the detailed prefix
/// is buffered and handed to the *batch* `Pks` (so the selected K and the
/// classifier ensemble match `pka_core::TwoLevel` exactly), then the tail
/// streams through in bounded batches — chunk-parallel ensemble
/// classification followed by a strictly in-order fold that updates the
/// group counts, streaming normalizer, mini-batch centroids, drift
/// envelopes and reservoir, and emits checkpoints at exact record
/// multiples. Memory over the tail is `O(K·d + reservoir + batch)`,
/// independent of stream length, and every result is bitwise identical for
/// any worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPks {
    config: StreamConfig,
    exec: Executor,
}

/// Everything the detailed-prefix bootstrap produces, shared verbatim by
/// the single-shard pipeline and the sharded engine: the batch-PKS
/// selection (K, representatives, reference cycles), the prefix-seeded
/// streaming normalizer and mini-batch centroids, and the tail classifier
/// ensemble. Both pipelines bootstrapping through this one code path is
/// what makes their selected K and representative sets *identical by
/// construction* — the sharded/single parity contract starts here.
pub(crate) struct PrefixModel {
    pub selection: Selection,
    /// Representative provenance per group, re-derived from the detailed
    /// prefix (always available here, so checkpoints need not carry it —
    /// resume re-derives it through this same bootstrap).
    pub provenance: Vec<GroupProvenance>,
    pub normalizer: StreamingNormalizer,
    pub centroids: Vec<Vec<f64>>,
    pub centroid_counts: Vec<u64>,
    /// Prefix records consumed.
    pub records: u64,
    /// `None` when the stream ended inside the prefix (no tail to label).
    pub ensemble: Option<Ensemble>,
    pub source_name: String,
}

impl PrefixModel {
    /// Buffers the detailed prefix, runs batch PKS over it, trains the
    /// tail ensemble, and seeds the streaming state. The prefix buffer is
    /// dropped before returning — from here on memory is bounded.
    pub(crate) fn bootstrap<S>(
        config: &StreamConfig,
        exec: &Executor,
        source: &mut S,
    ) -> Result<Self, StreamError>
    where
        S: KernelSource + ?Sized,
    {
        let _span = pka_obs::span("stream.prefix");
        let source_name = source.name();
        let j = match source.len_hint() {
            Some(n) => config.prefix.min(n.max(1)),
            None => config.prefix,
        };
        let mut prefix: Vec<SourceRecord> = Vec::new();
        let mut ended = false;
        while (prefix.len() as u64) < j {
            match source.next_record(true)? {
                Some(record) => prefix.push(record),
                None => {
                    ended = true;
                    break;
                }
            }
        }
        if prefix.is_empty() {
            return Err(StreamError::Pipeline {
                message: "stream is empty: nothing to select from".into(),
            });
        }
        let detailed: Vec<DetailedRecord> = prefix
            .iter()
            .map(|r| {
                r.detailed.clone().ok_or_else(|| StreamError::Pipeline {
                    message: "prefix record lacks its detailed view".into(),
                })
            })
            .collect::<Result<_, _>>()?;
        let selection = Pks::new(config.pks).with_executor(*exec).select(&detailed)?;
        let provenance = Pks::new(config.pks).provenance(&detailed, &selection)?;
        let k = selection.k();

        // Streaming normalizer and mini-batch centroids, seeded from the
        // prefix's lightweight view: observe every prefix record, then set
        // each group's centroid to the mean of its members' normalised
        // features, weighted by its profiled population.
        let dims = LightweightRecord::FEATURE_COUNT;
        let mut normalizer = StreamingNormalizer::new(dims);
        let features: Vec<Vec<f64>> = prefix
            .iter()
            .map(|r| r.lightweight.to_feature_vector())
            .collect();
        for f in &features {
            normalizer.observe(f);
        }
        let mut centroids = vec![vec![0.0f64; dims]; k];
        let mut centroid_counts = vec![0u64; k];
        for (f, &label) in features.iter().zip(selection.labels()) {
            let mut x = f.clone();
            normalizer.normalize(&mut x);
            centroid_counts[label] += 1;
            let n = centroid_counts[label] as f64;
            for (c, xi) in centroids[label].iter_mut().zip(&x) {
                *c += (xi - *c) / n;
            }
        }

        // Train the tail ensemble exactly like the batch two-level pipeline
        // (same models, same seeds) — unless the stream already ended
        // inside the prefix, in which case there is no tail to classify.
        let ensemble = if ended {
            None
        } else {
            let rows: Vec<Vec<f64>> = features;
            let x = Matrix::from_rows(&rows).map_err(|e| StreamError::Pipeline {
                message: e.to_string(),
            })?;
            let y = selection.labels().to_vec();
            let seed = config.classifier_seed;
            Some(Ensemble::new(vec![
                Box::new(SgdClassifier::fit(&x, &y, seed)?),
                Box::new(GaussianNb::fit(&x, &y)?),
                Box::new(MlpClassifier::fit(&x, &y, seed ^ 0xff)?),
            ]))
        };

        let records = prefix.len() as u64;
        if pka_obs::enabled() {
            pka_obs::counter("stream.records").add(records);
            pka_obs::gauge("stream.selected_k").set(k as i64);
        }
        Ok(Self {
            selection,
            provenance,
            normalizer,
            centroids,
            centroid_counts,
            records,
            ensemble,
            source_name,
        })
    }
}

/// Tail-side mutable state (everything a checkpoint snapshots).
struct TailState {
    selection: Selection,
    /// Representative provenance, fixed at bootstrap (never checkpointed:
    /// resume re-derives it from the same prefix).
    provenance: Vec<GroupProvenance>,
    normalizer: StreamingNormalizer,
    centroids: Vec<Vec<f64>>,
    centroid_counts: Vec<u64>,
    drift: Vec<DriftTracker>,
    reservoir_items: Vec<ReservoirItem>,
    reservoir_seen: u64,
    records: u64,
    seq: u64,
    drifts: u64,
    reclusters: u64,
    checkpoints_emitted: u64,
    max_buffered: u64,
    /// Cumulative `on_checkpoint` callback time (observability only:
    /// wall-clock data never enters checkpoints, so this field is not
    /// snapshotted and restarts at zero on resume).
    checkpoint_write_ns: u64,
}

impl StreamPks {
    /// Creates the pipeline (sequential executor).
    pub fn new(config: StreamConfig) -> Self {
        Self {
            config,
            exec: Executor::sequential(),
        }
    }

    /// Fans prefix clustering and tail classification out over `exec`.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Runs the pipeline over `source` from its current position to end of
    /// stream. `on_checkpoint` observes every periodic checkpoint (write it
    /// to disk, ship it, or ignore it); erroring from the callback aborts
    /// the run.
    ///
    /// # Errors
    ///
    /// Propagates source, clustering, classification and callback failures.
    /// An empty source is a [`StreamError::Pipeline`] error.
    pub fn run<S, F>(&self, source: &mut S, on_checkpoint: F) -> Result<StreamOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&Checkpoint) -> Result<(), StreamError>,
    {
        self.run_with_cancel(source, on_checkpoint, &CancelToken::new())
    }

    /// [`run`](Self::run) with cooperative cancellation: `cancel` is polled
    /// at every batch boundary of the tail. When it fires, one final
    /// teardown checkpoint (at the exact record count folded so far) is
    /// delivered through `on_checkpoint` and the run returns
    /// [`StreamError::Cancelled`] — every record that was classified is in
    /// that checkpoint, so [`resume`](Self::resume) continues from it
    /// without re-processing anything.
    ///
    /// # Errors
    ///
    /// Everything [`run`](Self::run) can fail with, plus
    /// [`StreamError::Cancelled`] when the token fires.
    pub fn run_with_cancel<S, F>(
        &self,
        source: &mut S,
        on_checkpoint: F,
        cancel: &CancelToken,
    ) -> Result<StreamOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&Checkpoint) -> Result<(), StreamError>,
    {
        let (mut state, ensemble, source_name) = self.bootstrap(source)?;
        self.drain_tail(source, &mut state, ensemble.as_ref(), &source_name, on_checkpoint, cancel)
    }

    /// Resumes from `checkpoint` against a restartable `source`.
    ///
    /// The detailed prefix is re-derived deterministically (it is not
    /// stored in checkpoints), validated against the snapshot, and the tail
    /// state is restored bit-exactly; the source is then fast-forwarded to
    /// the snapshot position and the run continues as if never interrupted
    /// — the final checkpoint is byte-identical to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Fails when the checkpoint is inconsistent with this configuration or
    /// source, when the source cannot restart, and for anything
    /// [`run`](Self::run) can fail with.
    pub fn resume<S, F>(
        &self,
        source: &mut S,
        checkpoint: &Checkpoint,
        on_checkpoint: F,
    ) -> Result<StreamOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&Checkpoint) -> Result<(), StreamError>,
    {
        self.resume_with_cancel(source, checkpoint, on_checkpoint, &CancelToken::new())
    }

    /// [`resume`](Self::resume) with cooperative cancellation, with the
    /// same batch-boundary semantics as
    /// [`run_with_cancel`](Self::run_with_cancel).
    ///
    /// # Errors
    ///
    /// Everything [`resume`](Self::resume) can fail with, plus
    /// [`StreamError::Cancelled`] when the token fires.
    pub fn resume_with_cancel<S, F>(
        &self,
        source: &mut S,
        checkpoint: &Checkpoint,
        on_checkpoint: F,
        cancel: &CancelToken,
    ) -> Result<StreamOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&Checkpoint) -> Result<(), StreamError>,
    {
        let corrupt = |message: String| StreamError::Checkpoint { message };
        if checkpoint.config != self.config.to_value() {
            return Err(corrupt(
                "checkpoint was taken under a different configuration".into(),
            ));
        }
        source.restart()?;
        if checkpoint.source != source.name() {
            return Err(corrupt(format!(
                "checkpoint is for source `{}`, not `{}`",
                checkpoint.source,
                source.name()
            )));
        }
        let (mut state, ensemble, source_name) = self.bootstrap(source)?;
        if state.records != checkpoint.prefix {
            return Err(corrupt(format!(
                "source prefix is {} records, checkpoint recorded {}",
                state.records, checkpoint.prefix
            )));
        }
        if state.selection.k() != checkpoint.selected_k {
            return Err(corrupt(format!(
                "re-derived prefix selects K={}, checkpoint recorded K={}",
                state.selection.k(),
                checkpoint.selected_k
            )));
        }
        let snapshot: Selection = serde_json::from_value(checkpoint.selection.clone())
            .map_err(|e| corrupt(format!("checkpoint selection does not parse: {e}")))?;
        if snapshot.representative_ids() != state.selection.representative_ids() {
            return Err(corrupt(
                "checkpoint selection has different representatives than the \
                 re-derived prefix — wrong stream or corrupted checkpoint"
                    .into(),
            ));
        }

        // Adopt the snapshot wholesale: selection (carries the classified
        // tail counts), normalizer, centroids, drift, reservoir, counters.
        state.selection = snapshot;
        state.normalizer = StreamingNormalizer::from_stats(checkpoint.normalizer.clone());
        state.centroids = checkpoint.centroids.clone();
        state.centroid_counts = checkpoint.centroid_counts.clone();
        state.drift = checkpoint.drift.clone();
        state.reservoir_items = checkpoint.reservoir.items.clone();
        state.reservoir_seen = checkpoint.reservoir.seen;
        state.records = checkpoint.records;
        state.seq = checkpoint.seq;
        state.drifts = checkpoint.drifts;
        state.reclusters = checkpoint.reclusters;
        state.max_buffered = checkpoint.max_buffered;

        let to_skip = checkpoint.records - checkpoint.prefix;
        let skipped = source.skip(to_skip)?;
        if skipped != to_skip {
            return Err(corrupt(format!(
                "stream ended while skipping to record {} (skipped {skipped} of {to_skip})",
                checkpoint.records
            )));
        }
        if pka_obs::enabled() {
            pka_obs::counter("stream.resumes").incr();
            pka_obs::trace_event(
                "stream.resume",
                json!({
                    "seq": checkpoint.seq,
                    "records": checkpoint.records,
                    "source": checkpoint.source,
                }),
            );
        }
        self.drain_tail(source, &mut state, ensemble.as_ref(), &source_name, on_checkpoint, cancel)
    }

    /// Buffers the detailed prefix, runs batch PKS over it, trains the tail
    /// ensemble, and seeds the tail state (normalizer, centroids, drift).
    /// The prefix buffer is dropped before returning — from here on memory
    /// is bounded.
    fn bootstrap<S>(
        &self,
        source: &mut S,
    ) -> Result<(TailState, Option<Ensemble>, String), StreamError>
    where
        S: KernelSource + ?Sized,
    {
        let model = PrefixModel::bootstrap(&self.config, &self.exec, source)?;
        let PrefixModel {
            selection,
            provenance,
            normalizer,
            centroids,
            centroid_counts,
            records,
            ensemble,
            source_name,
        } = model;
        let k = selection.k();
        let state = TailState {
            checkpoint_write_ns: 0,
            selection,
            provenance,
            normalizer,
            centroids,
            centroid_counts,
            drift: vec![
                DriftTracker::new(
                    self.config.drift_calibration,
                    self.config.drift_sigma,
                    self.config.drift_alpha,
                );
                k
            ],
            reservoir_items: Vec::new(),
            reservoir_seen: 0,
            records,
            seq: 0,
            drifts: 0,
            reclusters: 0,
            checkpoints_emitted: 0,
            max_buffered: 0,
        };
        if pka_obs::enabled() {
            self.emit_live_snapshot(&state, "prefix");
        }
        Ok((state, ensemble, source_name))
    }

    /// Emits one `pka.snapshot/v1` record reflecting `state`. Every field
    /// of the record payload is deterministic; throughput and cumulative
    /// checkpoint write time ride in the sink's volatile `timing` object.
    fn emit_live_snapshot(&self, state: &TailState, phase: &str) {
        let record = pka_obs::SnapshotRecord {
            phase: phase.to_string(),
            records: state.records,
            selected_k: state.selection.k() as i64,
            group_counts: state.selection.groups().iter().map(|g| g.count()).collect(),
            reservoir_len: state.reservoir_items.len() as u64,
            reservoir_cap: self.config.reservoir as u64,
            drifts: state.drifts,
            reclusters: state.reclusters,
            checkpoints: state.checkpoints_emitted,
            max_buffered: state.max_buffered,
            shards: Vec::new(),
        };
        pka_obs::emit_snapshot(
            &record,
            json!({ "checkpoint_write_ns": state.checkpoint_write_ns }),
        );
    }

    /// Streams the tail in bounded batches until end of stream (or until
    /// `cancel` fires at a batch boundary — see
    /// [`run_with_cancel`](Self::run_with_cancel)).
    fn drain_tail<S, F>(
        &self,
        source: &mut S,
        state: &mut TailState,
        ensemble: Option<&Ensemble>,
        source_name: &str,
        mut on_checkpoint: F,
        cancel: &CancelToken,
    ) -> Result<StreamOutcome, StreamError>
    where
        S: KernelSource + ?Sized,
        F: FnMut(&Checkpoint) -> Result<(), StreamError>,
    {
        let _span = pka_obs::span("stream.tail");
        // Snapshot cadence, read once: 0 keeps the per-record cost of live
        // snapshots at a single integer compare.
        let snap_every = if pka_obs::enabled() { pka_obs::snapshot_every() } else { 0 };
        let obs = pka_obs::enabled();
        match ensemble {
            None => {
                // The prefix consumed the whole stream, so no tail ensemble
                // was trained; a further record violates the source's
                // end-of-stream report.
                if source.next_record(false)?.is_some() {
                    return Err(StreamError::Pipeline {
                        message: "source yielded tail records after reporting end of stream"
                            .into(),
                    });
                }
            }
            Some(ensemble) => {
                // One persistent worker pool for the whole tail: a per-batch
                // fan-out would respawn its threads for every mini-batch
                // (~100 µs each), which swamped the classification work and
                // made `with_executor(Executor::new(4))` slower than
                // sequential. The pool's chunk grid is fixed at the maximum
                // batch size; each round clips its range to the records
                // actually buffered, so the final partial batch reuses the
                // same grid (trailing chunks are empty) and per-record
                // results still splice in stream order — the fold below is
                // identical for any worker count.
                let batch_cell: std::sync::RwLock<Vec<LightweightRecord>> =
                    std::sync::RwLock::new(Vec::with_capacity(self.config.batch));
                self.exec.rounds(
                    self.config.batch,
                    TAIL_CHUNK,
                    |_, range| {
                        let batch = batch_cell.read().expect("tail batch lock");
                        let lo = range.start.min(batch.len());
                        let hi = range.end.min(batch.len());
                        let mut out = Vec::with_capacity(hi - lo);
                        for record in &batch[lo..hi] {
                            let features = record.to_feature_vector();
                            match ensemble.predict(&features) {
                                Ok(label) => out.push((label, features)),
                                Err(e) => return Err(e),
                            }
                        }
                        Ok(out)
                    },
                    |run| -> Result<(), StreamError> {
                        loop {
                            // Cancellation point: between batches, so every
                            // folded record is in the teardown checkpoint
                            // and no half-classified batch is observable.
                            if cancel.is_cancelled() {
                                let checkpoint = self.snapshot(state, source_name, true);
                                on_checkpoint(&checkpoint)?;
                                if obs {
                                    pka_obs::counter("stream.cancels").incr();
                                    pka_obs::trace_event(
                                        "stream.cancel",
                                        json!({
                                            "seq": checkpoint.seq,
                                            "records": checkpoint.records
                                        }),
                                    );
                                }
                                return Err(StreamError::Cancelled);
                            }
                            // Refill between rounds: rounds never overlap
                            // `body` code, so the write lock is uncontended.
                            let filled = {
                                let mut batch = batch_cell.write().expect("tail batch lock");
                                batch.clear();
                                while batch.len() < self.config.batch {
                                    match source.next_record(false)? {
                                        Some(record) => batch.push(record.lightweight),
                                        None => break,
                                    }
                                }
                                batch.len()
                            };
                            if filled == 0 {
                                return Ok(());
                            }
                            let buffered = filled as u64 + state.reservoir_items.len() as u64;
                            state.max_buffered = state.max_buffered.max(buffered);

                            // Chunk results come back in chunk order; an
                            // error from the smallest-indexed chunk wins and
                            // nothing is folded — the same `Result` a
                            // sequential run would produce.
                            let mut classified = Vec::with_capacity(filled);
                            for chunk in run() {
                                classified.extend(chunk?);
                            }

                            // Strictly in-order fold: counts, normalizer,
                            // centroids, drift, reservoir, checkpoints.
                            for (label, features) in classified {
                                self.fold_record(state, label, features)?;
                                if state.records % self.config.checkpoint_every == 0 {
                                    let checkpoint = self.snapshot(state, source_name, true);
                                    let t0 = obs.then(std::time::Instant::now);
                                    on_checkpoint(&checkpoint)?;
                                    if let Some(t0) = t0 {
                                        let ns = u64::try_from(t0.elapsed().as_nanos())
                                            .unwrap_or(u64::MAX);
                                        state.checkpoint_write_ns =
                                            state.checkpoint_write_ns.saturating_add(ns);
                                        pka_obs::histogram(
                                            "stream.checkpoint_write_ns",
                                            CHECKPOINT_WRITE_EDGES,
                                        )
                                        .record(ns);
                                        // Deterministic fields only: the
                                        // write duration stays out of the
                                        // event so traces canonicalize
                                        // byte-identically across runs.
                                        pka_obs::trace_event(
                                            "stream.checkpoint",
                                            json!({
                                                "seq": checkpoint.seq,
                                                "records": checkpoint.records
                                            }),
                                        );
                                    }
                                }
                                if snap_every != 0 && state.records % snap_every == 0 {
                                    self.emit_live_snapshot(state, "tail");
                                }
                            }
                            if pka_obs::enabled() {
                                pka_obs::counter("stream.records").add(filled as u64);
                                pka_obs::gauge("stream.max_buffered")
                                    .set(state.max_buffered as i64);
                            }
                        }
                    },
                )?;
            }
        }

        if obs {
            pka_obs::counter("stream.checkpoints").add(state.checkpoints_emitted);
            pka_obs::counter("stream.drifts").add(state.drifts);
            pka_obs::counter("stream.reclusters").add(state.reclusters);
            // End-of-stream snapshot, so even short tails leave at least
            // one `phase: "tail"` record in the snapshot file.
            if snap_every != 0 {
                self.emit_live_snapshot(state, "tail");
            }
        }
        let final_checkpoint = self.snapshot(state, source_name, false);
        let report = StreamReport {
            records: state.records,
            prefix: self.config.prefix.min(state.records),
            selected_k: state.selection.k(),
            projected_cycles: state.selection.projected_cycles(),
            group_counts: state.selection.groups().iter().map(|g| g.count()).collect(),
            drifts: state.drifts,
            reclusters: state.reclusters,
            checkpoints: state.checkpoints_emitted,
            max_buffered: state.max_buffered,
        };
        // Attribution over the final selection: tail classification only
        // bumps member counts, so every error term still measures the
        // profiled prefix — the same decomposition the batch two-level
        // pipeline would report for this stream.
        let attribution =
            selection_attribution(source_name, &state.selection, &state.provenance);
        Ok(StreamOutcome {
            report,
            selection: state.selection.clone(),
            final_checkpoint,
            attribution,
        })
    }

    /// Folds one classified tail record into the online state.
    fn fold_record(
        &self,
        state: &mut TailState,
        label: usize,
        mut features: Vec<f64>,
    ) -> Result<(), StreamError> {
        let t = state.records; // absolute 0-based position of this record
        state.selection.add_classified_member(label);
        state.normalizer.observe(&features);
        state.normalizer.normalize(&mut features);

        // Distance to the group's centroid *before* this record moves it.
        let distance = state.centroids[label]
            .iter()
            .zip(&features)
            .map(|(c, x)| (x - c) * (x - c))
            .sum::<f64>()
            .sqrt();

        // Sculley mini-batch update: the centroid drifts toward the new
        // member with a per-centroid learning rate of 1/count.
        state.centroid_counts[label] += 1;
        let n = state.centroid_counts[label] as f64;
        for (c, x) in state.centroids[label].iter_mut().zip(&features) {
            *c += (x - *c) / n;
        }

        // Reservoir (Algorithm R with a stateless per-record RNG: resume
        // needs no generator state, only `seen`).
        state.reservoir_seen += 1;
        if state.reservoir_items.len() < self.config.reservoir {
            state.reservoir_items.push(ReservoirItem {
                pos: t,
                label,
                features: features.clone(),
            });
        } else {
            let slot = UnitStream::new(mix64(self.config.seed ^ t))
                .next_index(state.reservoir_seen as usize);
            if slot < self.config.reservoir {
                state.reservoir_items[slot] = ReservoirItem {
                    pos: t,
                    label,
                    features: features.clone(),
                };
            }
        }

        if state.drift[label].observe(distance) == Drift::Fired {
            state.drifts += 1;
            // Drift firings are rare (EWMA-gated), so a per-firing gate +
            // event costs nothing on the per-record path. The fold runs
            // strictly in record order on one thread, so these events land
            // in the trace deterministically.
            if pka_obs::enabled() {
                pka_obs::trace_event(
                    "stream.drift",
                    json!({ "group": label, "record": t, "drifts": state.drifts }),
                );
            }
            self.recluster(state);
        }
        state.records += 1;
        Ok(())
    }

    /// Bounded re-cluster: a few Lloyd iterations over the reservoir only,
    /// initialised at the current centroids. Re-centres the drift
    /// envelopes' reference points without touching classification — group
    /// membership stays the ensemble's call, so batch parity is preserved.
    fn recluster(&self, state: &mut TailState) {
        let k = state.centroids.len();
        if k == 0 || state.reservoir_items.is_empty() {
            return;
        }
        crate::merge::lloyd_iterations(
            &mut state.centroids,
            &state.reservoir_items,
            self.config.recluster_iters,
        );
        // Moved centroids invalidate every frozen envelope; learning rates
        // restart from the reservoir populations.
        for tracker in &mut state.drift {
            tracker.reset();
        }
        let mut counts = vec![0u64; k];
        for item in &state.reservoir_items {
            if item.label < k {
                counts[item.label] += 1;
            }
        }
        for (cc, c) in state.centroid_counts.iter_mut().zip(counts) {
            *cc = c.max(1);
        }
        state.reclusters += 1;
        if pka_obs::enabled() {
            pka_obs::trace_event(
                "stream.recluster",
                json!({
                    "reclusters": state.reclusters,
                    "record": state.records,
                    "reservoir": state.reservoir_items.len() as u64,
                    "iters": self.config.recluster_iters as u64,
                }),
            );
        }
    }

    /// Builds a checkpoint of the current state. `periodic` bumps the
    /// emission counters (the final snapshot returned in the outcome gets
    /// the next sequence number but is not counted as emitted).
    fn snapshot(&self, state: &mut TailState, source_name: &str, periodic: bool) -> Checkpoint {
        state.seq += 1;
        if periodic {
            state.checkpoints_emitted += 1;
        }
        Checkpoint {
            seq: state.seq,
            records: state.records,
            prefix: self.config.prefix.min(state.records),
            source: source_name.to_string(),
            selected_k: state.selection.k(),
            selection: serde_json::to_value(&state.selection)
                .expect("selection serialises to json"),
            projected_cycles: state.selection.projected_cycles(),
            normalizer: state.normalizer.stats(),
            centroids: state.centroids.clone(),
            centroid_counts: state.centroid_counts.clone(),
            drift: state.drift.clone(),
            reservoir: ReservoirState {
                cap: self.config.reservoir,
                seen: state.reservoir_seen,
                items: state.reservoir_items.clone(),
            },
            drifts: state.drifts,
            reclusters: state.reclusters,
            max_buffered: state.max_buffered,
            config: self.config.to_value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{synthetic_workload, WorkloadSource};
    use pka_gpu::GpuConfig;
    use pka_profile::Profiler;

    fn source(n: u64) -> WorkloadSource {
        WorkloadSource::new(synthetic_workload(n), Profiler::new(GpuConfig::v100()))
    }

    fn small_config() -> StreamConfig {
        StreamConfig::default()
            .with_prefix(200)
            .with_batch(64)
            .with_reservoir(128)
            .with_checkpoint_every(500)
    }

    #[test]
    fn processes_whole_stream_and_counts_everything() {
        let mut src = source(2_000);
        let outcome = StreamPks::new(small_config())
            .run(&mut src, |_| Ok(()))
            .unwrap();
        assert_eq!(outcome.report.records, 2_000);
        assert_eq!(outcome.report.prefix, 200);
        assert_eq!(
            outcome.report.group_counts.iter().sum::<u64>(),
            2_000,
            "every kernel lands in a group"
        );
        assert_eq!(outcome.report.checkpoints, 4, "at 500/1000/1500/2000");
        assert!(outcome.report.selected_k >= 1);
        assert_eq!(
            outcome.final_checkpoint.projected_cycles,
            outcome.selection.projected_cycles()
        );
    }

    #[test]
    fn bounded_memory_high_water_mark() {
        let mut src = source(3_000);
        let config = small_config();
        let outcome = StreamPks::new(config).run(&mut src, |_| Ok(())).unwrap();
        assert!(
            outcome.report.max_buffered <= (config.reservoir() + config.batch()) as u64,
            "max_buffered {} exceeds reservoir {} + batch {}",
            outcome.report.max_buffered,
            config.reservoir(),
            config.batch()
        );
    }

    #[test]
    fn worker_count_does_not_change_the_final_checkpoint() {
        let run = |workers: usize| {
            let mut src = source(1_500);
            StreamPks::new(small_config())
                .with_executor(Executor::new(workers))
                .run(&mut src, |_| Ok(()))
                .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.report, b.report);
        assert_eq!(
            a.final_checkpoint.to_json(),
            b.final_checkpoint.to_json(),
            "final checkpoints must be byte-identical across worker counts"
        );
        assert_eq!(
            serde_json::to_string(&a.attribution).unwrap(),
            serde_json::to_string(&b.attribution).unwrap(),
            "attribution artifacts must be byte-identical across worker counts"
        );
    }

    #[test]
    fn attribution_sums_to_selection_error() {
        let mut src = source(2_000);
        let outcome = StreamPks::new(small_config())
            .run(&mut src, |_| Ok(()))
            .unwrap();
        let attribution = &outcome.attribution;
        attribution.verify_sums().expect("per-group terms sum to the reported error");
        assert_eq!(attribution.kind, "selection");
        assert_eq!(attribution.workload, "workload:synthetic2000");
        assert_eq!(attribution.groups.len(), outcome.selection.k());
        assert!(attribution.shards.is_empty(), "single pipeline has no shard sections");
        assert_eq!(
            (attribution.pks_err_pct * 1e9).round(),
            (outcome.selection.error_pct() * 1e9).round()
        );
        // Weights cover the whole stream; profiled counts only the prefix.
        let weights: u64 = attribution.groups.iter().map(|g| g.weight).sum();
        let profiled: u64 = attribution.groups.iter().map(|g| g.profiled_count).sum();
        assert_eq!(weights, 2_000);
        assert_eq!(profiled, 200);
    }

    #[test]
    fn stream_ending_inside_prefix_still_selects() {
        let mut src = source(150);
        let outcome = StreamPks::new(small_config())
            .run(&mut src, |_| Ok(()))
            .unwrap();
        assert_eq!(outcome.report.records, 150);
        assert_eq!(outcome.report.checkpoints, 0);
        assert_eq!(outcome.report.max_buffered, 0, "no tail was buffered");
    }

    #[test]
    fn checkpoint_callback_error_aborts() {
        let mut src = source(2_000);
        let result = StreamPks::new(small_config()).run(&mut src, |_| {
            Err(StreamError::Checkpoint {
                message: "sink full".into(),
            })
        });
        assert!(matches!(result, Err(StreamError::Checkpoint { .. })));
    }

    #[test]
    fn resume_rejects_wrong_config() {
        let mut src = source(1_200);
        let outcome = StreamPks::new(small_config())
            .run(&mut src, |_| Ok(()))
            .unwrap();
        let other = StreamPks::new(small_config().with_batch(32));
        let err = other
            .resume(&mut src, &outcome.final_checkpoint, |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, StreamError::Checkpoint { .. }), "{err:?}");
    }

    /// Cancelling mid-tail stops within one batch of the request, delivers
    /// a teardown checkpoint covering exactly the records folded so far,
    /// and that checkpoint resumes to the same selection as an
    /// uninterrupted run.
    #[test]
    fn cancel_mid_tail_leaves_resumable_checkpoint() {
        let full = {
            let mut src = source(3_000);
            StreamPks::new(small_config()).run(&mut src, |_| Ok(())).unwrap()
        };

        let mut src = source(3_000);
        let cancel = CancelToken::new();
        let mut teardown: Option<Checkpoint> = None;
        let result = StreamPks::new(small_config()).run_with_cancel(
            &mut src,
            |cp| {
                // Fire after the first delivered checkpoint: the next batch
                // boundary must stop the run.
                cancel.cancel();
                teardown = Some(cp.clone());
                Ok(())
            },
            &cancel,
        );
        assert_eq!(result.unwrap_err(), StreamError::Cancelled);
        let teardown = teardown.expect("teardown checkpoint was delivered");
        assert!(
            teardown.records < 3_000,
            "cancelled mid-stream, got {} records",
            teardown.records
        );
        // Within one batch of the cancellation point (the checkpoint at 500
        // records triggered it; the batch is 64).
        assert!(
            teardown.records <= 500 + 64,
            "stopped {} records past the cancel point",
            teardown.records
        );

        let mut src = source(3_000);
        let resumed = StreamPks::new(small_config())
            .resume(&mut src, &teardown, |_| Ok(()))
            .unwrap();
        assert_eq!(resumed.report.records, 3_000);
        assert_eq!(resumed.report.selected_k, full.report.selected_k);
        assert_eq!(
            resumed.report.projected_cycles,
            full.report.projected_cycles
        );
        assert_eq!(
            resumed.selection.representative_ids(),
            full.selection.representative_ids()
        );
    }

    /// A token cancelled before the run starts still bootstraps the prefix
    /// (it is bounded) and stops at the first tail batch boundary.
    #[test]
    fn pre_cancelled_run_stops_at_first_boundary() {
        let mut src = source(2_000);
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut checkpoints = 0u32;
        let mut at_records = 0u64;
        let result = StreamPks::new(small_config()).run_with_cancel(
            &mut src,
            |cp| {
                checkpoints += 1;
                at_records = cp.records;
                Ok(())
            },
            &cancel,
        );
        assert_eq!(result.unwrap_err(), StreamError::Cancelled);
        assert_eq!(checkpoints, 1, "exactly the teardown checkpoint");
        assert_eq!(at_records, 200, "stopped right after the prefix");
    }
}
