//! Cooperative cancellation for long-running streaming pipelines.
//!
//! A [`CancelToken`] is a cloneable flag shared between the thread driving
//! a [`StreamPks`](crate::StreamPks) / [`ShardedStreamPks`](crate::ShardedStreamPks)
//! run and whoever wants to stop it (the `pka-server` session teardown
//! path). The pipelines poll it at **batch boundaries only** — after a
//! mini-batch has been classified and folded, before the next refill — so
//! cancellation never observes a half-folded batch and the
//! checkpoint-on-cancel snapshot is always taken at a consistent record
//! count. Cancelling costs one relaxed atomic store; polling costs one
//! relaxed load per batch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag, checked by the streaming pipelines at batch
/// boundaries.
///
/// Cloning shares the flag: any clone can cancel, every clone observes it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
