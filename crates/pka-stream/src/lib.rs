//! Bounded-memory streaming ingestion and **online Principal Kernel
//! Selection** for million-kernel workloads.
//!
//! The paper's whole reason for two-level profiling is that MLPerf-scale
//! applications emit *millions* of kernel launches — too many to hold,
//! profile, or re-cluster in batch. The batch pipeline in `pka-core` still
//! materialises the full record list before `Pks::select` runs; this crate
//! is the streaming counterpart, shaped after Pac-Sim's live-decision
//! design: sampling decisions are made *as records arrive*, in
//! `O(K·d + reservoir)` memory, independent of stream length.
//!
//! The subsystem is three layers:
//!
//! * [`KernelSource`] — a pull-based record stream with adapters for
//!   in-memory [`pka_profile`] records ([`RecordsSource`]), lazily
//!   materialised [`pka_workloads`] generators ([`WorkloadSource`], which
//!   also backs the `synthetic:N` million-kernel streams via
//!   [`synthetic_workload`]), and a JSONL file/stdin reader
//!   ([`JsonlSource`]).
//! * online state — streaming feature normalisation (Welford accumulators
//!   from `pka_stats::online`, one per lightweight feature), mini-batch
//!   K-Means centroids seeded from the detailed prefix, per-group drift
//!   envelopes ([`DriftTracker`]) and a stateless-RNG reservoir sample.
//! * [`StreamPks`] — the online pipeline itself: detailed prefix → batch
//!   PKS + classifier ensemble (exactly the paper's two-level split, so the
//!   selected K matches the batch pipeline bit-for-bit), then live tail
//!   classification with periodic resumable checkpoints
//!   ([`Checkpoint`], schema `pka.stream_checkpoint/v1`).
//!
//! # Examples
//!
//! ```
//! use pka_gpu::GpuConfig;
//! use pka_profile::Profiler;
//! use pka_stream::{StreamConfig, StreamPks, WorkloadSource, synthetic_workload};
//!
//! let workload = synthetic_workload(5_000);
//! let mut source = WorkloadSource::new(workload, Profiler::new(GpuConfig::v100()));
//! let stream = StreamPks::new(StreamConfig::default().with_prefix(500));
//! let outcome = stream.run(&mut source, |_checkpoint| Ok(()))?;
//! assert_eq!(outcome.report.records, 5_000);
//! assert!(outcome.report.selected_k >= 1);
//! # Ok::<(), pka_stream::StreamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod checkpoint;
mod drift;
mod error;
mod merge;
mod normalize;
mod pipeline;
mod ring;
mod shard;
mod source;

pub use cancel::CancelToken;
pub use checkpoint::{
    Checkpoint, MergedSection, ReservoirItem, ReservoirState, ShardSection, ShardedCheckpoint,
    CHECKPOINT_SCHEMA,
};
pub use drift::{Drift, DriftTracker};
pub use error::StreamError;
pub use normalize::StreamingNormalizer;
pub use pipeline::{StreamConfig, StreamOutcome, StreamPks, StreamReport};
pub use ring::{HashRing, VIRTUAL_NODES};
pub use shard::{ShardedOutcome, ShardedStreamPks};
pub use source::{
    synthetic_workload, FeedHandle, FeedSource, JsonlSource, KernelSource, RecordsSource,
    SourceRecord, WorkloadSource,
};
