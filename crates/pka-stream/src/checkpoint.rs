use pka_stats::OnlineStats;
use serde_json::{Map, Value};

use crate::drift::DriftTracker;
use crate::StreamError;

/// Schema identifier stamped into every checkpoint.
pub const CHECKPOINT_SCHEMA: &str = "pka.stream_checkpoint/v1";

/// One item held in the reservoir sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirItem {
    /// Stream position (0-based record index) the item was drawn at.
    pub pos: u64,
    /// Group the record was classified into when it was drawn.
    pub label: usize,
    /// Normalised feature vector at draw time.
    pub features: Vec<f64>,
}

/// Serialised reservoir state.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirState {
    /// Maximum number of items retained.
    pub cap: usize,
    /// Tail records offered to the reservoir so far.
    pub seen: u64,
    /// Retained items, in slot order.
    pub items: Vec<ReservoirItem>,
}

/// A resumable snapshot of the online pipeline (`pka.stream_checkpoint/v1`).
///
/// Everything the tail pass accumulates is here; the detailed prefix is
/// *not* — resume re-derives it deterministically from the (restartable)
/// source, which keeps checkpoints `O(K·d + reservoir)` like the pipeline
/// itself. Every `f64` is serialised as its IEEE-754 bit pattern (a JSON
/// integer) alongside any human-readable copy, so checkpoint → resume →
/// checkpoint reproduces files byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Monotonic checkpoint counter within the run (first emitted is 1).
    pub seq: u64,
    /// Records consumed when the snapshot was taken (prefix + tail).
    pub records: u64,
    /// Detailed-prefix length *j* the run was started with.
    pub prefix: u64,
    /// `KernelSource::name()` of the stream being processed.
    pub source: String,
    /// Group count selected by batch PKS over the prefix.
    pub selected_k: usize,
    /// The full `pka_core` selection (groups, labels, reference cycles,
    /// classified tail counts), serialised via serde.
    pub selection: Value,
    /// Projected total cycles for the whole stream so far.
    pub projected_cycles: u64,
    /// Per-feature Welford accumulators of the streaming normalizer.
    pub normalizer: Vec<OnlineStats>,
    /// Mini-batch K-Means centroids in normalised feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Per-centroid assignment counts (the mini-batch learning rates).
    pub centroid_counts: Vec<u64>,
    /// Per-group drift trackers.
    pub drift: Vec<DriftTracker>,
    /// Reservoir sample used for bounded re-clustering.
    pub reservoir: ReservoirState,
    /// Drift firings so far.
    pub drifts: u64,
    /// Bounded re-cluster passes so far.
    pub reclusters: u64,
    /// High-water mark of simultaneously buffered *tail* records — the
    /// bounded-memory witness (must stay ≤ reservoir cap + batch size; the
    /// detailed prefix is the only larger buffer and is freed before the
    /// tail starts).
    pub max_buffered: u64,
    /// Echo of the `StreamConfig` the run was started with.
    pub config: Value,
}

pub(crate) fn bits(x: f64) -> Value {
    Value::from(x.to_bits())
}

pub(crate) fn stats_to_value(s: &OnlineStats) -> Value {
    let mut m = Map::new();
    m.insert("count".into(), Value::from(s.count()));
    m.insert("mean_bits".into(), bits(s.mean()));
    m.insert("m2_bits".into(), bits(s.m2()));
    m.insert("min_bits".into(), bits(s.min()));
    m.insert("max_bits".into(), bits(s.max()));
    Value::Object(m)
}

pub(crate) fn drift_to_value(t: &DriftTracker) -> Value {
    let (calibration, sigma, alpha, baseline, threshold, ewma) = t.raw_state();
    let mut m = Map::new();
    m.insert("calibration".into(), Value::from(calibration));
    m.insert("sigma_bits".into(), bits(sigma));
    m.insert("alpha_bits".into(), bits(alpha));
    m.insert("baseline".into(), stats_to_value(baseline));
    m.insert(
        "threshold_bits".into(),
        threshold.map_or(Value::Null, bits),
    );
    m.insert("ewma_bits".into(), bits(ewma));
    Value::Object(m)
}

/// Field-access helpers that turn a missing/mistyped field into a
/// [`StreamError::Checkpoint`] naming the JSON path.
pub(crate) struct Reader<'a> {
    obj: &'a Map,
    path: &'a str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(value: &'a Value, path: &'a str) -> Result<Self, StreamError> {
        match value {
            Value::Object(obj) => Ok(Self { obj, path }),
            _ => Err(corrupt(format!("`{path}` is not an object"))),
        }
    }

    pub(crate) fn field(&self, key: &str) -> Result<&'a Value, StreamError> {
        self.obj
            .get(key)
            .ok_or_else(|| corrupt(format!("missing `{}.{key}`", self.path)))
    }

    pub(crate) fn u64(&self, key: &str) -> Result<u64, StreamError> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| corrupt(format!("`{}.{key}` is not a u64", self.path)))
    }

    pub(crate) fn f64_bits(&self, key: &str) -> Result<f64, StreamError> {
        Ok(f64::from_bits(self.u64(key)?))
    }

    pub(crate) fn str(&self, key: &str) -> Result<&'a str, StreamError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| corrupt(format!("`{}.{key}` is not a string", self.path)))
    }

    pub(crate) fn array(&self, key: &str) -> Result<&'a [Value], StreamError> {
        match self.field(key)? {
            Value::Array(items) => Ok(items),
            _ => Err(corrupt(format!("`{}.{key}` is not an array", self.path))),
        }
    }
}

pub(crate) fn corrupt(message: String) -> StreamError {
    StreamError::Checkpoint { message }
}

pub(crate) fn stats_from_value(value: &Value, path: &str) -> Result<OnlineStats, StreamError> {
    let r = Reader::new(value, path)?;
    Ok(OnlineStats::from_raw(
        r.u64("count")?,
        r.f64_bits("mean_bits")?,
        r.f64_bits("m2_bits")?,
        r.f64_bits("min_bits")?,
        r.f64_bits("max_bits")?,
    ))
}

pub(crate) fn drift_from_value(value: &Value, path: &str) -> Result<DriftTracker, StreamError> {
    let r = Reader::new(value, path)?;
    let threshold = match r.field("threshold_bits")? {
        Value::Null => None,
        v => Some(f64::from_bits(v.as_u64().ok_or_else(|| {
            corrupt(format!("`{path}.threshold_bits` is not a u64"))
        })?)),
    };
    Ok(DriftTracker::from_raw(
        r.u64("calibration")?,
        r.f64_bits("sigma_bits")?,
        r.f64_bits("alpha_bits")?,
        stats_from_value(r.field("baseline")?, "drift.baseline")?,
        threshold,
        r.f64_bits("ewma_bits")?,
    ))
}

pub(crate) fn f64_vec_from_bits(value: &Value, path: &str) -> Result<Vec<f64>, StreamError> {
    let Value::Array(items) = value else {
        return Err(corrupt(format!("`{path}` is not an array")));
    };
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .map(f64::from_bits)
                .ok_or_else(|| corrupt(format!("`{path}` holds a non-u64 element")))
        })
        .collect()
}

impl Checkpoint {
    /// Serialises the checkpoint to its canonical JSON value. Key order is
    /// deterministic (object maps are B-trees), so the compact rendering
    /// of equal checkpoints is byte-identical.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(CHECKPOINT_SCHEMA));
        m.insert("seq".into(), Value::from(self.seq));
        m.insert("records".into(), Value::from(self.records));
        m.insert("prefix".into(), Value::from(self.prefix));
        m.insert("source".into(), Value::from(self.source.clone()));
        m.insert("selected_k".into(), Value::from(self.selected_k as u64));
        m.insert("selection".into(), self.selection.clone());
        m.insert("projected_cycles".into(), Value::from(self.projected_cycles));
        m.insert(
            "normalizer".into(),
            Value::Array(self.normalizer.iter().map(stats_to_value).collect()),
        );
        m.insert(
            "centroids".into(),
            Value::Array(
                self.centroids
                    .iter()
                    .map(|c| Value::Array(c.iter().map(|&x| bits(x)).collect()))
                    .collect(),
            ),
        );
        m.insert(
            "centroid_counts".into(),
            Value::Array(self.centroid_counts.iter().map(|&c| Value::from(c)).collect()),
        );
        m.insert(
            "drift".into(),
            Value::Array(self.drift.iter().map(drift_to_value).collect()),
        );
        let mut reservoir = Map::new();
        reservoir.insert("cap".into(), Value::from(self.reservoir.cap as u64));
        reservoir.insert("seen".into(), Value::from(self.reservoir.seen));
        reservoir.insert(
            "items".into(),
            Value::Array(
                self.reservoir
                    .items
                    .iter()
                    .map(|item| {
                        let mut im = Map::new();
                        im.insert("pos".into(), Value::from(item.pos));
                        im.insert("label".into(), Value::from(item.label as u64));
                        im.insert(
                            "features_bits".into(),
                            Value::Array(item.features.iter().map(|&x| bits(x)).collect()),
                        );
                        Value::Object(im)
                    })
                    .collect(),
            ),
        );
        m.insert("reservoir".into(), Value::Object(reservoir));
        m.insert("drifts".into(), Value::from(self.drifts));
        m.insert("reclusters".into(), Value::from(self.reclusters));
        m.insert("max_buffered".into(), Value::from(self.max_buffered));
        m.insert("config".into(), self.config.clone());
        Value::Object(m)
    }

    /// Canonical compact JSON rendering (one line, deterministic byte-wise).
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// Parses a checkpoint from its JSON value, validating the schema tag
    /// and internal consistency (per-group array lengths, feature
    /// dimensionality).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Checkpoint`] naming the offending field.
    pub fn from_value(value: &Value) -> Result<Self, StreamError> {
        let r = Reader::new(value, "checkpoint")?;
        let schema = r.str("schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(corrupt(format!(
                "schema mismatch: got `{schema}`, expected `{CHECKPOINT_SCHEMA}`"
            )));
        }
        let selected_k = r.u64("selected_k")? as usize;
        let normalizer = r
            .array("normalizer")?
            .iter()
            .map(|v| stats_from_value(v, "normalizer[]"))
            .collect::<Result<Vec<_>, _>>()?;
        let centroids = r
            .array("centroids")?
            .iter()
            .map(|v| f64_vec_from_bits(v, "centroids[]"))
            .collect::<Result<Vec<_>, _>>()?;
        let centroid_counts = r
            .array("centroid_counts")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| corrupt("`centroid_counts[]` is not a u64".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let drift = r
            .array("drift")?
            .iter()
            .map(|v| drift_from_value(v, "drift[]"))
            .collect::<Result<Vec<_>, _>>()?;
        if centroids.len() != selected_k
            || centroid_counts.len() != selected_k
            || drift.len() != selected_k
        {
            return Err(corrupt(format!(
                "per-group arrays disagree with selected_k={selected_k}: \
                 centroids={}, counts={}, drift={}",
                centroids.len(),
                centroid_counts.len(),
                drift.len()
            )));
        }
        let dims = normalizer.len();
        if centroids.iter().any(|c| c.len() != dims) {
            return Err(corrupt(format!(
                "centroid dimensionality disagrees with normalizer dims={dims}"
            )));
        }
        let rr = Reader::new(r.field("reservoir")?, "reservoir")?;
        let items = rr
            .array("items")?
            .iter()
            .map(|v| {
                let ir = Reader::new(v, "reservoir.items[]")?;
                let features = f64_vec_from_bits(
                    ir.field("features_bits")?,
                    "reservoir.items[].features_bits",
                )?;
                if features.len() != dims {
                    return Err(corrupt(format!(
                        "reservoir item dimensionality disagrees with dims={dims}"
                    )));
                }
                Ok(ReservoirItem {
                    pos: ir.u64("pos")?,
                    label: ir.u64("label")? as usize,
                    features,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let reservoir = ReservoirState {
            cap: rr.u64("cap")? as usize,
            seen: rr.u64("seen")?,
            items,
        };
        if reservoir.items.len() > reservoir.cap {
            return Err(corrupt(format!(
                "reservoir holds {} items over its cap {}",
                reservoir.items.len(),
                reservoir.cap
            )));
        }
        Ok(Self {
            seq: r.u64("seq")?,
            records: r.u64("records")?,
            prefix: r.u64("prefix")?,
            source: r.str("source")?.to_string(),
            selected_k,
            selection: r.field("selection")?.clone(),
            projected_cycles: r.u64("projected_cycles")?,
            normalizer,
            centroids,
            centroid_counts,
            drift,
            reservoir,
            drifts: r.u64("drifts")?,
            reclusters: r.u64("reclusters")?,
            max_buffered: r.u64("max_buffered")?,
            config: r.field("config")?.clone(),
        })
    }

    /// Parses a checkpoint from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Checkpoint`] for invalid JSON or an invalid
    /// checkpoint object.
    pub fn from_json(text: &str) -> Result<Self, StreamError> {
        let value: Value = serde_json::from_str(text.trim())
            .map_err(|e| corrupt(format!("invalid checkpoint json: {e}")))?;
        Self::from_value(&value)
    }

    /// Writes the canonical rendering (plus trailing newline) to `path`,
    /// atomically: a reader (or a crash) can observe the previous file or
    /// the new one, never a torn mix — see [`write_atomic`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), StreamError> {
        let mut text = self.to_json();
        text.push('\n');
        write_atomic(path, &text)?;
        Ok(())
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and parse errors.
    pub fn read_from(path: &std::path::Path) -> Result<Self, StreamError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

/// Writes `contents` through a unique temp file in `path`'s directory,
/// then renames it over `path`. The rename is atomic on POSIX, so a
/// checkpoint file on disk is always either the previous complete
/// checkpoint or the new complete one — a process killed mid-write (the
/// server's cancel-on-teardown path) can never leave a torn
/// `pka.stream_checkpoint/v1` behind, only an orphaned `.tmp` that the
/// next successful write of the same path does not disturb.
fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}.{n}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded topology
// ---------------------------------------------------------------------------

/// One shard's slice of a [`ShardedCheckpoint`]: the complete online state
/// the shard pipeline accumulated over the tail records routed to it.
/// Sections are always serialised in shard-id order. The shard's *owner
/// lane* (which executor slot runs it) is deliberately absent — ownership
/// is a runtime placement concern, so a live reshard that moves this state
/// to another lane leaves every checkpoint byte unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSection {
    /// Tail records folded by this shard.
    pub records: u64,
    /// Per-group classified tail counts (length = selected K). Summing
    /// these across shards reconstructs the merged selection's tail
    /// population exactly.
    pub tail_counts: Vec<u64>,
    /// Per-feature Welford accumulators of the shard's normalizer.
    pub normalizer: Vec<OnlineStats>,
    /// The shard's mini-batch centroids in its normalised feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Per-centroid assignment counts.
    pub centroid_counts: Vec<u64>,
    /// Per-group drift trackers.
    pub drift: Vec<DriftTracker>,
    /// The shard's reservoir sample.
    pub reservoir: ReservoirState,
    /// Drift firings on this shard.
    pub drifts: u64,
    /// Bounded re-cluster passes on this shard.
    pub reclusters: u64,
}

impl ShardSection {
    pub(crate) fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("records".into(), Value::from(self.records));
        m.insert(
            "tail_counts".into(),
            Value::Array(self.tail_counts.iter().map(|&c| Value::from(c)).collect()),
        );
        m.insert(
            "normalizer".into(),
            Value::Array(self.normalizer.iter().map(stats_to_value).collect()),
        );
        m.insert(
            "centroids".into(),
            Value::Array(
                self.centroids
                    .iter()
                    .map(|c| Value::Array(c.iter().map(|&x| bits(x)).collect()))
                    .collect(),
            ),
        );
        m.insert(
            "centroid_counts".into(),
            Value::Array(self.centroid_counts.iter().map(|&c| Value::from(c)).collect()),
        );
        m.insert(
            "drift".into(),
            Value::Array(self.drift.iter().map(drift_to_value).collect()),
        );
        m.insert("reservoir".into(), reservoir_to_value(&self.reservoir));
        m.insert("drifts".into(), Value::from(self.drifts));
        m.insert("reclusters".into(), Value::from(self.reclusters));
        Value::Object(m)
    }

    pub(crate) fn from_value(
        value: &Value,
        path: &str,
        selected_k: usize,
        dims: usize,
    ) -> Result<Self, StreamError> {
        let r = Reader::new(value, path)?;
        let u64_array = |key: &str| -> Result<Vec<u64>, StreamError> {
            r.array(key)?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| corrupt(format!("`{path}.{key}[]` is not a u64")))
                })
                .collect()
        };
        let tail_counts = u64_array("tail_counts")?;
        let centroid_counts = u64_array("centroid_counts")?;
        let normalizer = r
            .array("normalizer")?
            .iter()
            .map(|v| stats_from_value(v, "shard.normalizer[]"))
            .collect::<Result<Vec<_>, _>>()?;
        let centroids = r
            .array("centroids")?
            .iter()
            .map(|v| f64_vec_from_bits(v, "shard.centroids[]"))
            .collect::<Result<Vec<_>, _>>()?;
        let drift = r
            .array("drift")?
            .iter()
            .map(|v| drift_from_value(v, "shard.drift[]"))
            .collect::<Result<Vec<_>, _>>()?;
        if tail_counts.len() != selected_k
            || centroids.len() != selected_k
            || centroid_counts.len() != selected_k
            || drift.len() != selected_k
        {
            return Err(corrupt(format!(
                "`{path}` per-group arrays disagree with selected_k={selected_k}"
            )));
        }
        if normalizer.len() != dims || centroids.iter().any(|c| c.len() != dims) {
            return Err(corrupt(format!(
                "`{path}` dimensionality disagrees with dims={dims}"
            )));
        }
        let reservoir = reservoir_from_value(r.field("reservoir")?, path, dims)?;
        Ok(Self {
            records: r.u64("records")?,
            tail_counts,
            normalizer,
            centroids,
            centroid_counts,
            drift,
            reservoir,
            drifts: r.u64("drifts")?,
            reclusters: r.u64("reclusters")?,
        })
    }
}

pub(crate) fn reservoir_to_value(reservoir: &ReservoirState) -> Value {
    let mut m = Map::new();
    m.insert("cap".into(), Value::from(reservoir.cap as u64));
    m.insert("seen".into(), Value::from(reservoir.seen));
    m.insert(
        "items".into(),
        Value::Array(
            reservoir
                .items
                .iter()
                .map(|item| {
                    let mut im = Map::new();
                    im.insert("pos".into(), Value::from(item.pos));
                    im.insert("label".into(), Value::from(item.label as u64));
                    im.insert(
                        "features_bits".into(),
                        Value::Array(item.features.iter().map(|&x| bits(x)).collect()),
                    );
                    Value::Object(im)
                })
                .collect(),
        ),
    );
    Value::Object(m)
}

pub(crate) fn reservoir_from_value(
    value: &Value,
    path: &str,
    dims: usize,
) -> Result<ReservoirState, StreamError> {
    let rr = Reader::new(value, path)?;
    let items = rr
        .array("items")?
        .iter()
        .map(|v| {
            let ir = Reader::new(v, "reservoir.items[]")?;
            let features =
                f64_vec_from_bits(ir.field("features_bits")?, "reservoir.items[].features_bits")?;
            if features.len() != dims {
                return Err(corrupt(format!(
                    "`{path}` reservoir item dimensionality disagrees with dims={dims}"
                )));
            }
            Ok(ReservoirItem {
                pos: ir.u64("pos")?,
                label: ir.u64("label")? as usize,
                features,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let reservoir = ReservoirState {
        cap: rr.u64("cap")? as usize,
        seen: rr.u64("seen")?,
        items,
    };
    if reservoir.items.len() > reservoir.cap {
        return Err(corrupt(format!(
            "`{path}` reservoir holds {} items over its cap {}",
            reservoir.items.len(),
            reservoir.cap
        )));
    }
    Ok(reservoir)
}

/// The end-of-stream reconciliation of the shard states: a deterministic
/// weighted merge of the shard centroids/normalizers plus a bounded
/// re-cluster over the union reservoir. Present only in a run's *final*
/// checkpoint — periodic checkpoints carry the per-shard sections, which
/// are what resume restores.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedSection {
    /// Population-weighted merged centroids after the bounded re-cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Summed per-centroid populations (the merge weights).
    pub centroid_counts: Vec<u64>,
    /// Union reservoir (position-ordered, truncated to the global cap).
    pub reservoir: ReservoirState,
}

impl MergedSection {
    pub(crate) fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "centroids".into(),
            Value::Array(
                self.centroids
                    .iter()
                    .map(|c| Value::Array(c.iter().map(|&x| bits(x)).collect()))
                    .collect(),
            ),
        );
        m.insert(
            "centroid_counts".into(),
            Value::Array(self.centroid_counts.iter().map(|&c| Value::from(c)).collect()),
        );
        m.insert("reservoir".into(), reservoir_to_value(&self.reservoir));
        Value::Object(m)
    }

    pub(crate) fn from_value(value: &Value, dims: usize) -> Result<Self, StreamError> {
        let r = Reader::new(value, "merged")?;
        let centroids = r
            .array("centroids")?
            .iter()
            .map(|v| f64_vec_from_bits(v, "merged.centroids[]"))
            .collect::<Result<Vec<_>, _>>()?;
        let centroid_counts = r
            .array("centroid_counts")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| corrupt("`merged.centroid_counts[]` is not a u64".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let reservoir = reservoir_from_value(r.field("reservoir")?, "merged.reservoir", dims)?;
        Ok(Self {
            centroids,
            centroid_counts,
            reservoir,
        })
    }
}

/// A resumable snapshot of the *sharded* online pipeline — the
/// `pka.stream_checkpoint/v1` schema extended with a shard topology.
///
/// The document shares the base schema tag; readers tell the two layouts
/// apart by the `topology` object (a single-shard [`Checkpoint`] never has
/// one, a sharded checkpoint always does). Per-shard state rides in
/// `shards[]` in shard-id order, the merged selection (summed tail counts)
/// in `selection`, and the final checkpoint additionally carries the
/// reconciled [`MergedSection`]. Owner lanes are never serialised, so a
/// live reshard has zero byte impact on every checkpoint the run emits.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedCheckpoint {
    /// Monotonic checkpoint counter within the run (first emitted is 1).
    pub seq: u64,
    /// Records consumed when the snapshot was taken (prefix + tail).
    pub records: u64,
    /// Detailed-prefix length *j* the run was started with.
    pub prefix: u64,
    /// `KernelSource::name()` of the stream being processed.
    pub source: String,
    /// Group count selected by batch PKS over the prefix.
    pub selected_k: usize,
    /// The merged `pka_core` selection (prefix members + summed classified
    /// tail counts across shards), serialised via serde.
    pub selection: Value,
    /// Projected total cycles for the whole stream so far.
    pub projected_cycles: u64,
    /// Shard count the ring was built for.
    pub shards: usize,
    /// [`crate::HashRing::map_hash`] of the routing table.
    pub map_hash: u64,
    /// Per-shard state, in shard-id order.
    pub shard_sections: Vec<ShardSection>,
    /// End-of-stream reconciliation (final checkpoint only).
    pub merged: Option<MergedSection>,
    /// High-water mark of simultaneously buffered tail records across all
    /// shards (batch + every shard reservoir).
    pub max_buffered: u64,
    /// Echo of the `StreamConfig` the run was started with.
    pub config: Value,
}

impl ShardedCheckpoint {
    /// Serialises the checkpoint to its canonical JSON value (deterministic
    /// key order, floats as IEEE-754 bit patterns — byte-identical renders
    /// for equal checkpoints).
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(CHECKPOINT_SCHEMA));
        m.insert("seq".into(), Value::from(self.seq));
        m.insert("records".into(), Value::from(self.records));
        m.insert("prefix".into(), Value::from(self.prefix));
        m.insert("source".into(), Value::from(self.source.clone()));
        m.insert("selected_k".into(), Value::from(self.selected_k as u64));
        m.insert("selection".into(), self.selection.clone());
        m.insert("projected_cycles".into(), Value::from(self.projected_cycles));
        let mut topology = Map::new();
        topology.insert("shards".into(), Value::from(self.shards as u64));
        topology.insert("map_hash".into(), Value::from(self.map_hash));
        m.insert("topology".into(), Value::Object(topology));
        m.insert(
            "shards".into(),
            Value::Array(self.shard_sections.iter().map(ShardSection::to_value).collect()),
        );
        if let Some(merged) = &self.merged {
            m.insert("merged".into(), merged.to_value());
        }
        m.insert("max_buffered".into(), Value::from(self.max_buffered));
        m.insert("config".into(), self.config.clone());
        Value::Object(m)
    }

    /// Canonical compact JSON rendering (one line, deterministic byte-wise).
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// Parses a sharded checkpoint, validating the schema tag, the
    /// topology, and per-shard consistency.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Checkpoint`] naming the offending field.
    pub fn from_value(value: &Value) -> Result<Self, StreamError> {
        let r = Reader::new(value, "checkpoint")?;
        let schema = r.str("schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(corrupt(format!(
                "schema mismatch: got `{schema}`, expected `{CHECKPOINT_SCHEMA}`"
            )));
        }
        let topo = Reader::new(r.field("topology")?, "topology")?;
        let shards = topo.u64("shards")? as usize;
        let map_hash = topo.u64("map_hash")?;
        let selected_k = r.u64("selected_k")? as usize;
        let sections = r.array("shards")?;
        if sections.len() != shards {
            return Err(corrupt(format!(
                "topology declares {shards} shards but {} sections are present",
                sections.len()
            )));
        }
        // Dimensionality is anchored by the first shard's normalizer; every
        // other per-feature array must agree.
        let dims = sections
            .first()
            .map(|v| Reader::new(v, "shards[0]").and_then(|sr| Ok(sr.array("normalizer")?.len())))
            .transpose()?
            .unwrap_or(0);
        let shard_sections = sections
            .iter()
            .enumerate()
            .map(|(i, v)| ShardSection::from_value(v, &format!("shards[{i}]"), selected_k, dims))
            .collect::<Result<Vec<_>, _>>()?;
        let merged = match r.obj.get("merged") {
            None => None,
            Some(v) => Some(MergedSection::from_value(v, dims)?),
        };
        Ok(Self {
            seq: r.u64("seq")?,
            records: r.u64("records")?,
            prefix: r.u64("prefix")?,
            source: r.str("source")?.to_string(),
            selected_k,
            selection: r.field("selection")?.clone(),
            projected_cycles: r.u64("projected_cycles")?,
            shards,
            map_hash,
            shard_sections,
            merged,
            max_buffered: r.u64("max_buffered")?,
            config: r.field("config")?.clone(),
        })
    }

    /// Parses a sharded checkpoint from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Checkpoint`] for invalid JSON or an invalid
    /// checkpoint object.
    pub fn from_json(text: &str) -> Result<Self, StreamError> {
        let value: Value = serde_json::from_str(text.trim())
            .map_err(|e| corrupt(format!("invalid checkpoint json: {e}")))?;
        Self::from_value(&value)
    }

    /// Writes the canonical rendering (plus trailing newline) to `path`,
    /// atomically: a reader (or a crash) can observe the previous file or
    /// the new one, never a torn mix — see [`write_atomic`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), StreamError> {
        let mut text = self.to_json();
        text.push('\n');
        write_atomic(path, &text)?;
        Ok(())
    }

    /// Reads and parses a sharded checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and parse errors.
    pub fn read_from(path: &std::path::Path) -> Result<Self, StreamError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut stats = OnlineStats::new();
        stats.extend([0.25, 1.5, -3.0, 0.1]);
        let mut drift = DriftTracker::new(4, 3.0, 0.05);
        for d in [1.0, 1.1, 0.9, 1.05, 1.2, 0.95] {
            drift.observe(d);
        }
        Checkpoint {
            seq: 3,
            records: 12_000,
            prefix: 600,
            source: "workload:gramschmidt".to_string(),
            selected_k: 2,
            selection: serde_json::json!({"groups": [1, 2]}),
            projected_cycles: 1_234_567_890,
            normalizer: vec![stats, OnlineStats::new()],
            centroids: vec![vec![0.5, -1.25], vec![2.0, 0.0]],
            centroid_counts: vec![7, 5],
            drift: vec![drift.clone(), drift],
            reservoir: ReservoirState {
                cap: 4,
                seen: 11,
                items: vec![ReservoirItem {
                    pos: 601,
                    label: 1,
                    features: vec![0.125, -0.5],
                }],
            },
            drifts: 1,
            reclusters: 1,
            max_buffered: 600,
            config: serde_json::json!({"batch": 2048}),
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let cp = sample();
        let text = cp.to_json();
        let back = Checkpoint::from_json(&text).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_json(), text, "renders must be byte-identical");
    }

    #[test]
    fn schema_tag_is_enforced() {
        let mut v = sample().to_value();
        if let Value::Object(m) = &mut v {
            m.insert("schema".into(), Value::from("pka.stream_checkpoint/v0"));
        }
        match Checkpoint::from_value(&v) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("schema mismatch"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_group_arrays_are_rejected() {
        let mut cp = sample();
        cp.centroid_counts.push(9);
        match Checkpoint::from_value(&cp.to_value()) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("selected_k"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn missing_field_names_the_path() {
        let mut v = sample().to_value();
        if let Value::Object(m) = &mut v {
            m.remove("max_buffered");
        }
        match Checkpoint::from_value(&v) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("max_buffered"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    fn sharded_sample(merged: bool) -> ShardedCheckpoint {
        let base = sample();
        let section = ShardSection {
            records: 5_700,
            tail_counts: vec![4_000, 1_700],
            normalizer: base.normalizer.clone(),
            centroids: base.centroids.clone(),
            centroid_counts: base.centroid_counts.clone(),
            drift: base.drift.clone(),
            reservoir: base.reservoir.clone(),
            drifts: 1,
            reclusters: 1,
        };
        let mut other = section.clone();
        other.records = 5_700;
        other.tail_counts = vec![2_000, 3_700];
        ShardedCheckpoint {
            seq: 2,
            records: 12_000,
            prefix: 600,
            source: base.source.clone(),
            selected_k: 2,
            selection: base.selection.clone(),
            projected_cycles: 1_234_567_890,
            shards: 2,
            map_hash: 0xdead_beef_cafe_f00d,
            shard_sections: vec![section, other],
            merged: merged.then(|| MergedSection {
                centroids: base.centroids.clone(),
                centroid_counts: vec![12, 10],
                reservoir: base.reservoir.clone(),
            }),
            max_buffered: 1_200,
            config: base.config,
        }
    }

    #[test]
    fn sharded_roundtrip_is_byte_identical() {
        for merged in [false, true] {
            let cp = sharded_sample(merged);
            let text = cp.to_json();
            let back = ShardedCheckpoint::from_json(&text).unwrap();
            assert_eq!(back, cp);
            assert_eq!(back.to_json(), text, "renders must be byte-identical");
        }
    }

    #[test]
    fn sharded_topology_count_is_enforced() {
        let mut cp = sharded_sample(false);
        cp.shard_sections.pop();
        match ShardedCheckpoint::from_value(&cp.to_value()) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("topology declares"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn sharded_section_group_arrays_are_validated() {
        let mut cp = sharded_sample(false);
        cp.shard_sections[1].tail_counts.push(3);
        match ShardedCheckpoint::from_value(&cp.to_value()) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("shards[1]"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn plain_checkpoint_is_not_a_sharded_one() {
        match ShardedCheckpoint::from_value(&sample().to_value()) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("topology"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn sharded_file_roundtrip() {
        let dir = std::env::temp_dir().join("pka_stream_sharded_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let cp = sharded_sample(true);
        cp.write_to(&path).unwrap();
        let back = ShardedCheckpoint::read_from(&path).unwrap();
        assert_eq!(back, cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pka_stream_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let cp = sample();
        cp.write_to(&path).unwrap();
        let back = Checkpoint::read_from(&path).unwrap();
        assert_eq!(back, cp);
        std::fs::remove_file(&path).ok();
    }

    /// The kill-mid-write guarantee: with a writer rewriting the same
    /// checkpoint path as fast as it can, a concurrent reader must only
    /// ever observe complete, parseable checkpoints — the temp-file +
    /// rename path means there is no moment at which the file is truncated
    /// or half-written. (`fs::write` in place fails this immediately: the
    /// reader catches the truncate-then-write window.)
    #[test]
    fn concurrent_reads_never_observe_torn_checkpoints() {
        let dir = std::env::temp_dir().join(format!(
            "pka_stream_atomic_write_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        sample().write_to(&path).unwrap();

        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let path = path.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut cp = sample();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    cp.seq += 1;
                    cp.write_to(&path).unwrap();
                }
            })
        };
        for _ in 0..400 {
            let cp = Checkpoint::read_from(&path).expect("read mid-rewrite must parse");
            assert_eq!(cp.source, sample().source);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
