use pka_stats::OnlineStats;
use serde_json::{Map, Value};

use crate::drift::DriftTracker;
use crate::StreamError;

/// Schema identifier stamped into every checkpoint.
pub const CHECKPOINT_SCHEMA: &str = "pka.stream_checkpoint/v1";

/// One item held in the reservoir sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirItem {
    /// Stream position (0-based record index) the item was drawn at.
    pub pos: u64,
    /// Group the record was classified into when it was drawn.
    pub label: usize,
    /// Normalised feature vector at draw time.
    pub features: Vec<f64>,
}

/// Serialised reservoir state.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirState {
    /// Maximum number of items retained.
    pub cap: usize,
    /// Tail records offered to the reservoir so far.
    pub seen: u64,
    /// Retained items, in slot order.
    pub items: Vec<ReservoirItem>,
}

/// A resumable snapshot of the online pipeline (`pka.stream_checkpoint/v1`).
///
/// Everything the tail pass accumulates is here; the detailed prefix is
/// *not* — resume re-derives it deterministically from the (restartable)
/// source, which keeps checkpoints `O(K·d + reservoir)` like the pipeline
/// itself. Every `f64` is serialised as its IEEE-754 bit pattern (a JSON
/// integer) alongside any human-readable copy, so checkpoint → resume →
/// checkpoint reproduces files byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Monotonic checkpoint counter within the run (first emitted is 1).
    pub seq: u64,
    /// Records consumed when the snapshot was taken (prefix + tail).
    pub records: u64,
    /// Detailed-prefix length *j* the run was started with.
    pub prefix: u64,
    /// `KernelSource::name()` of the stream being processed.
    pub source: String,
    /// Group count selected by batch PKS over the prefix.
    pub selected_k: usize,
    /// The full `pka_core` selection (groups, labels, reference cycles,
    /// classified tail counts), serialised via serde.
    pub selection: Value,
    /// Projected total cycles for the whole stream so far.
    pub projected_cycles: u64,
    /// Per-feature Welford accumulators of the streaming normalizer.
    pub normalizer: Vec<OnlineStats>,
    /// Mini-batch K-Means centroids in normalised feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Per-centroid assignment counts (the mini-batch learning rates).
    pub centroid_counts: Vec<u64>,
    /// Per-group drift trackers.
    pub drift: Vec<DriftTracker>,
    /// Reservoir sample used for bounded re-clustering.
    pub reservoir: ReservoirState,
    /// Drift firings so far.
    pub drifts: u64,
    /// Bounded re-cluster passes so far.
    pub reclusters: u64,
    /// High-water mark of simultaneously buffered *tail* records — the
    /// bounded-memory witness (must stay ≤ reservoir cap + batch size; the
    /// detailed prefix is the only larger buffer and is freed before the
    /// tail starts).
    pub max_buffered: u64,
    /// Echo of the `StreamConfig` the run was started with.
    pub config: Value,
}

fn bits(x: f64) -> Value {
    Value::from(x.to_bits())
}

fn stats_to_value(s: &OnlineStats) -> Value {
    let mut m = Map::new();
    m.insert("count".into(), Value::from(s.count()));
    m.insert("mean_bits".into(), bits(s.mean()));
    m.insert("m2_bits".into(), bits(s.m2()));
    m.insert("min_bits".into(), bits(s.min()));
    m.insert("max_bits".into(), bits(s.max()));
    Value::Object(m)
}

fn drift_to_value(t: &DriftTracker) -> Value {
    let (calibration, sigma, alpha, baseline, threshold, ewma) = t.raw_state();
    let mut m = Map::new();
    m.insert("calibration".into(), Value::from(calibration));
    m.insert("sigma_bits".into(), bits(sigma));
    m.insert("alpha_bits".into(), bits(alpha));
    m.insert("baseline".into(), stats_to_value(baseline));
    m.insert(
        "threshold_bits".into(),
        threshold.map_or(Value::Null, bits),
    );
    m.insert("ewma_bits".into(), bits(ewma));
    Value::Object(m)
}

/// Field-access helpers that turn a missing/mistyped field into a
/// [`StreamError::Checkpoint`] naming the JSON path.
struct Reader<'a> {
    obj: &'a Map,
    path: &'a str,
}

impl<'a> Reader<'a> {
    fn new(value: &'a Value, path: &'a str) -> Result<Self, StreamError> {
        match value {
            Value::Object(obj) => Ok(Self { obj, path }),
            _ => Err(corrupt(format!("`{path}` is not an object"))),
        }
    }

    fn field(&self, key: &str) -> Result<&'a Value, StreamError> {
        self.obj
            .get(key)
            .ok_or_else(|| corrupt(format!("missing `{}.{key}`", self.path)))
    }

    fn u64(&self, key: &str) -> Result<u64, StreamError> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| corrupt(format!("`{}.{key}` is not a u64", self.path)))
    }

    fn f64_bits(&self, key: &str) -> Result<f64, StreamError> {
        Ok(f64::from_bits(self.u64(key)?))
    }

    fn str(&self, key: &str) -> Result<&'a str, StreamError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| corrupt(format!("`{}.{key}` is not a string", self.path)))
    }

    fn array(&self, key: &str) -> Result<&'a [Value], StreamError> {
        match self.field(key)? {
            Value::Array(items) => Ok(items),
            _ => Err(corrupt(format!("`{}.{key}` is not an array", self.path))),
        }
    }
}

fn corrupt(message: String) -> StreamError {
    StreamError::Checkpoint { message }
}

fn stats_from_value(value: &Value, path: &str) -> Result<OnlineStats, StreamError> {
    let r = Reader::new(value, path)?;
    Ok(OnlineStats::from_raw(
        r.u64("count")?,
        r.f64_bits("mean_bits")?,
        r.f64_bits("m2_bits")?,
        r.f64_bits("min_bits")?,
        r.f64_bits("max_bits")?,
    ))
}

fn drift_from_value(value: &Value, path: &str) -> Result<DriftTracker, StreamError> {
    let r = Reader::new(value, path)?;
    let threshold = match r.field("threshold_bits")? {
        Value::Null => None,
        v => Some(f64::from_bits(v.as_u64().ok_or_else(|| {
            corrupt(format!("`{path}.threshold_bits` is not a u64"))
        })?)),
    };
    Ok(DriftTracker::from_raw(
        r.u64("calibration")?,
        r.f64_bits("sigma_bits")?,
        r.f64_bits("alpha_bits")?,
        stats_from_value(r.field("baseline")?, "drift.baseline")?,
        threshold,
        r.f64_bits("ewma_bits")?,
    ))
}

fn f64_vec_from_bits(value: &Value, path: &str) -> Result<Vec<f64>, StreamError> {
    let Value::Array(items) = value else {
        return Err(corrupt(format!("`{path}` is not an array")));
    };
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .map(f64::from_bits)
                .ok_or_else(|| corrupt(format!("`{path}` holds a non-u64 element")))
        })
        .collect()
}

impl Checkpoint {
    /// Serialises the checkpoint to its canonical JSON value. Key order is
    /// deterministic (object maps are B-trees), so the compact rendering
    /// of equal checkpoints is byte-identical.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(CHECKPOINT_SCHEMA));
        m.insert("seq".into(), Value::from(self.seq));
        m.insert("records".into(), Value::from(self.records));
        m.insert("prefix".into(), Value::from(self.prefix));
        m.insert("source".into(), Value::from(self.source.clone()));
        m.insert("selected_k".into(), Value::from(self.selected_k as u64));
        m.insert("selection".into(), self.selection.clone());
        m.insert("projected_cycles".into(), Value::from(self.projected_cycles));
        m.insert(
            "normalizer".into(),
            Value::Array(self.normalizer.iter().map(stats_to_value).collect()),
        );
        m.insert(
            "centroids".into(),
            Value::Array(
                self.centroids
                    .iter()
                    .map(|c| Value::Array(c.iter().map(|&x| bits(x)).collect()))
                    .collect(),
            ),
        );
        m.insert(
            "centroid_counts".into(),
            Value::Array(self.centroid_counts.iter().map(|&c| Value::from(c)).collect()),
        );
        m.insert(
            "drift".into(),
            Value::Array(self.drift.iter().map(drift_to_value).collect()),
        );
        let mut reservoir = Map::new();
        reservoir.insert("cap".into(), Value::from(self.reservoir.cap as u64));
        reservoir.insert("seen".into(), Value::from(self.reservoir.seen));
        reservoir.insert(
            "items".into(),
            Value::Array(
                self.reservoir
                    .items
                    .iter()
                    .map(|item| {
                        let mut im = Map::new();
                        im.insert("pos".into(), Value::from(item.pos));
                        im.insert("label".into(), Value::from(item.label as u64));
                        im.insert(
                            "features_bits".into(),
                            Value::Array(item.features.iter().map(|&x| bits(x)).collect()),
                        );
                        Value::Object(im)
                    })
                    .collect(),
            ),
        );
        m.insert("reservoir".into(), Value::Object(reservoir));
        m.insert("drifts".into(), Value::from(self.drifts));
        m.insert("reclusters".into(), Value::from(self.reclusters));
        m.insert("max_buffered".into(), Value::from(self.max_buffered));
        m.insert("config".into(), self.config.clone());
        Value::Object(m)
    }

    /// Canonical compact JSON rendering (one line, deterministic byte-wise).
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// Parses a checkpoint from its JSON value, validating the schema tag
    /// and internal consistency (per-group array lengths, feature
    /// dimensionality).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Checkpoint`] naming the offending field.
    pub fn from_value(value: &Value) -> Result<Self, StreamError> {
        let r = Reader::new(value, "checkpoint")?;
        let schema = r.str("schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(corrupt(format!(
                "schema mismatch: got `{schema}`, expected `{CHECKPOINT_SCHEMA}`"
            )));
        }
        let selected_k = r.u64("selected_k")? as usize;
        let normalizer = r
            .array("normalizer")?
            .iter()
            .map(|v| stats_from_value(v, "normalizer[]"))
            .collect::<Result<Vec<_>, _>>()?;
        let centroids = r
            .array("centroids")?
            .iter()
            .map(|v| f64_vec_from_bits(v, "centroids[]"))
            .collect::<Result<Vec<_>, _>>()?;
        let centroid_counts = r
            .array("centroid_counts")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| corrupt("`centroid_counts[]` is not a u64".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let drift = r
            .array("drift")?
            .iter()
            .map(|v| drift_from_value(v, "drift[]"))
            .collect::<Result<Vec<_>, _>>()?;
        if centroids.len() != selected_k
            || centroid_counts.len() != selected_k
            || drift.len() != selected_k
        {
            return Err(corrupt(format!(
                "per-group arrays disagree with selected_k={selected_k}: \
                 centroids={}, counts={}, drift={}",
                centroids.len(),
                centroid_counts.len(),
                drift.len()
            )));
        }
        let dims = normalizer.len();
        if centroids.iter().any(|c| c.len() != dims) {
            return Err(corrupt(format!(
                "centroid dimensionality disagrees with normalizer dims={dims}"
            )));
        }
        let rr = Reader::new(r.field("reservoir")?, "reservoir")?;
        let items = rr
            .array("items")?
            .iter()
            .map(|v| {
                let ir = Reader::new(v, "reservoir.items[]")?;
                let features = f64_vec_from_bits(
                    ir.field("features_bits")?,
                    "reservoir.items[].features_bits",
                )?;
                if features.len() != dims {
                    return Err(corrupt(format!(
                        "reservoir item dimensionality disagrees with dims={dims}"
                    )));
                }
                Ok(ReservoirItem {
                    pos: ir.u64("pos")?,
                    label: ir.u64("label")? as usize,
                    features,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let reservoir = ReservoirState {
            cap: rr.u64("cap")? as usize,
            seen: rr.u64("seen")?,
            items,
        };
        if reservoir.items.len() > reservoir.cap {
            return Err(corrupt(format!(
                "reservoir holds {} items over its cap {}",
                reservoir.items.len(),
                reservoir.cap
            )));
        }
        Ok(Self {
            seq: r.u64("seq")?,
            records: r.u64("records")?,
            prefix: r.u64("prefix")?,
            source: r.str("source")?.to_string(),
            selected_k,
            selection: r.field("selection")?.clone(),
            projected_cycles: r.u64("projected_cycles")?,
            normalizer,
            centroids,
            centroid_counts,
            drift,
            reservoir,
            drifts: r.u64("drifts")?,
            reclusters: r.u64("reclusters")?,
            max_buffered: r.u64("max_buffered")?,
            config: r.field("config")?.clone(),
        })
    }

    /// Parses a checkpoint from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Checkpoint`] for invalid JSON or an invalid
    /// checkpoint object.
    pub fn from_json(text: &str) -> Result<Self, StreamError> {
        let value: Value = serde_json::from_str(text.trim())
            .map_err(|e| corrupt(format!("invalid checkpoint json: {e}")))?;
        Self::from_value(&value)
    }

    /// Writes the canonical rendering (plus trailing newline) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), StreamError> {
        let mut text = self.to_json();
        text.push('\n');
        std::fs::write(path, text)?;
        Ok(())
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and parse errors.
    pub fn read_from(path: &std::path::Path) -> Result<Self, StreamError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut stats = OnlineStats::new();
        stats.extend([0.25, 1.5, -3.0, 0.1]);
        let mut drift = DriftTracker::new(4, 3.0, 0.05);
        for d in [1.0, 1.1, 0.9, 1.05, 1.2, 0.95] {
            drift.observe(d);
        }
        Checkpoint {
            seq: 3,
            records: 12_000,
            prefix: 600,
            source: "workload:gramschmidt".to_string(),
            selected_k: 2,
            selection: serde_json::json!({"groups": [1, 2]}),
            projected_cycles: 1_234_567_890,
            normalizer: vec![stats, OnlineStats::new()],
            centroids: vec![vec![0.5, -1.25], vec![2.0, 0.0]],
            centroid_counts: vec![7, 5],
            drift: vec![drift.clone(), drift],
            reservoir: ReservoirState {
                cap: 4,
                seen: 11,
                items: vec![ReservoirItem {
                    pos: 601,
                    label: 1,
                    features: vec![0.125, -0.5],
                }],
            },
            drifts: 1,
            reclusters: 1,
            max_buffered: 600,
            config: serde_json::json!({"batch": 2048}),
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let cp = sample();
        let text = cp.to_json();
        let back = Checkpoint::from_json(&text).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_json(), text, "renders must be byte-identical");
    }

    #[test]
    fn schema_tag_is_enforced() {
        let mut v = sample().to_value();
        if let Value::Object(m) = &mut v {
            m.insert("schema".into(), Value::from("pka.stream_checkpoint/v0"));
        }
        match Checkpoint::from_value(&v) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("schema mismatch"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_group_arrays_are_rejected() {
        let mut cp = sample();
        cp.centroid_counts.push(9);
        match Checkpoint::from_value(&cp.to_value()) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("selected_k"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn missing_field_names_the_path() {
        let mut v = sample().to_value();
        if let Value::Object(m) = &mut v {
            m.remove("max_buffered");
        }
        match Checkpoint::from_value(&v) {
            Err(StreamError::Checkpoint { message }) => {
                assert!(message.contains("max_buffered"), "{message}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pka_stream_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let cp = sample();
        cp.write_to(&path).unwrap();
        let back = Checkpoint::read_from(&path).unwrap();
        assert_eq!(back, cp);
        std::fs::remove_file(&path).ok();
    }
}
