use pka_stats::OnlineStats;

/// Per-group drift detector over distance-to-centroid.
///
/// Each PKS group gets one tracker. The tracker watches the stream of
/// (normalised) distances from tail records to the centroid they were
/// classified into, in two phases:
///
/// 1. **Calibration** — the first `calibration` distances feed a Welford
///    accumulator; once full, the envelope freezes at
///    `mean + sigma · std_dev` (a quantile approximation: `sigma = 3`
///    brackets ≈ 99.7% of a well-behaved group).
/// 2. **Watch** — each subsequent distance updates an EWMA of the
///    *exceedance indicator* (`1.0` if the distance breaks the envelope,
///    else `0.0`) with smoothing `alpha`. When the EWMA crosses `0.5` —
///    i.e. recent records land outside the calibrated envelope more often
///    than inside it — the group has drifted and [`Drift::Fired`] is
///    returned, which the pipeline answers with a bounded re-cluster of
///    its reservoir sample.
///
/// After firing, the tracker resets to calibration so the envelope is
/// re-learned from post-drift data. All state is `(u64, f64 × few)` per
/// group: serialisable bit-exactly for checkpoints, O(1) per record.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftTracker {
    calibration: u64,
    sigma: f64,
    alpha: f64,
    baseline: OnlineStats,
    threshold: Option<f64>,
    exceed_ewma: f64,
}

/// Outcome of feeding one distance into a [`DriftTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drift {
    /// Still calibrating or within the envelope.
    Steady,
    /// Sustained envelope exceedance: the group has drifted.
    Fired,
}

impl DriftTracker {
    /// Creates a tracker that calibrates over `calibration` distances and
    /// fires when the EWMA (smoothing `alpha`) of envelope exceedances
    /// crosses one half. `sigma` scales the envelope width.
    pub fn new(calibration: u64, sigma: f64, alpha: f64) -> Self {
        Self {
            calibration: calibration.max(2),
            sigma,
            alpha,
            baseline: OnlineStats::new(),
            threshold: None,
            exceed_ewma: 0.0,
        }
    }

    /// Feeds one distance-to-centroid observation.
    pub fn observe(&mut self, distance: f64) -> Drift {
        match self.threshold {
            None => {
                self.baseline.push(distance);
                if self.baseline.count() >= self.calibration {
                    self.threshold = Some(
                        self.baseline.mean() + self.sigma * self.baseline.population_std_dev(),
                    );
                    self.exceed_ewma = 0.0;
                }
                Drift::Steady
            }
            Some(threshold) => {
                let exceeded = if distance > threshold { 1.0 } else { 0.0 };
                self.exceed_ewma += self.alpha * (exceeded - self.exceed_ewma);
                if self.exceed_ewma > 0.5 {
                    self.reset();
                    Drift::Fired
                } else {
                    Drift::Steady
                }
            }
        }
    }

    /// Drops back to calibration (called automatically on fire, and by the
    /// pipeline after re-clustering moves the centroid).
    pub fn reset(&mut self) {
        self.baseline = OnlineStats::new();
        self.threshold = None;
        self.exceed_ewma = 0.0;
    }

    /// The frozen envelope threshold, once calibrated.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Current EWMA of envelope exceedances.
    pub fn exceed_ewma(&self) -> f64 {
        self.exceed_ewma
    }

    /// Raw state for checkpoint serialisation:
    /// `(calibration, sigma, alpha, baseline, threshold, exceed_ewma)`.
    pub fn raw_state(&self) -> (u64, f64, f64, &OnlineStats, Option<f64>, f64) {
        (
            self.calibration,
            self.sigma,
            self.alpha,
            &self.baseline,
            self.threshold,
            self.exceed_ewma,
        )
    }

    /// Rebuilds a tracker from checkpointed state — the inverse of
    /// [`raw_state`](Self::raw_state).
    pub fn from_raw(
        calibration: u64,
        sigma: f64,
        alpha: f64,
        baseline: OnlineStats,
        threshold: Option<f64>,
        exceed_ewma: f64,
    ) -> Self {
        Self {
            calibration: calibration.max(2),
            sigma,
            alpha,
            baseline,
            threshold,
            exceed_ewma,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_never_fires() {
        let mut t = DriftTracker::new(32, 3.0, 0.05);
        for i in 0..10_000 {
            let d = 1.0 + 0.1 * ((i as f64) * 0.7).sin();
            assert_eq!(t.observe(d), Drift::Steady, "at record {i}");
        }
        assert!(t.threshold().is_some());
    }

    #[test]
    fn sustained_shift_fires_and_recalibrates() {
        let mut t = DriftTracker::new(32, 3.0, 0.05);
        for i in 0..200 {
            let d = 1.0 + 0.05 * ((i as f64) * 1.3).cos();
            assert_eq!(t.observe(d), Drift::Steady);
        }
        let mut fired_at = None;
        for i in 0..500 {
            if t.observe(10.0) == Drift::Fired {
                fired_at = Some(i);
                break;
            }
        }
        let fired_at = fired_at.expect("sustained 10x shift must fire");
        // EWMA(0.05) needs ~14 consecutive exceedances to cross 0.5.
        assert!(fired_at >= 10 && fired_at < 40, "fired_at={fired_at}");
        // After firing the tracker is calibrating again.
        assert_eq!(t.threshold(), None);
        assert_eq!(t.exceed_ewma(), 0.0);
    }

    #[test]
    fn isolated_outliers_do_not_fire() {
        let mut t = DriftTracker::new(32, 3.0, 0.05);
        for i in 0..100 {
            t.observe(1.0 + 0.05 * ((i as f64) * 0.9).sin());
        }
        for burst in 0..50 {
            // One outlier followed by nine normal records, repeatedly.
            assert_eq!(t.observe(25.0), Drift::Steady, "burst {burst}");
            for i in 0..9 {
                assert_eq!(t.observe(1.0 + 0.01 * i as f64), Drift::Steady);
            }
        }
    }

    #[test]
    fn raw_roundtrip_preserves_behaviour_bitwise() {
        let mut t = DriftTracker::new(16, 2.5, 0.1);
        for i in 0..40 {
            t.observe(1.0 + ((i as f64) * 0.31).sin().abs());
        }
        let (c, s, a, b, th, e) = t.raw_state();
        let mut rebuilt = DriftTracker::from_raw(c, s, a, *b, th, e);
        assert_eq!(rebuilt, t);
        for i in 0..100 {
            let d = 1.0 + ((i as f64) * 0.17).cos().abs() * 2.0;
            assert_eq!(t.observe(d), rebuilt.observe(d), "diverged at {i}");
            assert_eq!(
                t.exceed_ewma().to_bits(),
                rebuilt.exceed_ewma().to_bits(),
                "ewma bits diverged at {i}"
            );
        }
    }
}
