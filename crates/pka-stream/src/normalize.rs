use pka_stats::simd;
use pka_stats::{OnlineStats, WelfordColumns};

/// Streaming z-score normalisation: one Welford accumulator per feature.
///
/// The batch pipeline fits its scaler over the full record matrix; a stream
/// cannot. Instead the normalizer observes every record once (a single
/// `O(d)` update) and normalises with the statistics accumulated *so far*.
/// During the detailed prefix this converges to exactly the batch scaler's
/// view of the prefix; over the tail it keeps adapting, which is what lets
/// the mini-batch centroid updates stay comparable across a drifting
/// stream.
///
/// Internally the accumulators live in a column-oriented
/// [`WelfordColumns`] bank so the per-record fold and z-score run as one
/// SIMD pass per record ([`pka_stats::simd::welford_fold`] /
/// [`pka_stats::simd::zscore_apply`]) — bitwise identical to pushing each
/// dimension through its own [`OnlineStats`], which is still the
/// serialisation format: [`stats`](StreamingNormalizer::stats) /
/// [`from_stats`](StreamingNormalizer::from_stats) round-trip checkpoints
/// bit-exactly via [`OnlineStats::m2`] / [`OnlineStats::from_raw`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingNormalizer {
    columns: WelfordColumns,
}

impl StreamingNormalizer {
    /// Creates a normalizer for `dims`-dimensional feature vectors.
    pub fn new(dims: usize) -> Self {
        Self {
            columns: WelfordColumns::new(dims),
        }
    }

    /// Rebuilds a normalizer from serialised per-feature accumulators.
    pub fn from_stats(stats: Vec<OnlineStats>) -> Self {
        Self {
            columns: WelfordColumns::from_stats(&stats),
        }
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.columns.dims()
    }

    /// Records observed so far.
    pub fn count(&self) -> u64 {
        self.columns.count()
    }

    /// Per-feature accumulators, for checkpoint serialisation; bit-exact.
    pub fn stats(&self) -> Vec<OnlineStats> {
        self.columns.to_stats()
    }

    /// Folds one feature vector into the running statistics.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality.
    pub fn observe(&mut self, features: &[f64]) {
        assert_eq!(features.len(), self.dims(), "feature dimensionality");
        self.columns.fold(simd::active_tier(), features);
    }

    /// Z-scores `features` in place against the statistics accumulated so
    /// far. Features with (near-)zero variance are centred only, matching
    /// the batch scaler's degenerate-column rule.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality.
    pub fn normalize(&self, features: &mut [f64]) {
        assert_eq!(features.len(), self.dims(), "feature dimensionality");
        self.columns.zscore(simd::active_tier(), features);
    }

    /// [`observe`](Self::observe) then [`normalize`](Self::normalize) in
    /// one call — the per-record tail update.
    pub fn observe_and_normalize(&mut self, features: &mut [f64]) {
        self.observe(features);
        self.normalize(features);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscores_match_two_pass_after_observing_all() {
        let rows = [
            [1.0, 100.0],
            [2.0, 200.0],
            [3.0, 300.0],
            [4.0, 400.0],
        ];
        let mut n = StreamingNormalizer::new(2);
        for row in &rows {
            n.observe(row);
        }
        let mut x = [3.0, 200.0];
        n.normalize(&mut x);
        // mean = [2.5, 250], pop std = [~1.118, ~111.8]
        assert!((x[0] - 0.5 / (1.25f64).sqrt()).abs() < 1e-12);
        assert!((x[1] + 50.0 / (12500f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_is_centred_not_scaled() {
        let mut n = StreamingNormalizer::new(1);
        for _ in 0..10 {
            n.observe(&[7.0]);
        }
        let mut x = [9.0];
        n.normalize(&mut x);
        assert_eq!(x[0], 2.0);
    }

    #[test]
    fn raw_state_roundtrip_is_exact() {
        let mut n = StreamingNormalizer::new(3);
        for i in 0..57 {
            let f = i as f64;
            n.observe_and_normalize(&mut [f.sin(), f * 0.3, f.sqrt()]);
        }
        let rebuilt = StreamingNormalizer::from_stats(n.stats());
        assert_eq!(rebuilt, n);
        let (mut a, mut b) = ([0.4, -1.0, 3.3], [0.4, -1.0, 3.3]);
        n.normalize(&mut a);
        rebuilt.normalize(&mut b);
        assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
    }

    #[test]
    fn matches_per_dimension_online_stats_bitwise() {
        // The column bank must be indistinguishable from the historical
        // one-OnlineStats-per-feature representation, bit for bit.
        let mut n = StreamingNormalizer::new(2);
        let mut reference = vec![OnlineStats::new(); 2];
        for i in 0..97 {
            let row = [(i as f64 * 0.37).sin() * 50.0, i as f64 - 40.0];
            n.observe(&row);
            for (s, &x) in reference.iter_mut().zip(&row) {
                s.push(x);
            }
        }
        for (got, want) in n.stats().iter().zip(&reference) {
            assert_eq!(got.mean().to_bits(), want.mean().to_bits());
            assert_eq!(got.m2().to_bits(), want.m2().to_bits());
            assert_eq!(got.count(), want.count());
        }
    }
}
