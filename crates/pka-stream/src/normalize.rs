use pka_stats::OnlineStats;

/// Streaming z-score normalisation: one Welford accumulator per feature.
///
/// The batch pipeline fits its scaler over the full record matrix; a stream
/// cannot. Instead the normalizer observes every record once (a single
/// `O(d)` update) and normalises with the statistics accumulated *so far*.
/// During the detailed prefix this converges to exactly the batch scaler's
/// view of the prefix; over the tail it keeps adapting, which is what lets
/// the mini-batch centroid updates stay comparable across a drifting
/// stream.
///
/// All state is exposed raw (`stats`) so checkpoints can serialise the
/// accumulators bit-exactly via [`OnlineStats::m2`] /
/// [`OnlineStats::from_raw`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingNormalizer {
    stats: Vec<OnlineStats>,
}

impl StreamingNormalizer {
    /// Creates a normalizer for `dims`-dimensional feature vectors.
    pub fn new(dims: usize) -> Self {
        Self {
            stats: vec![OnlineStats::new(); dims],
        }
    }

    /// Rebuilds a normalizer from serialised per-feature accumulators.
    pub fn from_stats(stats: Vec<OnlineStats>) -> Self {
        Self { stats }
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.stats.len()
    }

    /// Records observed so far.
    pub fn count(&self) -> u64 {
        self.stats.first().map_or(0, OnlineStats::count)
    }

    /// Per-feature accumulators, for checkpoint serialisation.
    pub fn stats(&self) -> &[OnlineStats] {
        &self.stats
    }

    /// Folds one feature vector into the running statistics.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality.
    pub fn observe(&mut self, features: &[f64]) {
        assert_eq!(features.len(), self.stats.len(), "feature dimensionality");
        for (stat, &x) in self.stats.iter_mut().zip(features) {
            stat.push(x);
        }
    }

    /// Z-scores `features` in place against the statistics accumulated so
    /// far. Features with (near-)zero variance are centred only, matching
    /// the batch scaler's degenerate-column rule.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality.
    pub fn normalize(&self, features: &mut [f64]) {
        assert_eq!(features.len(), self.stats.len(), "feature dimensionality");
        for (stat, x) in self.stats.iter().zip(features.iter_mut()) {
            let std = stat.population_std_dev();
            *x -= stat.mean();
            if std > 1e-12 {
                *x /= std;
            }
        }
    }

    /// [`observe`](Self::observe) then [`normalize`](Self::normalize) in
    /// one call — the per-record tail update.
    pub fn observe_and_normalize(&mut self, features: &mut [f64]) {
        self.observe(features);
        self.normalize(features);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscores_match_two_pass_after_observing_all() {
        let rows = [
            [1.0, 100.0],
            [2.0, 200.0],
            [3.0, 300.0],
            [4.0, 400.0],
        ];
        let mut n = StreamingNormalizer::new(2);
        for row in &rows {
            n.observe(row);
        }
        let mut x = [3.0, 200.0];
        n.normalize(&mut x);
        // mean = [2.5, 250], pop std = [~1.118, ~111.8]
        assert!((x[0] - 0.5 / (1.25f64).sqrt()).abs() < 1e-12);
        assert!((x[1] + 50.0 / (12500f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_is_centred_not_scaled() {
        let mut n = StreamingNormalizer::new(1);
        for _ in 0..10 {
            n.observe(&[7.0]);
        }
        let mut x = [9.0];
        n.normalize(&mut x);
        assert_eq!(x[0], 2.0);
    }

    #[test]
    fn raw_state_roundtrip_is_exact() {
        let mut n = StreamingNormalizer::new(3);
        for i in 0..57 {
            let f = i as f64;
            n.observe_and_normalize(&mut [f.sin(), f * 0.3, f.sqrt()]);
        }
        let rebuilt = StreamingNormalizer::from_stats(n.stats().to_vec());
        assert_eq!(rebuilt, n);
        let (mut a, mut b) = ([0.4, -1.0, 3.3], [0.4, -1.0, 3.3]);
        n.normalize(&mut a);
        rebuilt.normalize(&mut b);
        assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
    }
}
