//! Deterministic reconciliation of per-shard online state.
//!
//! Two pieces live here: the bounded Lloyd refinement shared by the
//! single-shard pipeline and the sharded engine (drift-triggered
//! re-clusters and the final merge both run it over a reservoir sample),
//! and the end-of-stream weighted merge that folds N shard sections into
//! one [`MergedSection`]. Everything iterates in shard-id / group-id order
//! with a fixed operation order, so the result is bitwise identical no
//! matter how many workers ran the shards or how callers enumerate them.

use crate::checkpoint::{MergedSection, ReservoirItem, ReservoirState, ShardSection};

/// A few Lloyd iterations over `items` only, initialised at (and updating)
/// `centroids` in place. Empty groups keep their previous centre; ties in
/// the nearest-centroid scan resolve to the lowest group id via the strict
/// `min_by` comparison order.
pub(crate) fn lloyd_iterations(
    centroids: &mut [Vec<f64>],
    items: &[ReservoirItem],
    iters: usize,
) {
    let k = centroids.len();
    if k == 0 || items.is_empty() {
        return;
    }
    let dims = centroids[0].len();
    for _ in 0..iters {
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0u64; k];
        for item in items {
            let nearest = centroids
                .iter()
                .enumerate()
                .map(|(g, c)| {
                    let d = c
                        .iter()
                        .zip(&item.features)
                        .map(|(ci, xi)| (xi - ci) * (xi - ci))
                        .sum::<f64>();
                    (g, d)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(g, _)| g)
                .unwrap_or(0);
            counts[nearest] += 1;
            for (s, x) in sums[nearest].iter_mut().zip(&item.features) {
                *s += x;
            }
        }
        for g in 0..k {
            if counts[g] > 0 {
                for (c, s) in centroids[g].iter_mut().zip(&sums[g]) {
                    *c = s / counts[g] as f64;
                }
            }
        }
    }
}

/// Reconciles the shard sections into the global [`MergedSection`]:
///
/// 1. **Centroids** — per group, the population-weighted mean of the shard
///    centroids (weights are the shard `centroid_counts`, accumulated in
///    shard-id order).
/// 2. **Reservoir** — the union of the shard reservoirs sorted by stream
///    position (positions are unique: the ring routes each record to
///    exactly one shard) and truncated to the global cap, so the retained
///    sample is the earliest-position subset regardless of sharding.
/// 3. **Re-cluster** — `iters` Lloyd passes over the union reservoir,
///    starting from the weighted centroids.
pub(crate) fn merge_sections(
    sections: &[ShardSection],
    global_cap: usize,
    iters: usize,
) -> MergedSection {
    let k = sections.first().map_or(0, |s| s.centroids.len());
    let dims = sections
        .first()
        .and_then(|s| s.centroids.first())
        .map_or(0, Vec::len);
    let mut centroids = vec![vec![0.0f64; dims]; k];
    let mut centroid_counts = vec![0u64; k];
    for g in 0..k {
        let total: u64 = sections.iter().map(|s| s.centroid_counts[g]).sum();
        centroid_counts[g] = total;
        if total == 0 {
            // No population anywhere: keep the common prefix seed (every
            // shard starts from the same centroid, so shard 0's copy is it).
            centroids[g] = sections[0].centroids[g].clone();
            continue;
        }
        for s in sections {
            let w = s.centroid_counts[g] as f64 / total as f64;
            for (c, x) in centroids[g].iter_mut().zip(&s.centroids[g]) {
                *c += w * x;
            }
        }
    }

    let mut items: Vec<ReservoirItem> = sections
        .iter()
        .flat_map(|s| s.reservoir.items.iter().cloned())
        .collect();
    items.sort_by_key(|item| item.pos);
    items.truncate(global_cap);
    let seen = sections.iter().map(|s| s.reservoir.seen).sum();

    lloyd_iterations(&mut centroids, &items, iters);
    MergedSection {
        centroids,
        centroid_counts,
        reservoir: ReservoirState {
            cap: global_cap,
            seen,
            items,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DriftTracker;
    use pka_stats::OnlineStats;

    fn item(pos: u64, label: usize, features: Vec<f64>) -> ReservoirItem {
        ReservoirItem {
            pos,
            label,
            features,
        }
    }

    fn section(
        centroids: Vec<Vec<f64>>,
        centroid_counts: Vec<u64>,
        items: Vec<ReservoirItem>,
        seen: u64,
    ) -> ShardSection {
        let k = centroids.len();
        let dims = centroids[0].len();
        ShardSection {
            records: items.len() as u64,
            tail_counts: vec![0; k],
            normalizer: vec![OnlineStats::new(); dims],
            centroids,
            centroid_counts,
            drift: vec![DriftTracker::new(4, 3.0, 0.05); k],
            reservoir: ReservoirState {
                cap: 8,
                seen,
                items,
            },
            drifts: 0,
            reclusters: 0,
        }
    }

    #[test]
    fn weighted_centroid_merge_uses_populations() {
        let a = section(vec![vec![0.0, 0.0]], vec![1], vec![], 0);
        let b = section(vec![vec![4.0, 8.0]], vec![3], vec![], 0);
        // No reservoir items: the Lloyd pass is a no-op and the raw
        // weighted mean survives — (1·0 + 3·4)/4 = 3, (1·0 + 3·8)/4 = 6.
        let merged = merge_sections(&[a, b], 8, 2);
        assert_eq!(merged.centroids, vec![vec![3.0, 6.0]]);
        assert_eq!(merged.centroid_counts, vec![4]);
    }

    #[test]
    fn union_reservoir_is_position_ordered_and_capped() {
        let a = section(
            vec![vec![0.0]],
            vec![1],
            vec![item(9, 0, vec![9.0]), item(1, 0, vec![1.0])],
            5,
        );
        let b = section(
            vec![vec![0.0]],
            vec![1],
            vec![item(4, 0, vec![4.0]), item(7, 0, vec![7.0])],
            6,
        );
        let merged = merge_sections(&[a, b], 3, 1);
        let positions: Vec<u64> = merged.reservoir.items.iter().map(|i| i.pos).collect();
        assert_eq!(positions, vec![1, 4, 7], "sorted by position, capped at 3");
        assert_eq!(merged.reservoir.seen, 11);
        assert_eq!(merged.reservoir.cap, 3);
    }

    #[test]
    fn merge_is_deterministic_for_identical_inputs() {
        let make = || {
            vec![
                section(
                    vec![vec![0.5, 1.5], vec![-2.0, 0.25]],
                    vec![10, 3],
                    vec![item(2, 0, vec![0.4, 1.6]), item(5, 1, vec![-1.9, 0.3])],
                    12,
                ),
                section(
                    vec![vec![0.75, 1.25], vec![-2.5, 0.5]],
                    vec![4, 9],
                    vec![item(3, 0, vec![0.6, 1.4]), item(8, 1, vec![-2.4, 0.4])],
                    14,
                ),
            ]
        };
        let a = merge_sections(&make(), 8, 2);
        let b = merge_sections(&make(), 8, 2);
        assert_eq!(a, b);
        assert!(a
            .centroids
            .iter()
            .flatten()
            .zip(b.centroids.iter().flatten())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn empty_group_keeps_the_prefix_seed() {
        let a = section(vec![vec![1.0], vec![7.5]], vec![2, 0], vec![], 0);
        let b = section(vec![vec![3.0], vec![7.5]], vec![2, 0], vec![], 0);
        let merged = merge_sections(&[a, b], 8, 1);
        assert_eq!(merged.centroids[1], vec![7.5], "zero-population group");
        assert_eq!(merged.centroids[0], vec![2.0]);
    }

    #[test]
    fn lloyd_moves_centroids_toward_reservoir_mass() {
        let mut centroids = vec![vec![0.0], vec![10.0]];
        let items = vec![
            item(0, 0, vec![1.0]),
            item(1, 0, vec![3.0]),
            item(2, 1, vec![9.0]),
        ];
        lloyd_iterations(&mut centroids, &items, 1);
        assert_eq!(centroids, vec![vec![2.0], vec![9.0]]);
    }
}
