use std::fmt;

/// Errors produced by streaming ingestion and the online pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The source could not produce a record (I/O failure, unlaunchable
    /// kernel, ...).
    Source {
        /// What went wrong.
        message: String,
    },
    /// A JSONL line could not be parsed into a kernel record.
    Parse {
        /// 1-based line number in the input.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
    /// The source cannot be re-read from the start (stdin), so resume and
    /// batch verification are unavailable for it.
    NotRestartable,
    /// The online pipeline itself failed (clustering, classification).
    Pipeline {
        /// What went wrong.
        message: String,
    },
    /// A checkpoint is malformed or inconsistent with the stream it is
    /// being resumed against.
    Checkpoint {
        /// What was inconsistent.
        message: String,
    },
    /// The run was stopped through a [`CancelToken`](crate::CancelToken).
    /// The pipeline delivered a teardown checkpoint through `on_checkpoint`
    /// before returning this, so the stream is resumable from where it
    /// stopped.
    Cancelled,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Source { message } => write!(f, "stream source: {message}"),
            StreamError::Parse { line, message } => {
                write!(f, "jsonl line {line}: {message}")
            }
            StreamError::NotRestartable => {
                write!(f, "source cannot restart (stdin streams are single-pass)")
            }
            StreamError::Pipeline { message } => write!(f, "stream pipeline: {message}"),
            StreamError::Checkpoint { message } => write!(f, "stream checkpoint: {message}"),
            StreamError::Cancelled => write!(f, "stream cancelled at a batch boundary"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<pka_gpu::GpuError> for StreamError {
    fn from(e: pka_gpu::GpuError) -> Self {
        StreamError::Source {
            message: e.to_string(),
        }
    }
}

impl From<pka_core::PkaError> for StreamError {
    fn from(e: pka_core::PkaError) -> Self {
        StreamError::Pipeline {
            message: e.to_string(),
        }
    }
}

impl From<pka_ml::MlError> for StreamError {
    fn from(e: pka_ml::MlError) -> Self {
        StreamError::Pipeline {
            message: e.to_string(),
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Source {
            message: e.to_string(),
        }
    }
}
