//! Numeric substrate for the Principal Kernel Analysis toolkit.
//!
//! This crate provides the small, dependency-free statistical building blocks
//! that the rest of the workspace is built on:
//!
//! * [`OnlineStats`] — single-pass (Welford) mean/variance/min/max, mergeable.
//! * [`RollingStats`] — fixed-window rolling mean and standard deviation, the
//!   primitive behind Principal Kernel Projection's IPC-stability detector.
//! * [`error`] — the error metrics used throughout the paper's evaluation
//!   (absolute percentage error, MAPE, mean absolute error).
//! * [`summary`] — batch summaries: geometric mean, mean, median, percentiles.
//! * [`hash`] — stable, platform-independent FNV-1a hashing used to derive
//!   deterministic per-kernel seeds from workload and kernel names.
//! * [`exec`] — a scoped-thread [`Executor`] whose parallel maps return
//!   results in item order, so every PKA stage can fan out across cores
//!   while staying bitwise identical to its sequential run.
//! * [`simd`] — runtime-dispatched SSE4.1/AVX2 tiers for the numeric hot
//!   loops (Welford folds, z-scoring), with the scalar code as the bitwise
//!   specification and an opt-in fast-math tier.
//! * [`bootstrap`] — seeded bootstrap confidence intervals for the suite
//!   aggregates the experiment harness reports.
//!
//! # Examples
//!
//! ```
//! use pka_stats::{OnlineStats, RollingStats};
//!
//! let mut o = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     o.push(x);
//! }
//! assert_eq!(o.mean(), 2.5);
//!
//! let mut r = RollingStats::new(2);
//! r.push(1.0);
//! r.push(3.0);
//! r.push(5.0); // window now holds [3.0, 5.0]
//! assert_eq!(r.mean(), 4.0);
//! ```

// `deny` rather than `forbid`: the `simd` module carries the one audited
// `allow(unsafe_code)` in the crate, for CPU intrinsics behind runtime
// feature detection. Everything else still refuses unsafe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod error;
pub mod exec;
pub mod hash;
mod online;
mod rolling;
pub mod simd;
pub mod summary;

pub use exec::Executor;
pub use online::{OnlineStats, WelfordColumns};
pub use rolling::RollingStats;
