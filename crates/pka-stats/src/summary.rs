//! Batch summaries over slices: geometric mean, mean, median, percentiles.
//!
//! The paper reports suite-level results as geometric means of per-workload
//! speedups and arithmetic means of per-workload errors; these helpers pin
//! down those definitions.

/// Geometric mean of strictly positive samples.
///
/// Non-positive samples are skipped (a speedup of zero or below carries no
/// multiplicative information); if every sample is skipped the result is
/// `0.0`. Computed in log space to avoid overflow on centuries-scale values.
///
/// # Examples
///
/// ```
/// use pka_stats::summary::geomean;
///
/// assert_eq!(geomean(&[1.0, 4.0]), 2.0);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x > 0.0 {
            sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Arithmetic mean, or `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// use pka_stats::summary::mean;
///
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (midpoint of the two central elements for even lengths), or `0.0`
/// for an empty slice.
///
/// # Examples
///
/// ```
/// use pka_stats::summary::median;
///
/// assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
/// assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
/// ```
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile `p` in `[0, 100]`, or `0.0` for an empty
/// slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any sample is NaN.
///
/// # Examples
///
/// ```
/// use pka_stats::summary::percentile;
///
/// assert_eq!(percentile(&[10.0, 20.0, 30.0], 0.0), 10.0);
/// assert_eq!(percentile(&[10.0, 20.0, 30.0], 100.0), 30.0);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        // Skips the non-positive entry.
        assert!((geomean(&[2.0, 8.0, 0.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_handles_huge_values() {
        let g = geomean(&[1e300, 1e300]);
        assert!((g - 1e300).abs() / 1e300 < 1e-12);
    }

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), 2.5);
        assert_eq!(percentile(&xs, 75.0), 7.5);
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0], 150.0);
    }
}
