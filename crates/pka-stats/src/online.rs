/// Single-pass summary statistics over a stream of `f64` samples.
///
/// Uses Welford's algorithm, so the variance is numerically stable even for
/// long streams with a large mean. Two accumulators can be merged with
/// [`OnlineStats::merge`], which makes the type suitable for parallel
/// reduction.
///
/// # Examples
///
/// ```
/// use pka_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of samples observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample observed, or `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample observed, or `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Raw second central moment (`Σ (x - mean)²`) — the Welford `M2`
    /// accumulator. Exposed so the accumulator can be serialised and
    /// rebuilt bit-exactly with [`OnlineStats::from_raw`].
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuilds an accumulator from its raw state, the inverse of reading
    /// `count`/`mean`/[`m2`](OnlineStats::m2)/`min`/`max`. Feeding back
    /// unmodified values reproduces the original accumulator exactly,
    /// which is what checkpoint/resume relies on.
    pub fn from_raw(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Population variance (divides by `n`), or `0.0` with fewer than one
    /// sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`), or `0.0` with fewer than two
    /// samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (population std-dev divided by mean), or
    /// `0.0` if the mean is zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.population_std_dev() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one, as if every sample pushed
    /// into `other` had been pushed into `self`.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A column-oriented bank of Welford accumulators sharing one sample count.
///
/// This is [`OnlineStats`] × `dims` in structure-of-arrays layout: one
/// `count`, and contiguous `mean`/`m2`/`min`/`max` vectors. The layout is
/// what lets the streaming normalizer fold a whole feature vector with one
/// SIMD pass ([`crate::simd::welford_fold`]) instead of `dims` independent
/// struct updates — while staying bitwise identical to pushing each
/// dimension through its own [`OnlineStats`], which
/// [`to_stats`](WelfordColumns::to_stats)/[`from_stats`](WelfordColumns::from_stats)
/// round-trip exactly (checkpoints serialise the per-dimension form).
///
/// Min/max tracking is deliberately scalar (`f64::min`/`f64::max`): their
/// NaN and signed-zero lowering is platform-specification territory the
/// vector tiers refuse to re-implement, and two comparisons per dimension
/// are not the hot part of the fold.
#[derive(Debug, Clone, PartialEq)]
pub struct WelfordColumns {
    count: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
    min: Vec<f64>,
    max: Vec<f64>,
}

impl WelfordColumns {
    /// An empty bank over `dims` feature dimensions.
    pub fn new(dims: usize) -> Self {
        Self {
            count: 0,
            mean: vec![0.0; dims],
            m2: vec![0.0; dims],
            min: vec![f64::INFINITY; dims],
            max: vec![f64::NEG_INFINITY; dims],
        }
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Samples folded so far (shared by every dimension).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one sample vector into every dimension's accumulator, using
    /// the given SIMD tier for the mean/m2 recurrences.
    ///
    /// # Panics
    ///
    /// Panics if `xs` has the wrong dimensionality.
    pub fn fold(&mut self, tier: crate::simd::SimdTier, xs: &[f64]) {
        assert_eq!(xs.len(), self.mean.len(), "feature dimensionality");
        self.count += 1;
        crate::simd::welford_fold(tier, self.count as f64, xs, &mut self.mean, &mut self.m2);
        for ((&x, min), max) in xs.iter().zip(self.min.iter_mut()).zip(self.max.iter_mut()) {
            *min = min.min(x);
            *max = max.max(x);
        }
    }

    /// Z-scores `xs` in place against the statistics accumulated so far,
    /// centring (but not scaling) degenerate dimensions — the batch
    /// scaler's rule, see [`crate::simd::zscore_apply`].
    ///
    /// # Panics
    ///
    /// Panics if `xs` has the wrong dimensionality.
    pub fn zscore(&self, tier: crate::simd::SimdTier, xs: &mut [f64]) {
        assert_eq!(xs.len(), self.mean.len(), "feature dimensionality");
        crate::simd::zscore_apply(tier, self.count as f64, &self.mean, &self.m2, xs);
    }

    /// The per-dimension accumulators in serialisable form; bit-exact.
    pub fn to_stats(&self) -> Vec<OnlineStats> {
        (0..self.mean.len())
            .map(|j| {
                OnlineStats::from_raw(
                    self.count,
                    self.mean[j],
                    self.m2[j],
                    self.min[j],
                    self.max[j],
                )
            })
            .collect()
    }

    /// Rebuilds the bank from serialised per-dimension accumulators;
    /// inverse of [`to_stats`](WelfordColumns::to_stats), bit-exact.
    ///
    /// All accumulators must share one count (they always do when produced
    /// by this type or by folding the same records through per-dimension
    /// [`OnlineStats`]); the shared count is taken from the first, or 0
    /// when `stats` is empty.
    pub fn from_stats(stats: &[OnlineStats]) -> Self {
        Self {
            count: stats.first().map_or(0, OnlineStats::count),
            mean: stats.iter().map(OnlineStats::mean).collect(),
            m2: stats.iter().map(OnlineStats::m2).collect(),
            min: stats.iter().map(OnlineStats::min).collect(),
            max: stats.iter().map(OnlineStats::max).collect(),
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        OnlineStats::extend(self, iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn empty_is_sane() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 100.0 + 5.0).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        close(s.mean(), mean);
        close(s.population_variance(), var);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 1.5 - 200.0).collect();
        let (a, b) = xs.split_at(137);
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        let full: OnlineStats = xs.iter().copied().collect();
        close(left.mean(), full.mean());
        close(left.population_variance(), full.population_variance());
        assert_eq!(left.count(), full.count());
        assert_eq!(left.min(), full.min());
        assert_eq!(left.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn coefficient_of_variation() {
        let s: OnlineStats = [10.0, 10.0, 10.0].into_iter().collect();
        assert_eq!(s.coefficient_of_variation(), 0.0);
        let s: OnlineStats = [5.0, 15.0].into_iter().collect();
        close(s.coefficient_of_variation(), 0.5);
    }

    #[test]
    fn raw_roundtrip_is_bit_exact() {
        let s: OnlineStats = (0..97).map(|i| (i as f64 * 0.71).cos() * 3.0).collect();
        let rebuilt = OnlineStats::from_raw(s.count(), s.mean(), s.m2(), s.min(), s.max());
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.mean().to_bits(), s.mean().to_bits());
        assert_eq!(rebuilt.m2().to_bits(), s.m2().to_bits());
    }

    #[test]
    fn numerically_stable_with_large_offset() {
        // Same data shifted by 1e9: variance must not explode.
        let base = [4.0, 7.0, 13.0, 16.0];
        let s1: OnlineStats = base.iter().copied().collect();
        let s2: OnlineStats = base.iter().map(|x| x + 1e9).collect();
        close(s1.population_variance(), s2.population_variance());
    }
}
