//! Stable, platform-independent hashing for deterministic seed derivation.
//!
//! Workload generators and the silicon model derive per-kernel RNG seeds from
//! `(workload name, kernel index)` so that every run of every experiment is
//! bit-for-bit reproducible. `std::collections::hash_map::DefaultHasher` is
//! explicitly not stable across releases, so we pin FNV-1a here.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash of a byte slice.
///
/// # Examples
///
/// ```
/// use pka_stats::hash::fnv1a;
///
/// // Stable across platforms and releases.
/// assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a(b"atax"), fnv1a(b"bicg"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Derives a seed by hashing a name together with a numeric discriminator.
///
/// The discriminator is mixed in after the name so `("a", 1)` and `("a1", 0)`
/// produce unrelated seeds.
///
/// # Examples
///
/// ```
/// use pka_stats::hash::seed_from;
///
/// assert_ne!(seed_from("gaussian", 0), seed_from("gaussian", 1));
/// assert_ne!(seed_from("gaussian", 0), seed_from("gramschmidt", 0));
/// ```
pub fn seed_from(name: &str, discriminator: u64) -> u64 {
    let mut h = fnv1a(name.as_bytes());
    for b in discriminator.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finaliser) so nearby discriminators map to
    // well-separated seeds.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Finalising 64-bit mix (splitmix64 avalanche). Use this to decorrelate
/// seeds built from arithmetic on other seeds — consecutive or
/// golden-ratio-spaced inputs map to statistically independent outputs.
///
/// # Examples
///
/// ```
/// use pka_stats::hash::mix64;
///
/// assert_ne!(mix64(1), mix64(2));
/// ```
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny deterministic `f64` stream in `[0, 1)` derived from a seed, for
/// light-weight jitter where pulling in a full RNG is overkill.
///
/// This is splitmix64 under the hood: statistically fine for perturbing model
/// outputs, not intended for anything cryptographic.
///
/// # Examples
///
/// ```
/// use pka_stats::hash::UnitStream;
///
/// let mut s = UnitStream::new(7);
/// let x = s.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitStream {
    state: u64,
}

impl UnitStream {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next value uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next value uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "range must be ordered");
        lo + self.next_f64() * (hi - lo)
    }

    /// Next index uniform in `[0, n)`, mapped from one unit draw.
    ///
    /// This is the one place the pipeline turns a unit float into an array
    /// index (k-means++ seeding picks rows with it). Because
    /// [`next_f64`](Self::next_f64) is strictly below `1.0`, the scaled
    /// product is already in `[0, n)` and no modulo is applied — the
    /// historical trailing `% n` was a no-op that suggested (and would have
    /// masked) a wraparound that cannot occur. The `min` clamp only guards
    /// the astronomically large `n` whose rounding could hit `n` exactly.
    ///
    /// The emitted sequence is pinned by a regression test: golden tables
    /// (Table 3/4) depend on every draw.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use pka_stats::hash::UnitStream;
    ///
    /// let mut s = UnitStream::new(3);
    /// assert!(s.next_index(10) < 10);
    /// ```
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        ((self.next_f64() * n as f64) as usize).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seed_discriminator_not_concatenation() {
        assert_ne!(seed_from("a", 1), seed_from("a1", 0));
    }

    #[test]
    fn unit_stream_in_range_and_deterministic() {
        let mut a = UnitStream::new(123);
        let mut b = UnitStream::new(123);
        for _ in 0..1000 {
            let x = a.next_f64();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, b.next_f64());
        }
    }

    #[test]
    fn unit_stream_range() {
        let mut s = UnitStream::new(9);
        for _ in 0..100 {
            let x = s.next_range(5.0, 6.0);
            assert!((5.0..6.0).contains(&x));
        }
    }

    #[test]
    fn next_index_matches_the_pre_helper_expression() {
        // `next_index` replaced the inline `(f * n) as usize % n`; the two
        // must agree draw for draw or every k-means++ seeding shifts.
        let mut a = UnitStream::new(99);
        let mut b = UnitStream::new(99);
        for n in [1usize, 2, 3, 414, 1500, 1 << 20] {
            for _ in 0..50 {
                #[allow(clippy::modulo_one)]
                let legacy = (b.next_f64() * n as f64) as usize % n;
                assert_eq!(a.next_index(n), legacy, "n = {n}");
            }
        }
    }

    #[test]
    fn next_index_sequence_is_pinned() {
        // Golden sequence for the k-means++ seed stream (seed 0, the
        // default, xored with the splitmix constant as `KMeans::fit` does).
        // Any change here shifts the Table 3/4 golden files.
        let mut s = UnitStream::new(0 ^ 0x9e3779b97f4a7c15);
        let got: Vec<usize> = (0..8).map(|_| s.next_index(414)).collect();
        assert_eq!(
            got,
            vec![178, 10, 401, 44, 135, 71, 319, 101],
            "k-means++ index stream drifted"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn next_index_rejects_empty_range() {
        UnitStream::new(0).next_index(0);
    }

    #[test]
    fn unit_stream_roughly_uniform() {
        let mut s = UnitStream::new(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| s.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }
}
