//! Deterministic scoped-thread executor for the PKA pipeline.
//!
//! Every parallelizable stage of PKA — per-kernel silicon profiling, the
//! independent K=1..max_k clustering runs, per-representative simulation —
//! is a *map over independent items*. [`Executor`] fans those maps out over
//! `std::thread::scope` workers while guaranteeing the observable result is
//! **bitwise identical** to a sequential run:
//!
//! * results are placed into their item's slot by index, never in
//!   completion order, so reductions downstream fold in item order;
//! * [`Executor::try_map`] reports the error of the *smallest-indexed*
//!   failing item, matching what a sequential early-exit loop would see;
//! * no RNG state is shared across items — callers derive per-item seeds.
//!
//! Worker count `1` (the default) bypasses threads entirely, so the
//! sequential path is not merely equivalent but literally the same code the
//! parity tests compare against.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A scoped-thread work fan-out with deterministic, order-preserving
/// results.
///
/// `Executor` is tiny and `Copy`; embed it in configuration structs and
/// pass it by value. The worker count is fixed at construction:
/// [`Executor::new(0)`](Executor::new) resolves to the host's available
/// parallelism.
///
/// # Examples
///
/// ```
/// use pka_stats::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Executor {
    workers: NonZeroUsize,
}

impl Default for Executor {
    /// The sequential executor.
    fn default() -> Self {
        Self::sequential()
    }
}

impl Executor {
    /// An executor that runs everything inline on the calling thread.
    pub fn sequential() -> Self {
        Self {
            workers: NonZeroUsize::MIN,
        }
    }

    /// An executor with `workers` threads; `0` means one worker per
    /// available hardware thread.
    pub fn new(workers: usize) -> Self {
        let resolved = match NonZeroUsize::new(workers) {
            Some(n) => n,
            None => std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        };
        Self { workers: resolved }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// True when work runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.workers.get() == 1
    }

    /// Applies `f` to every item and returns the results in item order.
    ///
    /// `f` receives `(index, &item)`. With more than one worker, items are
    /// claimed from a shared counter and may *execute* in any order; the
    /// returned vector is always `[f(0, &items[0]), f(1, &items[1]), ...]`.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        if self.is_sequential() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let n = items.len();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, U)>();
        let workers = self.workers.get().min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, f(i, &items[i]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
            for (i, value) in rx {
                slots[i] = Some(value);
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("every index yields exactly one result"))
                .collect()
        })
    }

    /// Fallible [`map`](Executor::map): all-`Ok` results in item order, or
    /// the error of the smallest-indexed failing item.
    ///
    /// The sequential path short-circuits at the first error exactly like a
    /// plain `?` loop; the parallel path evaluates every item but selects
    /// the same error a sequential run would have returned, so callers
    /// observe identical `Result` values either way.
    ///
    /// # Errors
    ///
    /// Returns the first (by item index) error produced by `f`.
    pub fn try_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<U, E> + Sync,
    {
        if self.is_sequential() || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect::<Result<Vec<U>, E>>();
        }
        let results = self.map(items, |i, t| f(i, t));
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            match result {
                Ok(value) => out.push(value),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_available_parallelism() {
        let auto = Executor::new(0);
        assert!(auto.workers() >= 1);
        assert_eq!(Executor::new(3).workers(), 3);
        assert!(Executor::sequential().is_sequential());
        assert_eq!(Executor::default(), Executor::sequential());
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 4, 8] {
            let exec = Executor::new(workers);
            let out = exec.map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(&[] as &[u64], |_, &x| x), Vec::<u64>::new());
        assert_eq!(exec.map(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn try_map_returns_first_error_by_index() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 4] {
            let exec = Executor::new(workers);
            let result: Result<Vec<u64>, String> = exec.try_map(&items, |_, &x| {
                if x % 30 == 7 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            });
            // Failing indices are 7, 37, 67, 97; a sequential loop stops at 7.
            assert_eq!(result.unwrap_err(), "bad 7");
        }
    }

    #[test]
    fn float_reduction_is_bitwise_identical_across_worker_counts() {
        // Awkward magnitudes make float addition order-sensitive; identical
        // bit patterns across worker counts prove results fold in item
        // order, not completion order.
        let items: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64 - 500.0) * 1e10f64.powi((i % 7) as i32 - 3))
            .collect();
        let sum_with = |workers: usize| -> u64 {
            let exec = Executor::new(workers);
            exec.map(&items, |_, &x| x * 1.000000001 + 0.125)
                .iter()
                .sum::<f64>()
                .to_bits()
        };
        let sequential = sum_with(1);
        for workers in [2, 3, 8] {
            assert_eq!(sum_with(workers), sequential);
        }
    }
}
