//! Deterministic scoped-thread executor for the PKA pipeline.
//!
//! Every parallelizable stage of PKA — per-kernel silicon profiling, the
//! independent K=1..max_k clustering runs, per-representative simulation —
//! is a *map over independent items*. [`Executor`] fans those maps out over
//! `std::thread::scope` workers while guaranteeing the observable result is
//! **bitwise identical** to a sequential run:
//!
//! * results are placed into their item's slot by index, never in
//!   completion order, so reductions downstream fold in item order;
//! * [`Executor::try_map`] reports the error of the *smallest-indexed*
//!   failing item, matching what a sequential early-exit loop would see;
//! * no RNG state is shared across items — callers derive per-item seeds;
//! * with a trace sink attached, spans and events emitted *inside* work
//!   items are captured per item ([`pka_obs::capture_trace`]) and flushed
//!   in item order, so trace JSONL line order matches a sequential run
//!   regardless of thread schedule.
//!
//! Worker threads are named `pka-w<N>`, matching the per-worker
//! `executor.worker_busy.w<N>` stages, so trace viewers get one stable
//! lane per worker.
//!
//! Worker count `1` (the default) bypasses threads entirely, so the
//! sequential path is not merely equivalent but literally the same code the
//! parity tests compare against.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// A scoped-thread work fan-out with deterministic, order-preserving
/// results.
///
/// `Executor` is tiny and `Copy`; embed it in configuration structs and
/// pass it by value. The worker count is fixed at construction:
/// [`Executor::new(0)`](Executor::new) resolves to the host's available
/// parallelism.
///
/// # Examples
///
/// ```
/// use pka_stats::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Executor {
    workers: NonZeroUsize,
}

impl Default for Executor {
    /// The sequential executor.
    fn default() -> Self {
        Self::sequential()
    }
}

impl Executor {
    /// An executor that runs everything inline on the calling thread.
    pub fn sequential() -> Self {
        Self {
            workers: NonZeroUsize::MIN,
        }
    }

    /// An executor with `workers` threads; `0` means one worker per
    /// available hardware thread.
    pub fn new(workers: usize) -> Self {
        let resolved = match NonZeroUsize::new(workers) {
            Some(n) => n,
            None => std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        };
        Self { workers: resolved }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// True when work runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.workers.get() == 1
    }

    /// Threads actually spawned for a fan-out over `n_tasks` tasks: the
    /// configured count, capped by the task count and by the hardware
    /// thread count. Tasks are claimed from a shared counter, so fewer
    /// threads simply take more tasks each and every result is identical —
    /// oversubscribing a CPU-bound fan-out buys nothing but scheduler
    /// churn (an `Executor::new(4)` on a single-core host was measurably
    /// *slower* than sequential before this cap). When the cap resolves to
    /// one thread the fan-out runs inline on the caller, exactly like the
    /// sequential executor (and publishes no per-worker busy stages).
    pub fn spawn_count(&self, n_tasks: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(usize::MAX, NonZeroUsize::get);
        self.workers.get().min(n_tasks).min(hw)
    }

    /// Applies `f` to every item and returns the results in item order.
    ///
    /// `f` receives `(index, &item)`. With more than one worker, items are
    /// claimed from a shared counter and may *execute* in any order; the
    /// returned vector is always `[f(0, &items[0]), f(1, &items[1]), ...]`.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        if self.is_sequential() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let n = items.len();
        let obs = pka_obs::enabled();
        if obs {
            pka_obs::counter("executor.parallel_maps").incr();
            pka_obs::counter("executor.items").add(n as u64);
        }
        // With a sink attached, per-item trace output is captured on the
        // worker and re-emitted in item order below, keeping trace files
        // byte-comparable across worker counts.
        let tracing = obs && pka_obs::global().tracing();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, U, pka_obs::CapturedTrace)>();
        let workers = self.spawn_count(n);
        if workers == 1 {
            // The cap resolved to one thread (single-core host): claiming
            // items through a channel from one worker is pure overhead.
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let busy: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let out = std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                let busy = &busy;
                std::thread::Builder::new()
                    .name(format!("pka-w{w}"))
                    .spawn_scoped(scope, move || {
                        let start = obs.then(std::time::Instant::now);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let (value, trace) = if tracing {
                                pka_obs::capture_trace(|| f(i, &items[i]))
                            } else {
                                (f(i, &items[i]), pka_obs::CapturedTrace::default())
                            };
                            if tx.send((i, value, trace)).is_err() {
                                break;
                            }
                        }
                        if let Some(start) = start {
                            let ns =
                                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            pka_obs::stage("executor.worker_busy").record_ns(ns);
                            pka_obs::stage(pka_obs::intern(&format!("executor.worker_busy.w{w}")))
                                .record_ns(ns);
                            busy.lock().expect("busy vec").push(ns);
                        }
                    })
                    .expect("spawn executor worker");
            }
            drop(tx);
            let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
            let mut traces: Vec<Option<pka_obs::CapturedTrace>> =
                if tracing { (0..n).map(|_| None).collect() } else { Vec::new() };
            for (i, value, trace) in rx {
                slots[i] = Some(value);
                if tracing {
                    traces[i] = Some(trace);
                }
            }
            for trace in traces.into_iter().flatten() {
                pka_obs::emit_captured(trace);
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("every index yields exactly one result"))
                .collect()
        });
        if obs {
            record_busy_spread(&busy.into_inner().expect("busy vec"));
        }
        out
    }

    /// Splits `0..len` into fixed-size chunks and applies `f` to each,
    /// returning the per-chunk results in chunk order.
    ///
    /// The chunk grid depends only on `len` and `chunk_size` — never on the
    /// worker count — so a fold over the returned vector visits ranges in
    /// the same order for every `Executor`, and per-chunk float reductions
    /// stay bitwise identical across worker counts. This is the substrate
    /// for data-parallel stages whose per-item state lives in slices (the
    /// bounded K-Means assignment step): each chunk task reads its slice of
    /// the shared inputs, returns owned results, and the caller splices
    /// them back in chunk order.
    ///
    /// `f` receives `(chunk_index, range)`; every range but possibly the
    /// last spans exactly `chunk_size` items.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use pka_stats::Executor;
    ///
    /// let exec = Executor::new(4);
    /// let chunk_sums = exec.map_chunks(10, 4, |_, r| r.sum::<usize>());
    /// assert_eq!(chunk_sums, vec![0 + 1 + 2 + 3, 4 + 5 + 6 + 7, 8 + 9]);
    /// ```
    pub fn map_chunks<U, F>(&self, len: usize, chunk_size: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, std::ops::Range<usize>) -> U + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<std::ops::Range<usize>> = (0..len)
            .step_by(chunk_size)
            .map(|lo| lo..(lo + chunk_size).min(len))
            .collect();
        self.map(&chunks, |i, range| f(i, range.clone()))
    }

    /// Repeatedly fans a fixed chunked job out over a *persistent* set of
    /// workers.
    ///
    /// [`map_chunks`](Executor::map_chunks) spawns fresh scoped threads on
    /// every call — fine for one-shot fan-outs, but an iterative algorithm
    /// dispatching a round per iteration (the bounded K-Means assignment
    /// step) would pay ~100 µs of thread spawn per iteration. `rounds`
    /// spawns the workers once, then lets `body` trigger any number of
    /// rounds through the `run` callback it receives: each `run()` executes
    /// `f` over the same fixed chunk grid and returns the per-chunk results
    /// in chunk order, exactly like `map_chunks`.
    ///
    /// `f` is fixed for the lifetime of the pool, so per-round inputs must
    /// reach it through interior mutability (e.g. an `RwLock` the caller
    /// write-locks between rounds — rounds never overlap with `body` code,
    /// so the lock is uncontended by construction).
    ///
    /// The chunk grid depends only on `(len, chunk_size)`, never on the
    /// worker count, and results always splice in chunk order — the same
    /// determinism contract as [`map_chunks`](Executor::map_chunks).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero. A panic inside `f` on a worker
    /// thread is not recovered; callers must pass panic-free jobs.
    pub fn rounds<T, F, B, R>(&self, len: usize, chunk_size: usize, f: F, body: B) -> R
    where
        T: Send,
        F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
        B: FnOnce(&mut dyn FnMut() -> Vec<T>) -> R,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n_chunks = len.div_ceil(chunk_size);
        let chunk_range = |i: usize| {
            let lo = i * chunk_size;
            lo..(lo + chunk_size).min(len)
        };

        if self.is_sequential() || n_chunks <= 1 || self.spawn_count(n_chunks) == 1 {
            let mut run = || (0..n_chunks).map(|i| f(i, chunk_range(i))).collect();
            return body(&mut run);
        }

        struct Ctl<T> {
            m: Mutex<RoundState<T>>,
            work: Condvar,
            done: Condvar,
        }
        struct RoundState<T> {
            round: u64,
            next_chunk: usize,
            remaining: usize,
            results: Vec<Option<T>>,
            traces: Vec<Option<pka_obs::CapturedTrace>>,
            stop: bool,
        }

        let ctl = Ctl {
            m: Mutex::new(RoundState {
                round: 0,
                next_chunk: usize::MAX,
                remaining: 0,
                results: Vec::new(),
                traces: Vec::new(),
                stop: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        };
        let workers = self.spawn_count(n_chunks);
        let obs = pka_obs::enabled();
        let tracing = obs && pka_obs::global().tracing();
        if obs {
            pka_obs::counter("executor.round_pools").incr();
        }

        let busy: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let out = std::thread::scope(|scope| {
            for w in 0..workers {
                let ctl = &ctl;
                let f = &f;
                let busy = &busy;
                let worker = std::thread::Builder::new().name(format!("pka-w{w}"));
                worker.spawn_scoped(scope, move || {
                    let mut seen = 0u64;
                    // Busy time accumulates locally and flushes once at pool
                    // shutdown, so the per-chunk hot path never touches a
                    // shared atomic.
                    let mut busy_ns = 0u64;
                    loop {
                        let mut st = ctl.m.lock().expect("pool mutex");
                        loop {
                            if st.stop {
                                if busy_ns > 0 {
                                    pka_obs::stage("executor.worker_busy").record_ns(busy_ns);
                                    pka_obs::stage(pka_obs::intern(&format!(
                                        "executor.worker_busy.w{w}"
                                    )))
                                    .record_ns(busy_ns);
                                }
                                if obs {
                                    busy.lock().expect("busy vec").push(busy_ns);
                                }
                                return;
                            }
                            if st.round > seen {
                                seen = st.round;
                                break;
                            }
                            st = ctl.work.wait(st).expect("pool mutex");
                        }
                        drop(st);
                        loop {
                            let i = {
                                let mut st = ctl.m.lock().expect("pool mutex");
                                if st.next_chunk >= n_chunks {
                                    break;
                                }
                                let i = st.next_chunk;
                                st.next_chunk += 1;
                                i
                            };
                            let (result, trace) = if obs {
                                let t0 = std::time::Instant::now();
                                let (r, trace) = if tracing {
                                    let (r, t) = pka_obs::capture_trace(|| f(i, chunk_range(i)));
                                    (r, Some(t))
                                } else {
                                    (f(i, chunk_range(i)), None)
                                };
                                busy_ns = busy_ns.saturating_add(
                                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                                );
                                (r, trace)
                            } else {
                                (f(i, chunk_range(i)), None)
                            };
                            let mut st = ctl.m.lock().expect("pool mutex");
                            st.results[i] = Some(result);
                            if let Some(trace) = trace {
                                st.traces[i] = Some(trace);
                            }
                            st.remaining -= 1;
                            if st.remaining == 0 {
                                ctl.done.notify_all();
                            }
                        }
                    }
                })
                .expect("spawn executor worker");
            }

            let mut run = || {
                if obs {
                    pka_obs::counter("executor.rounds").incr();
                }
                let mut st = ctl.m.lock().expect("pool mutex");
                st.round += 1;
                st.next_chunk = 0;
                st.remaining = n_chunks;
                // The result/trace slots are drained (not dropped) after
                // every round, so from round 2 on these resizes are pure
                // refills of already-allocated buffers — a long-lived pool
                // (the streaming tail runs thousands of rounds) allocates
                // its round state exactly once.
                st.results.clear();
                st.results.resize_with(n_chunks, || None);
                st.traces.clear();
                if tracing {
                    st.traces.resize_with(n_chunks, || None);
                }
                ctl.work.notify_all();
                while st.remaining > 0 {
                    st = ctl.done.wait(st).expect("pool mutex");
                }
                let results: Vec<T> = st
                    .results
                    .drain(..)
                    .map(|slot| slot.expect("every chunk yields exactly one result"))
                    .collect();
                let traces: Vec<Option<pka_obs::CapturedTrace>> = st.traces.drain(..).collect();
                drop(st);
                // Flush worker trace output in chunk order, off the pool
                // mutex, before handing results back to `body`.
                for trace in traces.into_iter().flatten() {
                    pka_obs::emit_captured(trace);
                }
                results
            };
            let out = body(&mut run);
            let mut st = ctl.m.lock().expect("pool mutex");
            st.stop = true;
            ctl.work.notify_all();
            drop(st);
            out
        });
        if obs {
            record_busy_spread(&busy.into_inner().expect("busy vec"));
        }
        out
    }

    /// Fallible [`map`](Executor::map): all-`Ok` results in item order, or
    /// the error of the smallest-indexed failing item.
    ///
    /// The sequential path short-circuits at the first error exactly like a
    /// plain `?` loop; the parallel path evaluates every item but selects
    /// the same error a sequential run would have returned, so callers
    /// observe identical `Result` values either way.
    ///
    /// # Errors
    ///
    /// Returns the first (by item index) error produced by `f`.
    pub fn try_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<U, E> + Sync,
    {
        if self.is_sequential() || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect::<Result<Vec<U>, E>>();
        }
        let results = self.map(items, |i, t| f(i, t));
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            match result {
                Ok(value) => out.push(value),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

/// Publish the per-fan-out busy spread: `executor.busy_max_ns` /
/// `executor.busy_min_ns` gauges plus `executor.busy_ratio_pct`
/// (`min * 100 / max`, so 100 means perfectly balanced workers and small
/// values expose chunk imbalance, e.g. in the bounded K-Means assignment
/// step). Last fan-out wins — gauges are instantaneous by design.
fn record_busy_spread(busy: &[u64]) {
    let (Some(&max), Some(&min)) = (busy.iter().max(), busy.iter().min()) else {
        return;
    };
    let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    pka_obs::gauge("executor.busy_max_ns").set(clamp(max));
    pka_obs::gauge("executor.busy_min_ns").set(clamp(min));
    let ratio = if max == 0 {
        100
    } else {
        clamp(min.saturating_mul(100) / max)
    };
    pka_obs::gauge("executor.busy_ratio_pct").set(ratio);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_available_parallelism() {
        let auto = Executor::new(0);
        assert!(auto.workers() >= 1);
        assert_eq!(Executor::new(3).workers(), 3);
        assert!(Executor::sequential().is_sequential());
        assert_eq!(Executor::default(), Executor::sequential());
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 4, 8] {
            let exec = Executor::new(workers);
            let out = exec.map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(&[] as &[u64], |_, &x| x), Vec::<u64>::new());
        assert_eq!(exec.map(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn try_map_returns_first_error_by_index() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 4] {
            let exec = Executor::new(workers);
            let result: Result<Vec<u64>, String> = exec.try_map(&items, |_, &x| {
                if x % 30 == 7 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            });
            // Failing indices are 7, 37, 67, 97; a sequential loop stops at 7.
            assert_eq!(result.unwrap_err(), "bad 7");
        }
    }

    #[test]
    fn map_chunks_covers_the_range_in_order() {
        for (len, chunk) in [(0usize, 3usize), (1, 3), (9, 3), (10, 3), (10, 100), (257, 16)] {
            for workers in [1, 2, 8] {
                let exec = Executor::new(workers);
                let ranges = exec.map_chunks(len, chunk, |i, r| (i, r));
                let mut expected_lo = 0;
                for (i, (idx, r)) in ranges.iter().enumerate() {
                    assert_eq!(*idx, i);
                    assert_eq!(r.start, expected_lo, "len={len} chunk={chunk}");
                    assert!(r.end - r.start <= chunk);
                    expected_lo = r.end;
                }
                assert_eq!(expected_lo, len, "len={len} chunk={chunk}");
            }
        }
    }

    #[test]
    fn map_chunks_grid_is_worker_count_independent() {
        // Per-chunk float sums folded in chunk order must be bitwise stable
        // across worker counts: the grid only depends on (len, chunk_size).
        let items: Vec<f64> = (0..1003).map(|i| (i as f64) * 1.0000001 + 0.1).collect();
        let fold = |workers: usize| -> u64 {
            Executor::new(workers)
                .map_chunks(items.len(), 64, |_, r| items[r].iter().sum::<f64>())
                .iter()
                .sum::<f64>()
                .to_bits()
        };
        let sequential = fold(1);
        for workers in [2, 3, 8] {
            assert_eq!(fold(workers), sequential);
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn map_chunks_rejects_zero_chunk() {
        Executor::new(1).map_chunks(4, 0, |_, _| ());
    }

    #[test]
    fn rounds_matches_map_chunks_across_workers_and_rounds() {
        let items: Vec<f64> = (0..1003).map(|i| (i as f64) * 1.0000001 + 0.1).collect();
        // Per-round inputs flow through interior mutability, as the
        // contract requires.
        let scale = std::sync::RwLock::new(1.0f64);
        for workers in [1, 2, 3, 8] {
            let exec = Executor::new(workers);
            let per_round: Vec<Vec<f64>> = exec.rounds(
                items.len(),
                64,
                |_, r| {
                    let s = *scale.read().unwrap();
                    items[r].iter().map(|x| x * s).sum::<f64>()
                },
                |run| {
                    (0..4)
                        .map(|round| {
                            *scale.write().unwrap() = 1.0 + round as f64;
                            run()
                        })
                        .collect()
                },
            );
            for (round, chunk_sums) in per_round.iter().enumerate() {
                let s = 1.0 + round as f64;
                let expected =
                    Executor::sequential().map_chunks(items.len(), 64, |_, r| {
                        items[r].iter().map(|x| x * s).sum::<f64>()
                    });
                // Bitwise: same chunk grid, same in-chunk fold order.
                assert_eq!(
                    chunk_sums.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    expected.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "workers={workers} round={round}"
                );
            }
        }
    }

    #[test]
    fn rounds_handles_empty_and_single_chunk() {
        for workers in [1, 4] {
            let exec = Executor::new(workers);
            let empty: Vec<Vec<usize>> =
                exec.rounds(0, 8, |i, _| i, |run| vec![run(), run()]);
            assert_eq!(empty, vec![Vec::new(), Vec::new()]);
            let single: Vec<usize> = exec.rounds(5, 8, |_, r| r.len(), |run| run());
            assert_eq!(single, vec![5]);
        }
    }

    #[test]
    fn rounds_with_zero_rounds_shuts_down_cleanly() {
        let exec = Executor::new(4);
        let out: u32 = exec.rounds(100, 8, |i, _| i, |_| 7);
        assert_eq!(out, 7);
    }

    #[test]
    fn rounds_reuses_slots_across_many_rounds_with_owned_results() {
        // Heap-owning results stress the drain/refill of the persistent
        // round buffers: every slot must come back exactly once per round,
        // in chunk order, for hundreds of rounds.
        let round_no = std::sync::RwLock::new(0usize);
        for workers in [2, 4] {
            let exec = Executor::new(workers);
            exec.rounds(
                100,
                16,
                |i, r| {
                    let round = *round_no.read().unwrap();
                    vec![format!("r{round}c{i}"), format!("len{}", r.len())]
                },
                |run| {
                    for round in 0..300 {
                        *round_no.write().unwrap() = round;
                        let out: Vec<Vec<String>> = run();
                        assert_eq!(out.len(), 7);
                        for (i, chunk) in out.iter().enumerate() {
                            assert_eq!(chunk[0], format!("r{round}c{i}"));
                        }
                        assert_eq!(out[6][1], "len4", "last chunk covers 96..100");
                    }
                },
            );
        }
    }

    #[test]
    fn traced_map_emits_worker_lines_in_item_order() {
        // Spans/events emitted inside work items must appear in the trace
        // file in item order, not completion order, for every worker count.
        let registry = pka_obs::global();
        let path = std::env::temp_dir().join("pka_stats_test_exec_trace.jsonl");
        let items: Vec<u64> = (0..64).collect();
        let mut per_workers: Vec<Vec<u64>> = Vec::new();
        for workers in [1usize, 4] {
            registry.trace_to(&path).expect("open sink");
            registry.enable();
            let out = Executor::new(workers).map(&items, |i, &x| {
                pka_obs::trace_event("test.exec_item", serde_json::json!({ "item": i }));
                x
            });
            registry.disable();
            registry.close_trace().expect("close sink");
            assert_eq!(out, items);
            let body = std::fs::read_to_string(&path).expect("read trace");
            per_workers.push(
                body.lines()
                    .filter_map(|l| serde_json::from_str::<serde_json::Value>(l).ok())
                    .filter(|v| v["name"].as_str() == Some("test.exec_item"))
                    .map(|v| v["fields"]["item"].as_u64().unwrap())
                    .collect(),
            );
        }
        std::fs::remove_file(&path).ok();
        let expected: Vec<u64> = (0..64).collect();
        assert_eq!(per_workers[0], expected, "sequential order");
        assert_eq!(per_workers[1], expected, "parallel order");
    }

    #[test]
    fn float_reduction_is_bitwise_identical_across_worker_counts() {
        // Awkward magnitudes make float addition order-sensitive; identical
        // bit patterns across worker counts prove results fold in item
        // order, not completion order.
        let items: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64 - 500.0) * 1e10f64.powi((i % 7) as i32 - 3))
            .collect();
        let sum_with = |workers: usize| -> u64 {
            let exec = Executor::new(workers);
            exec.map(&items, |_, &x| x * 1.000000001 + 0.125)
                .iter()
                .sum::<f64>()
                .to_bits()
        };
        let sequential = sum_with(1);
        for workers in [2, 3, 8] {
            assert_eq!(sum_with(workers), sequential);
        }
    }
}
