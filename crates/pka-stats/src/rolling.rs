use std::collections::VecDeque;

/// Rolling mean and standard deviation over the last `window` samples.
///
/// This is the primitive behind *Principal Kernel Projection*'s IPC-stability
/// detector (Section 3.2 of the paper): during simulation the instantaneous
/// IPC is pushed once per sampling interval, and the kernel is declared
/// quasi-stable once the windowed standard deviation falls below the
/// user-selected threshold `s`.
///
/// The implementation keeps the window in a ring buffer and recomputes the
/// moments exactly (two-pass) on demand. PKP windows are tiny — the default
/// 3000-cycle window at a 200-cycle sampling interval holds 15 samples — so
/// the O(window) query cost is negligible, and unlike running-moment
/// schemes the result is immune to catastrophic cancellation no matter how
/// far the stream level sits from zero.
///
/// # Examples
///
/// ```
/// use pka_stats::RollingStats;
///
/// let mut r = RollingStats::new(3);
/// for x in [10.0, 10.0, 10.0, 10.0] {
///     r.push(x);
/// }
/// assert!(r.is_full());
/// assert_eq!(r.std_dev(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RollingStats {
    window: usize,
    buf: VecDeque<f64>,
}

impl RollingStats {
    /// Creates a rolling accumulator over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling window must be non-empty");
        Self {
            window,
            buf: VecDeque::with_capacity(window),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Returns `true` once the window holds `window` samples.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.window
    }

    /// Pushes a sample, evicting the oldest one if the window is full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(x);
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Mean of the samples currently in the window, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.buf.iter().sum::<f64>() / self.buf.len() as f64
        }
    }

    /// Population variance of the window contents, or `0.0` if empty.
    ///
    /// Computed with the two-pass formula around the window mean, so the
    /// result is exact up to rounding even when the samples share a huge
    /// common offset (the `E[x²] − E[x]²` form loses all precision there).
    pub fn variance(&self) -> f64 {
        let n = self.buf.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.mean();
        self.buf.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64
    }

    /// Population standard deviation of the window contents.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard deviation normalised by the mean (coefficient of variation),
    /// or `f64::INFINITY` when the mean is zero but samples vary.
    ///
    /// PKP's threshold `s` is interpreted against this quantity so a single
    /// setting works for kernels with very different absolute IPC.
    pub fn relative_std_dev(&self) -> f64 {
        let mean = self.mean();
        let sd = self.std_dev();
        if mean.abs() < f64::EPSILON {
            if sd == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            sd / mean.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_panics() {
        let _ = RollingStats::new(0);
    }

    #[test]
    fn partial_window() {
        let mut r = RollingStats::new(10);
        r.push(2.0);
        r.push(4.0);
        assert!(!r.is_full());
        assert_eq!(r.len(), 2);
        close(r.mean(), 3.0);
        close(r.std_dev(), 1.0);
    }

    #[test]
    fn eviction_matches_naive_window() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37) % 17) as f64 - 5.0).collect();
        let w = 16;
        let mut r = RollingStats::new(w);
        for (i, &x) in xs.iter().enumerate() {
            r.push(x);
            let lo = (i + 1).saturating_sub(w);
            let win = &xs[lo..=i];
            let mean = win.iter().sum::<f64>() / win.len() as f64;
            let var = win.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / win.len() as f64;
            close(r.mean(), mean);
            close(r.variance(), var);
        }
    }

    #[test]
    fn constant_stream_has_zero_relative_std() {
        let mut r = RollingStats::new(5);
        for _ in 0..20 {
            r.push(7.5);
        }
        assert_eq!(r.std_dev(), 0.0);
        assert_eq!(r.relative_std_dev(), 0.0);
    }

    #[test]
    fn zero_mean_varying_stream_is_infinite_relative_std() {
        let mut r = RollingStats::new(2);
        r.push(-1.0);
        r.push(1.0);
        assert_eq!(r.relative_std_dev(), f64::INFINITY);
    }

    #[test]
    fn clear_resets() {
        let mut r = RollingStats::new(3);
        r.push(1.0);
        r.push(2.0);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
    }

    #[test]
    fn large_offset_window_of_zeros_has_exact_zero_variance() {
        // Regression distilled from a recorded proptest failure: after a
        // sample near ±1e6, a window of all zeros must report variance 0.
        // The old running-moment implementation (offset pinned to the first
        // sample) returned ~1e-4 here from catastrophic cancellation.
        let xs = [
            -730657.6364706054,
            0.0,
            915433.2212871738,
            0.0,
            0.0,
            0.0,
            -626979.5805953905,
            778214.712507199,
            0.0,
            0.0,
            0.0,
            0.0,
            474379.78679268557,
            695958.2280195466,
            0.0,
            0.0,
            0.0,
            343666.67055749206,
            0.0,
            -234067.1792150805,
            731542.2273515295,
            591461.0736243472,
            0.0,
            249306.42625210717,
            -350872.2229947506,
        ];
        let w = 5;
        let mut r = RollingStats::new(w);
        for (i, &x) in xs.iter().enumerate() {
            r.push(x);
            let lo = (i + 1).saturating_sub(w);
            let win = &xs[lo..=i];
            let mean = win.iter().sum::<f64>() / win.len() as f64;
            let var = win.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / win.len() as f64;
            let var_scale = var.abs().max(1.0);
            assert!(
                (r.variance() - var).abs() / var_scale < 1e-6,
                "variance {} vs {} at i={i}",
                r.variance(),
                var
            );
        }
        // Once the huge first sample has been evicted and the window holds
        // only zeros, the variance must be *exactly* zero — the old
        // implementation kept the first sample as its offset forever and
        // reported ~1e-4 here.
        let mut z = RollingStats::new(w);
        z.push(-730657.6364706054);
        for _ in 0..w {
            z.push(0.0);
        }
        assert_eq!(z.variance(), 0.0);
        assert_eq!(z.relative_std_dev(), 0.0);
    }

    #[test]
    fn long_stream_does_not_drift() {
        // Push far more samples than REBUILD_PERIOD with an awkward offset
        // and confirm the windowed stats still match a naive recomputation.
        let mut r = RollingStats::new(8);
        let f = |i: u64| 1e7 + ((i * 2654435761) % 1000) as f64 / 10.0;
        let n = 70_000u64;
        for i in 0..n {
            r.push(f(i));
        }
        let win: Vec<f64> = (n - 8..n).map(f).collect();
        let mean = win.iter().sum::<f64>() / 8.0;
        let var = win.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 8.0;
        assert!((r.mean() - mean).abs() < 1e-6);
        assert!((r.variance() - var).abs() < 1e-3);
    }
}
