//! Runtime-dispatched SIMD tiers for the numeric hot loops.
//!
//! Every kernel in the workspace ships in (up to) three runtime tiers —
//! scalar, SSE4.1 (2 lanes of `f64`) and AVX2 (4 lanes) — selected once per
//! process by [`active_tier`] via `is_x86_feature_detected!`. The scalar
//! code is the *specification*, not a fallback of convenience: the default
//! SIMD tier is proven **bitwise equal** to the scalar accumulation order by
//! the differential parity suite (`tests/simd_parity.rs`), because PKA's
//! checkpoints, traces and golden tables are pinned byte-for-byte.
//!
//! The bitwise guarantee is achieved *by construction*, not by tolerance:
//! default-tier kernels assign each SIMD lane to an **independent output
//! element** (a centroid, a principal component, a point, a feature
//! dimension) and never reassociate the additions inside any one output's
//! reduction. Each lane then performs exactly the scalar op sequence —
//! IEEE-754 sub/mul/add/div/sqrt are correctly rounded and element-wise
//! identical in vector registers — so equality is exact. FMA is never used
//! (the scalar code rounds between the multiply and the add).
//!
//! The opt-in **fast-math** tier ([`set_fast_math`], plumbed from the
//! `--fast-math` flag of both binaries) additionally vectorises *within* a
//! single reduction by splitting it across lanes and reassociating the
//! horizontal sum. That changes rounding; the relative error of a
//! reassociated sum of `n` well-conditioned terms is bounded by
//! `n · 2⁻⁵³ / (1 − n · 2⁻⁵³)` of the exact sum (Higham, *Accuracy and
//! Stability of Numerical Algorithms*, §4.2), which the parity suite
//! enforces with explicit tolerances. Fast-math never touches streaming
//! checkpoint state or the Hamerly bounds logic — see DESIGN.md, "SIMD
//! dispatch tiers".
//!
//! Forcing the scalar tier: set `PKA_NO_SIMD=1` in the environment (read
//! once, before the first kernel runs). CI runs the whole suite that way so
//! the fallback can never rot.

// The crate is `deny(unsafe_code)`; SIMD intrinsics are the one audited
// exception, confined to this module.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The instruction tier a kernel executes with.
///
/// Ordered by capability: every tier can also run any lower tier's kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Plain Rust loops — the specification all other tiers must match.
    Scalar,
    /// SSE4.1: 2 × `f64` lanes (baseline `blendv` for mask selects).
    Sse41,
    /// AVX2: 4 × `f64` lanes.
    Avx2,
}

impl SimdTier {
    /// Number of `f64` lanes processed per vector op.
    pub fn lanes(self) -> usize {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Sse41 => 2,
            SimdTier::Avx2 => 4,
        }
    }

    /// Stable human-readable label (used in run manifests and logs).
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse41 => "sse4.1",
            SimdTier::Avx2 => "avx2",
        }
    }
}

/// Detects the best available tier, honouring the `PKA_NO_SIMD` override.
///
/// Called once by [`active_tier`]; exposed separately so tests can assert
/// detection behaviour without poking the process-wide cache.
pub fn detect_tier() -> SimdTier {
    if std::env::var_os("PKA_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0") {
        return SimdTier::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            return SimdTier::Sse41;
        }
    }
    SimdTier::Scalar
}

/// The process-wide tier, detected on first use and cached.
pub fn active_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(detect_tier)
}

static FAST_MATH: AtomicBool = AtomicBool::new(false);

/// Enables (or disables) the opt-in fast-math tier process-wide.
///
/// Wired to the `--fast-math` flag of the `pka` and `tables` binaries; off
/// by default. Has no effect when the active tier is [`SimdTier::Scalar`].
pub fn set_fast_math(on: bool) {
    FAST_MATH.store(on, Ordering::Relaxed);
}

/// Whether the fast-math tier is enabled.
pub fn fast_math() -> bool {
    FAST_MATH.load(Ordering::Relaxed)
}

/// Degenerate-variance threshold shared by every z-score implementation:
/// features whose running population std-dev is at or below this are
/// centred but not scaled.
pub const ZSCORE_STD_FLOOR: f64 = 1e-12;

// ---------------------------------------------------------------------------
// Welford column folds (lane = feature dimension)
// ---------------------------------------------------------------------------
//
// Welford's recurrence is sequential *per dimension* but the dimensions are
// independent, so vectorising across them keeps every dimension's op
// sequence — and therefore its bits — identical to `OnlineStats::push`.
// There is deliberately no fast-math variant: a sequential recurrence has
// no reduction to reassociate, so the two tiers coincide.

/// One Welford step for every feature dimension: the scalar specification.
///
/// `n` is the sample count *after* this sample (`count as f64` once the
/// caller has incremented it). Min/max tracking stays with the caller —
/// their NaN semantics (`f64::min`/`f64::max`) are platform-lowering
/// subtleties the vector tiers deliberately do not re-implement.
pub fn welford_fold_scalar(n: f64, xs: &[f64], mean: &mut [f64], m2: &mut [f64]) {
    debug_assert_eq!(xs.len(), mean.len());
    debug_assert_eq!(xs.len(), m2.len());
    for ((&x, mean), m2) in xs.iter().zip(mean.iter_mut()).zip(m2.iter_mut()) {
        let delta = x - *mean;
        *mean += delta / n;
        *m2 += delta * (x - *mean);
    }
}

/// One Welford step for every feature dimension, in the requested tier.
///
/// Bitwise identical to [`welford_fold_scalar`] for every tier and input
/// (including NaN, ±inf and denormals) — asserted by the parity suite.
pub fn welford_fold(tier: SimdTier, n: f64, xs: &[f64], mean: &mut [f64], m2: &mut [f64]) {
    debug_assert_eq!(xs.len(), mean.len());
    debug_assert_eq!(xs.len(), m2.len());
    match tier {
        SimdTier::Scalar => welford_fold_scalar(n, xs, mean, m2),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { x86::welford_fold_sse2(n, xs, mean, m2) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { x86::welford_fold_avx2(n, xs, mean, m2) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => welford_fold_scalar(n, xs, mean, m2),
    }
}

/// Z-scores `xs` in place against per-dimension running moments: the scalar
/// specification.
///
/// `n` is the current sample count as `f64`. Matches the streaming
/// normalizer's degenerate-column rule: a dimension is divided by its
/// population std-dev only when that std-dev exceeds
/// [`ZSCORE_STD_FLOOR`]; otherwise it is centred only. With `n == 0` the
/// std-dev is NaN, the comparison fails, and the dimension is centred by
/// `mean == 0.0` — exactly the empty-accumulator behaviour.
pub fn zscore_apply_scalar(n: f64, mean: &[f64], m2: &[f64], xs: &mut [f64]) {
    debug_assert_eq!(xs.len(), mean.len());
    debug_assert_eq!(xs.len(), m2.len());
    for ((x, &mean), &m2) in xs.iter_mut().zip(mean).zip(m2) {
        let std = (m2 / n).sqrt();
        *x -= mean;
        if std > ZSCORE_STD_FLOOR {
            *x /= std;
        }
    }
}

/// Z-scores `xs` in place, in the requested tier; bitwise identical to
/// [`zscore_apply_scalar`].
pub fn zscore_apply(tier: SimdTier, n: f64, mean: &[f64], m2: &[f64], xs: &mut [f64]) {
    debug_assert_eq!(xs.len(), mean.len());
    debug_assert_eq!(xs.len(), m2.len());
    match tier {
        SimdTier::Scalar => zscore_apply_scalar(n, mean, m2, xs),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { x86::zscore_apply_sse41(n, mean, m2, xs) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { x86::zscore_apply_avx2(n, mean, m2, xs) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => zscore_apply_scalar(n, mean, m2, xs),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The vector implementations. Each function's safety contract is the
    //! corresponding target feature being present, which the dispatchers
    //! guarantee via [`super::active_tier`] / explicit tier arguments that
    //! tests only pass after their own detection check.

    use std::arch::x86_64::*;

    /// # Safety
    /// Requires SSE2 (baseline on `x86_64`); named `sse2` because the
    /// Welford step needs no SSE4.1 instruction, but it is only dispatched
    /// on the SSE4.1 tier.
    pub unsafe fn welford_fold_sse2(n: f64, xs: &[f64], mean: &mut [f64], m2: &mut [f64]) {
        unsafe {
            let nv = _mm_set1_pd(n);
            let pairs = xs.len() / 2;
            for b in 0..pairs {
                let i = b * 2;
                let x = _mm_loadu_pd(xs.as_ptr().add(i));
                let mu = _mm_loadu_pd(mean.as_ptr().add(i));
                let m = _mm_loadu_pd(m2.as_ptr().add(i));
                let delta = _mm_sub_pd(x, mu);
                let mu_next = _mm_add_pd(mu, _mm_div_pd(delta, nv));
                let m_next = _mm_add_pd(m, _mm_mul_pd(delta, _mm_sub_pd(x, mu_next)));
                _mm_storeu_pd(mean.as_mut_ptr().add(i), mu_next);
                _mm_storeu_pd(m2.as_mut_ptr().add(i), m_next);
            }
            let t = pairs * 2;
            super::welford_fold_scalar(n, &xs[t..], &mut mean[t..], &mut m2[t..]);
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn welford_fold_avx2(n: f64, xs: &[f64], mean: &mut [f64], m2: &mut [f64]) {
        unsafe {
            let nv = _mm256_set1_pd(n);
            let quads = xs.len() / 4;
            for b in 0..quads {
                let i = b * 4;
                let x = _mm256_loadu_pd(xs.as_ptr().add(i));
                let mu = _mm256_loadu_pd(mean.as_ptr().add(i));
                let m = _mm256_loadu_pd(m2.as_ptr().add(i));
                let delta = _mm256_sub_pd(x, mu);
                let mu_next = _mm256_add_pd(mu, _mm256_div_pd(delta, nv));
                let m_next = _mm256_add_pd(m, _mm256_mul_pd(delta, _mm256_sub_pd(x, mu_next)));
                _mm256_storeu_pd(mean.as_mut_ptr().add(i), mu_next);
                _mm256_storeu_pd(m2.as_mut_ptr().add(i), m_next);
            }
            let t = quads * 4;
            super::welford_fold_scalar(n, &xs[t..], &mut mean[t..], &mut m2[t..]);
        }
    }

    /// # Safety
    /// Requires SSE4.1 (`blendvpd`).
    #[target_feature(enable = "sse4.1")]
    pub unsafe fn zscore_apply_sse41(n: f64, mean: &[f64], m2: &[f64], xs: &mut [f64]) {
        unsafe {
            let nv = _mm_set1_pd(n);
            let floor = _mm_set1_pd(super::ZSCORE_STD_FLOOR);
            let pairs = xs.len() / 2;
            for b in 0..pairs {
                let i = b * 2;
                let x = _mm_loadu_pd(xs.as_ptr().add(i));
                let mu = _mm_loadu_pd(mean.as_ptr().add(i));
                let m = _mm_loadu_pd(m2.as_ptr().add(i));
                let std = _mm_sqrt_pd(_mm_div_pd(m, nv));
                let centred = _mm_sub_pd(x, mu);
                // std > floor per lane; NaN std compares false, exactly like
                // the scalar `if`.
                let scale = _mm_cmpgt_pd(std, floor);
                let scaled = _mm_div_pd(centred, std);
                _mm_storeu_pd(xs.as_mut_ptr().add(i), _mm_blendv_pd(centred, scaled, scale));
            }
            let t = pairs * 2;
            super::zscore_apply_scalar(n, &mean[t..], &m2[t..], &mut xs[t..]);
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn zscore_apply_avx2(n: f64, mean: &[f64], m2: &[f64], xs: &mut [f64]) {
        unsafe {
            let nv = _mm256_set1_pd(n);
            let floor = _mm256_set1_pd(super::ZSCORE_STD_FLOOR);
            let quads = xs.len() / 4;
            for b in 0..quads {
                let i = b * 4;
                let x = _mm256_loadu_pd(xs.as_ptr().add(i));
                let mu = _mm256_loadu_pd(mean.as_ptr().add(i));
                let m = _mm256_loadu_pd(m2.as_ptr().add(i));
                let std = _mm256_sqrt_pd(_mm256_div_pd(m, nv));
                let centred = _mm256_sub_pd(x, mu);
                let scale = _mm256_cmp_pd(std, floor, _CMP_GT_OQ);
                let scaled = _mm256_div_pd(centred, std);
                _mm256_storeu_pd(
                    xs.as_mut_ptr().add(i),
                    _mm256_blendv_pd(centred, scaled, scale),
                );
            }
            let t = quads * 4;
            super::zscore_apply_scalar(n, &mean[t..], &m2[t..], &mut xs[t..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiers actually runnable on this machine (scalar always; vector tiers
    /// only when the CPU has them).
    fn runnable_tiers() -> Vec<SimdTier> {
        let mut tiers = vec![SimdTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.1") {
                tiers.push(SimdTier::Sse41);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                tiers.push(SimdTier::Avx2);
            }
        }
        tiers
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn tier_order_and_lanes() {
        assert!(SimdTier::Scalar < SimdTier::Sse41);
        assert!(SimdTier::Sse41 < SimdTier::Avx2);
        assert_eq!(SimdTier::Scalar.lanes(), 1);
        assert_eq!(SimdTier::Sse41.lanes(), 2);
        assert_eq!(SimdTier::Avx2.lanes(), 4);
    }

    #[test]
    fn welford_fold_bitwise_across_tiers_and_widths() {
        for d in 0..17 {
            let xs: Vec<f64> = (0..d).map(|j| (j as f64 * 0.7).sin() * 1e3).collect();
            let mut mean0 = vec![0.0; d];
            let mut m20 = vec![0.0; d];
            // Three folds so mean/m2 are non-trivial.
            for step in 1..=3u64 {
                welford_fold_scalar(step as f64, &xs, &mut mean0, &mut m20);
            }
            for tier in runnable_tiers() {
                let mut mean = vec![0.0; d];
                let mut m2 = vec![0.0; d];
                for step in 1..=3u64 {
                    welford_fold(tier, step as f64, &xs, &mut mean, &mut m2);
                }
                assert_eq!(bits(&mean), bits(&mean0), "{tier:?} d={d}");
                assert_eq!(bits(&m2), bits(&m20), "{tier:?} d={d}");
            }
        }
    }

    #[test]
    fn zscore_bitwise_including_degenerate_and_empty_counts() {
        let mean = [1.0, -2.0, 0.0, 1e300, 5.0];
        let m2 = [4.0, 0.0, 1e-30, 1.0, f64::NAN];
        for n in [0.0, 1.0, 7.0] {
            for tier in runnable_tiers() {
                let mut a = [0.5, -3.0, 1.0, 1e300, 2.0];
                let mut b = a;
                zscore_apply_scalar(n, &mean, &m2, &mut a);
                zscore_apply(tier, n, &mean, &m2, &mut b);
                assert_eq!(bits(&a), bits(&b), "{tier:?} n={n}");
            }
        }
    }

    #[test]
    fn fast_math_flag_round_trips() {
        assert!(!fast_math());
        set_fast_math(true);
        assert!(fast_math());
        set_fast_math(false);
        assert!(!fast_math());
    }
}
