//! Bootstrap confidence intervals for suite-level aggregates.
//!
//! The paper reports suite means and geomeans as point estimates; when this
//! reproduction's harness aggregates 27 Rodinia errors into one number, a
//! resampled confidence interval says how much that number should be
//! trusted. Deterministic: the resampling stream is seeded.

use crate::hash::UnitStream;
use crate::summary::{geomean, mean, percentile};

/// A two-sided bootstrap confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The statistic computed on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub low: f64,
    /// Upper bound.
    pub high: f64,
    /// The confidence level used, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }

    /// Returns `true` if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.low..=self.high).contains(&value)
    }
}

const RESAMPLES: usize = 1_000;

/// Percentile-bootstrap confidence interval of an arbitrary statistic.
///
/// # Panics
///
/// Panics if `xs` is empty or `level` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use pka_stats::bootstrap::{bootstrap_ci, ConfidenceInterval};
/// use pka_stats::summary::mean;
///
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let ci = bootstrap_ci(&xs, mean, 0.95, 7);
/// assert!(ci.contains(3.0));
/// assert!(ci.low < ci.high);
/// ```
pub fn bootstrap_ci(
    xs: &[f64],
    statistic: fn(&[f64]) -> f64,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!xs.is_empty(), "bootstrap needs at least one sample");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1)"
    );
    let estimate = statistic(xs);
    let mut rng = UnitStream::new(seed ^ 0x1357_9bdf_2468_aceb);
    let mut stats = Vec::with_capacity(RESAMPLES);
    let mut resample = vec![0.0; xs.len()];
    for _ in 0..RESAMPLES {
        for slot in resample.iter_mut() {
            let idx = (rng.next_f64() * xs.len() as f64) as usize % xs.len();
            *slot = xs[idx];
        }
        stats.push(statistic(&resample));
    }
    let alpha = (1.0 - level) / 2.0 * 100.0;
    ConfidenceInterval {
        estimate,
        low: percentile(&stats, alpha),
        high: percentile(&stats, 100.0 - alpha),
        level,
    }
}

/// Bootstrap interval around the arithmetic mean.
///
/// # Panics
///
/// Same conditions as [`bootstrap_ci`].
pub fn mean_ci(xs: &[f64], level: f64, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(xs, mean, level, seed)
}

/// Bootstrap interval around the geometric mean (the paper's speedup
/// aggregate).
///
/// # Panics
///
/// Same conditions as [`bootstrap_ci`].
pub fn geomean_ci(xs: &[f64], level: f64, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(xs, geomean, level, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_estimate() {
        let xs: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let ci = mean_ci(&xs, 0.95, 1);
        assert!(ci.low <= ci.estimate && ci.estimate <= ci.high);
        assert!(ci.contains(20.5));
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let a = mean_ci(&xs, 0.9, 42);
        let b = mean_ci(&xs, 0.9, 42);
        assert_eq!(a, b);
        let c = mean_ci(&xs, 0.9, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn tighter_level_gives_narrower_interval() {
        let xs: Vec<f64> = (0..60).map(|i| (i % 13) as f64).collect();
        let wide = mean_ci(&xs, 0.99, 5);
        let narrow = mean_ci(&xs, 0.5, 5);
        assert!(narrow.half_width() < wide.half_width());
    }

    #[test]
    fn constant_sample_collapses() {
        let xs = [7.0; 20];
        let ci = geomean_ci(&xs, 0.95, 0);
        // log/exp round-tripping leaves the geomean a few ulps off 7.0.
        assert!((ci.low - 7.0).abs() < 1e-12, "{}", ci.low);
        assert!((ci.high - 7.0).abs() < 1e-12, "{}", ci.high);
        assert!(ci.half_width() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        let _ = mean_ci(&[], 0.95, 0);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn bad_level_panics() {
        let _ = mean_ci(&[1.0], 1.5, 0);
    }
}
