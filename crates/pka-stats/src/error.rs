//! Error metrics used by the paper's evaluation.
//!
//! The paper reports *absolute percentage error* of projected cycle counts
//! against a reference (silicon or full simulation), *mean* absolute
//! percentage error across suites, and *mean absolute error* of speedup
//! predictions (Figure 10). These helpers centralise the exact definitions so
//! every crate reports errors identically.

/// Absolute percentage error of a `predicted` value against a `reference`,
/// in percent.
///
/// Returns `0.0` when both values are zero, and `f64::INFINITY` when only the
/// reference is zero (a prediction of something from nothing).
///
/// # Examples
///
/// ```
/// use pka_stats::error::abs_pct_error;
///
/// assert_eq!(abs_pct_error(110.0, 100.0), 10.0);
/// assert_eq!(abs_pct_error(90.0, 100.0), 10.0);
/// ```
pub fn abs_pct_error(predicted: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((predicted - reference) / reference).abs() * 100.0
    }
}

/// Signed percentage error (positive when over-predicted), in percent.
///
/// # Examples
///
/// ```
/// use pka_stats::error::signed_pct_error;
///
/// assert_eq!(signed_pct_error(90.0, 100.0), -10.0);
/// ```
pub fn signed_pct_error(predicted: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - reference) / reference * 100.0
    }
}

/// Mean absolute percentage error over paired samples, in percent.
///
/// Pairs whose reference is zero are skipped (they carry no scale
/// information); if every pair is skipped the result is `0.0`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use pka_stats::error::mape;
///
/// let e = mape(&[110.0, 95.0], &[100.0, 100.0]);
/// assert!((e - 7.5).abs() < 1e-12);
/// ```
pub fn mape(predicted: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        reference.len(),
        "mape requires equal-length slices"
    );
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&p, &r) in predicted.iter().zip(reference) {
        if r != 0.0 {
            sum += ((p - r) / r).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64 * 100.0
    }
}

/// Mean absolute error over paired samples (same units as the inputs).
///
/// Used by the Figure 10 case study, which reports MAE of predicted speedups
/// with respect to silicon.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use pka_stats::error::mean_abs_error;
///
/// assert_eq!(mean_abs_error(&[1.0, 3.0], &[2.0, 2.0]), 1.0);
/// ```
pub fn mean_abs_error(predicted: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        reference.len(),
        "mean_abs_error requires equal-length slices"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(reference)
        .map(|(&p, &r)| (p - r).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_pct_error_basics() {
        assert_eq!(abs_pct_error(0.0, 0.0), 0.0);
        assert_eq!(abs_pct_error(1.0, 0.0), f64::INFINITY);
        assert_eq!(abs_pct_error(100.0, 100.0), 0.0);
        assert!((abs_pct_error(73.5, 100.0) - 26.5).abs() < 1e-12);
    }

    #[test]
    fn signed_error_sign() {
        assert!(signed_pct_error(120.0, 100.0) > 0.0);
        assert!(signed_pct_error(80.0, 100.0) < 0.0);
        assert_eq!(signed_pct_error(0.0, 0.0), 0.0);
    }

    #[test]
    fn mape_skips_zero_reference() {
        let e = mape(&[5.0, 110.0], &[0.0, 100.0]);
        assert!((e - 10.0).abs() < 1e-12);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
        assert_eq!(mape(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mape_length_mismatch_panics() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn mae_empty_is_zero() {
        assert_eq!(mean_abs_error(&[], &[]), 0.0);
    }
}
