//! Per-worker busy observability for [`pka_stats::Executor`] fan-outs.
//!
//! Lives in its own integration-test binary (= its own process) because it
//! enables the process-global `pka-obs` registry; sharing a process with
//! the unit tests would let unrelated fan-outs race the gauge assertions.

use pka_stats::Executor;

/// One combined test: the global registry is process-wide, so sequential
/// phases inside a single `#[test]` keep snapshots race-free.
///
/// The executor caps spawned threads at the hardware thread count
/// ([`Executor::spawn_count`]), so the expected stage shape depends on the
/// host: on a multi-core machine the configured workers each publish a
/// busy stage; on a single-core one the fan-out runs inline and publishes
/// none. Both contracts are asserted by branching on `spawn_count`.
#[test]
fn fan_outs_publish_per_worker_busy_and_spread_gauges() {
    pka_obs::reset();
    pka_obs::enable();

    // Phase 1: a plain map over enough items to keep all workers busy.
    let items: Vec<u64> = (0..4096).collect();
    let exec = Executor::new(4);
    let spawned = exec.spawn_count(items.len());
    let out = exec.map(&items, |_, &x| {
        // Enough work per item that every worker claims at least one.
        (0..64).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
    });
    assert_eq!(out.len(), items.len());

    let snap = pka_obs::snapshot();
    if spawned > 1 {
        let aggregate = snap
            .stages
            .get("executor.worker_busy")
            .expect("aggregate worker stage recorded");
        assert_eq!(
            aggregate.calls, spawned as u64,
            "one busy record per spawned worker"
        );
        let per_worker_total: u64 = (0..spawned)
            .map(|w| {
                snap.stages
                    .get(&format!("executor.worker_busy.w{w}"))
                    .map(|s| {
                        assert_eq!(s.calls, 1, "worker {w} records once per fan-out");
                        s.total_ns
                    })
                    .unwrap_or_else(|| panic!("per-worker stage w{w} recorded"))
            })
            .sum();
        assert_eq!(
            per_worker_total, aggregate.total_ns,
            "per-worker stages partition the aggregate"
        );

        let max = snap.gauges["executor.busy_max_ns"];
        let min = snap.gauges["executor.busy_min_ns"];
        let ratio = snap.gauges["executor.busy_ratio_pct"];
        assert!(max >= min, "max busy {max} >= min busy {min}");
        assert!(min >= 0);
        assert!((0..=100).contains(&ratio), "ratio {ratio} is a percentage");
        if max > 0 {
            assert_eq!(ratio, min * 100 / max);
        }
    } else {
        // Inline path (single hardware thread): no worker threads, no
        // per-worker stages — the fan-out must be indistinguishable from
        // the sequential executor's.
        assert!(
            !snap.stages.contains_key("executor.worker_busy"),
            "inline fan-out publishes no worker stages"
        );
    }

    // Phase 2: a round pool flushes per-worker busy at shutdown too.
    pka_obs::reset();
    let sums: Vec<Vec<u64>> = exec.rounds(
        items.len(),
        64,
        |_, r| items[r].iter().sum::<u64>(),
        |run| (0..3).map(|_| run()).collect(),
    );
    assert_eq!(sums.len(), 3);
    let snap = pka_obs::snapshot();
    if spawned > 1 {
        assert!(
            snap.stages.contains_key("executor.worker_busy"),
            "round pool records the aggregate stage"
        );
        assert!(
            (0..spawned).any(|w| snap.stages.contains_key(&format!("executor.worker_busy.w{w}"))),
            "round pool records at least one per-worker stage"
        );
        let max = snap.gauges["executor.busy_max_ns"];
        let min = snap.gauges["executor.busy_min_ns"];
        assert!(max >= min);
        assert!((0..=100).contains(&snap.gauges["executor.busy_ratio_pct"]));
    } else {
        assert!(
            !snap.stages.contains_key("executor.worker_busy"),
            "inline round pool publishes no worker stages"
        );
    }

    // Phase 3: observability must not perturb results — same bits as the
    // sequential run even with the registry enabled.
    let observed = exec.map(&items, |_, &x| (x as f64) * 1.000000001 + 0.125);
    pka_obs::disable();
    let plain = Executor::sequential().map(&items, |_, &x| (x as f64) * 1.000000001 + 0.125);
    assert_eq!(
        observed.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        plain.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}
