//! Vendored minimal property-testing framework for offline builds.
//!
//! A drop-in for the subset of `proptest` used by this workspace: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], and the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`] macros. Cases are generated from a deterministic
//! splitmix64 stream seeded by the test name, so failures reproduce
//! exactly; there is no shrinking — the failing case index and seed are
//! reported instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A generator whose seed is derived from the test name, so every run
    /// of the same test sees the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Failure plumbing
// ---------------------------------------------------------------------------

/// A failed property assertion, carried back to the harness.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<U, F>(self, map: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy {
            inner: self,
            map,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    map: F,
}

impl<S, U, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.next_below(span) as i128) as $ty
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

/// A strategy that always yields a clone of one value — the real crate's
/// `Just`, used standalone or as a `prop_oneof!` arm.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over strategies sharing one value type; built by
/// [`prop_oneof!`]. Arms are type-erased so heterogeneous strategies (a
/// range, a [`Just`], a nested union) can mix freely.
pub struct UnionStrategy<T> {
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>,
    total: u64,
}

impl<T> UnionStrategy<T> {
    /// A union from `(weight, generator)` arms; weights must not all be 0.
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_below(self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick is bounded by the total weight")
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length bounds for [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The `prop::` namespace from the real crate's prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult, TestRng, UnionStrategy,
    };
}

/// Declares property tests. Mirrors the real `proptest!` item form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0u32..10, ys in prop::collection::vec(0f64..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
     $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let ($($pat,)+) =
                        ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform (`strategy, ...`) choice between
/// strategies sharing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::UnionStrategy::new(vec![
            $({
                let s = $strategy;
                (
                    $weight as u32,
                    ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                        $crate::Strategy::generate(&s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>,
                )
            }),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Skips the current case when `cond` is false. The real crate rejects and
/// redraws; this harness simply counts the case as passed, which keeps the
/// deterministic case stream intact.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the operands differ. Operands are
/// borrowed, not consumed.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.5f64..3.5).generate(&mut rng);
            assert!((-2.5..3.5).contains(&f));
            let i = (-8i64..=-3).generate(&mut rng);
            assert!((-8..=-3).contains(&i));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("case");
        let mut b = TestRng::deterministic("case");
        let s = collection::vec(0f64..1.0, 3..9);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_strategies(x in 1u32..5, ys in prop::collection::vec(0f64..1.0, 2)) {
            prop_assert!(x >= 1 && x < 5);
            prop_assert_eq!(ys.len(), 2);
            prop_assert_ne!(x, 0);
        }
    }
}
