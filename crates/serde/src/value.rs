//! The JSON-like value tree shared by the vendored `serde` and
//! `serde_json` crates.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// Map type used for JSON objects. A `BTreeMap` keeps key order (and
/// therefore serialization) deterministic, which the parity and golden-file
/// tests rely on.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned integer, signed integer, or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (always possible, possibly lossy for huge ints).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(n) => n,
        }
    }

    /// The number as `u64` if it is a non-negative integer (floats qualify
    /// when they are integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) if f >= 0.0 && f <= u64::MAX as f64 && f.fract() == 0.0 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f >= i64::MIN as f64 && f <= i64::MAX as f64 && f.fract() == 0.0 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// A JSON document: the interchange type produced by [`crate::Serialize`]
/// and consumed by [`crate::Deserialize`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministic (sorted) key order.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::PosInt(n))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(Number::PosInt(u64::from(n)))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(Number::PosInt(n as u64))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        if n >= 0 {
            Value::Number(Number::PosInt(n as u64))
        } else {
            Value::Number(Number::NegInt(n))
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(Number::Float(n))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (used by `format!("{value}")`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

fn write_compact(value: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match value {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => write_number(n, f),
        Value::String(s) => write_escaped(s, f),
        Value::Array(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_compact(item, f)?;
            }
            f.write_str("]")
        }
        Value::Object(map) => {
            f.write_str("{")?;
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_escaped(k, f)?;
                f.write_str(":")?;
                write_compact(v, f)?;
            }
            f.write_str("}")
        }
    }
}

pub(crate) fn write_number(n: &Number, f: &mut impl fmt::Write) -> fmt::Result {
    match *n {
        Number::PosInt(v) => write!(f, "{v}"),
        Number::NegInt(v) => write!(f, "{v}"),
        // JSON has no NaN/Infinity literal; follow serde_json and emit null.
        Number::Float(v) if !v.is_finite() => f.write_str("null"),
        // `{:?}` is Rust's shortest round-trip float form and, like
        // serde_json's Ryu output, always keeps a `.0` on whole floats —
        // `{}` would collapse 1.0 to "1" and change golden-file bytes.
        Number::Float(v) => write!(f, "{v:?}"),
    }
}

pub(crate) fn write_escaped(s: &str, f: &mut impl fmt::Write) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

/// Error produced when converting a [`Value`] back into a typed structure.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueError {
    message: String,
}

impl ValueError {
    /// Creates an error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Prefixes the message with the field or type being deserialized.
    pub fn in_context(mut self, context: &str) -> Self {
        self.message = format!("{context}: {}", self.message);
        self
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ValueError {}
