//! Vendored minimal `serde` facade for offline builds.
//!
//! The real serde crate is unreachable in this build environment (the
//! registry mirror resolves to nothing), so this workspace ships a tiny
//! drop-in covering exactly the surface the PKA codebase uses: the
//! `Serialize`/`Deserialize` traits (re-implemented over a concrete JSON
//! [`value::Value`] tree instead of serde's generic data model) and the
//! derive macros re-exported from the vendored `serde_derive`.
//!
//! Determinism note: objects serialize with sorted keys (`value::Map` is a
//! `BTreeMap`), so serialization is byte-stable across runs and thread
//! schedules — a property the parallel-parity tests rely on.

#![forbid(unsafe_code)]

// Derive-generated code refers to this crate by its public name `serde`;
// alias ourselves so the derives also expand inside this crate's own tests.
extern crate self as serde;

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

use value::{Number, Value, ValueError};

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError`] when the value's shape or range does not
    /// match `Self`.
    fn from_json_value(value: &Value) -> Result<Self, ValueError>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        // Collected into the sorted Map, so hash order never leaks out.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        value
            .as_bool()
            .ok_or_else(|| ValueError::custom("expected boolean"))
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| ValueError::custom("expected string"))
    }
}

macro_rules! deserialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_json_value(value: &Value) -> Result<Self, ValueError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| ValueError::custom(concat!(
                        "expected non-negative integer for ", stringify!($ty))))?;
                <$ty>::try_from(n).map_err(|_| {
                    ValueError::custom(concat!("integer out of range for ", stringify!($ty)))
                })
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_json_value(value: &Value) -> Result<Self, ValueError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| ValueError::custom(concat!(
                        "expected integer for ", stringify!($ty))))?;
                <$ty>::try_from(n).map_err(|_| {
                    ValueError::custom(concat!("integer out of range for ", stringify!($ty)))
                })
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json emits null for non-finite floats; accept the
            // round-trip rather than failing on it.
            Value::Null => Ok(f64::NAN),
            _ => Err(ValueError::custom("expected number for f64")),
        }
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json_value(value).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        let items = value
            .as_array()
            .ok_or_else(|| ValueError::custom("expected array"))?;
        items.iter().map(T::from_json_value).collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        let map = value
            .as_object()
            .ok_or_else(|| ValueError::custom("expected object"))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::value::Map;
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u64,
        y: f64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u64);

    #[test]
    fn derive_round_trips_struct() {
        let p = Point {
            x: 7,
            y: -1.5,
            label: "hello".into(),
        };
        let v = p.to_json_value();
        assert_eq!(v["x"].as_u64(), Some(7));
        assert_eq!(Point::from_json_value(&v).unwrap(), p);
    }

    #[test]
    fn derive_round_trips_unit_enum_and_newtype() {
        let v = Kind::Beta.to_json_value();
        assert_eq!(v.as_str(), Some("Beta"));
        assert_eq!(Kind::from_json_value(&v).unwrap(), Kind::Beta);

        let w = Wrapper(99).to_json_value();
        assert_eq!(Wrapper::from_json_value(&w).unwrap(), Wrapper(99));
    }

    #[test]
    fn missing_field_reports_context() {
        let v = Value::Object(Map::new());
        let err = Point::from_json_value(&v).unwrap_err();
        assert!(err.to_string().contains("Point.x"), "{err}");
    }

    #[test]
    fn option_and_vec_round_trip() {
        let xs: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let v = xs.to_json_value();
        assert_eq!(Vec::<Option<u32>>::from_json_value(&v).unwrap(), xs);
    }
}
