use pka_core::PkaError;
use pka_gpu::{GpuConfig, KernelId};
use pka_profile::Profiler;
use pka_sim::{SimOptions, Simulator};
use pka_stats::error::abs_pct_error;
use pka_workloads::Workload;

/// The NVArchSim-style single-iteration methodology (Section 6): simulate
/// one full training/inference iteration of an iteration-structured
/// workload and scale the result by the iteration count.
///
/// Accurate for well-behaved ML workloads — the paper finds it comparable
/// to PKA on ResNet — but it (a) requires contextual knowledge of the
/// application's iteration structure, (b) costs roughly 3× a PKS-only run
/// and 48× a PKA run, and (c) is not a general solution (no iteration, no
/// methodology).
#[derive(Debug, Clone)]
pub struct SingleIteration {
    simulator: Simulator,
    profiler: Profiler,
}

/// Outcome of a [`SingleIteration`] evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleIterationReport {
    /// Workload name.
    pub workload: String,
    /// Kernels per iteration (the contextual knowledge this method needs).
    pub iteration_kernels: u64,
    /// Iterations the scaling assumed.
    pub iterations: u64,
    /// Projected application cycles.
    pub projected_cycles: u64,
    /// Measured silicon cycles (the reference).
    pub silicon_cycles: u64,
    /// Projection error versus silicon, percent.
    pub error_pct: f64,
    /// Simulator cycles actually spent (one full iteration).
    pub simulated_cycles: u64,
}

impl SingleIteration {
    /// Creates the baseline.
    pub fn new(gpu: GpuConfig, sim_options: SimOptions) -> Self {
        Self {
            simulator: Simulator::new(gpu.clone(), sim_options),
            profiler: Profiler::new(gpu),
        }
    }

    /// Runs the methodology on `workload`.
    ///
    /// # Errors
    ///
    /// Returns [`PkaError::InvalidInput`] if the workload has no iteration
    /// structure (the method's fundamental limitation), and propagates
    /// simulation failures.
    pub fn evaluate(&self, workload: &Workload) -> Result<SingleIterationReport, PkaError> {
        let _span = pka_obs::span("baseline.single_iteration");
        let period = workload.iteration_hint().ok_or_else(|| PkaError::InvalidInput {
            message: format!(
                "`{}` has no iteration structure; single-iteration scaling needs one",
                workload.name()
            ),
        })?;
        let silicon = self.profiler.silicon_run(workload)?;

        let mut iteration_cycles = 0u64;
        for id in 0..period.min(workload.kernel_count()) {
            let kernel = workload.kernel(KernelId::new(id));
            iteration_cycles += self.simulator.run_kernel(&kernel)?.cycles;
        }
        let iterations = workload.kernel_count().div_ceil(period);
        let projected = iteration_cycles * iterations;

        Ok(SingleIterationReport {
            workload: workload.name().to_string(),
            iteration_kernels: period,
            iterations,
            projected_cycles: projected,
            silicon_cycles: silicon.total_cycles,
            error_pct: abs_pct_error(projected as f64, silicon.total_cycles as f64),
            simulated_cycles: iteration_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_workloads::{polybench, rodinia, Workload};

    fn tiny_gpu() -> GpuConfig {
        GpuConfig::builder("tiny8").num_sms(8).build().unwrap()
    }

    fn find(suite: Vec<Workload>, name: &str) -> Workload {
        suite.into_iter().find(|w| w.name() == name).unwrap()
    }

    #[test]
    fn iteration_structured_workload_projects_well() {
        let b = SingleIteration::new(tiny_gpu(), SimOptions::default());
        let w = find(rodinia::workloads(), "srad_v1");
        let r = b.evaluate(&w).unwrap();
        assert_eq!(r.iteration_kernels, 2);
        assert_eq!(r.iterations, 51);
        assert!(r.error_pct < 25.0, "{}", r.error_pct);
    }

    #[test]
    fn unstructured_workload_is_rejected() {
        let b = SingleIteration::new(tiny_gpu(), SimOptions::default());
        let w = find(polybench::workloads(), "gemm");
        let err = b.evaluate(&w).unwrap_err();
        assert!(matches!(err, PkaError::InvalidInput { .. }));
    }

    #[test]
    fn simulates_exactly_one_iteration() {
        let b = SingleIteration::new(tiny_gpu(), SimOptions::default());
        let w = find(rodinia::workloads(), "gauss_208");
        let r = b.evaluate(&w).unwrap();
        assert_eq!(r.iteration_kernels, 2);
        // One iteration's cost, not the app's.
        assert!(r.simulated_cycles * 100 < r.projected_cycles);
    }
}
