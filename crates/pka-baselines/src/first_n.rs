use pka_core::PkaError;
use pka_gpu::GpuConfig;
use pka_profile::Profiler;
use pka_sim::{MaxInstructionsMonitor, SimOptions, Simulator};
use pka_stats::error::abs_pct_error;
use pka_workloads::Workload;

/// The "simulate the first N instructions" methodology.
///
/// Kernels are simulated in launch order until a shared warp-instruction
/// budget is exhausted; the application total is then extrapolated at the
/// observed IPC. Because the budget lands in the application's warmup
/// region and never sees later kernels, the paper measures a 5.4× error
/// blow-up over full simulation (Figure 8) despite the healthy speedup
/// (Figure 7).
#[derive(Debug, Clone)]
pub struct FirstN {
    simulator: Simulator,
    profiler: Profiler,
    budget: u64,
}

/// Outcome of a [`FirstN`] evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstNReport {
    /// Workload name.
    pub workload: String,
    /// The instruction budget used.
    pub budget: u64,
    /// Warp instructions actually simulated.
    pub simulated_instructions: u64,
    /// Simulator cycles actually spent.
    pub simulated_cycles: u64,
    /// Extrapolated application cycles.
    pub projected_cycles: u64,
    /// Measured silicon cycles (the reference).
    pub silicon_cycles: u64,
    /// Projection error versus silicon, percent.
    pub error_pct: f64,
    /// Kernels at least partially simulated.
    pub kernels_touched: u64,
}

impl FirstN {
    /// Creates the baseline with a warp-instruction `budget`.
    ///
    /// The classic figure is 10⁹; pick a budget in proportion to your
    /// workload sizes (the evaluation harness scales it the same way the
    /// paper's workloads relate to 1B).
    pub fn new(gpu: GpuConfig, sim_options: SimOptions, budget: u64) -> Self {
        Self {
            simulator: Simulator::new(gpu.clone(), sim_options),
            profiler: Profiler::new(gpu),
            budget,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Runs the methodology on `workload`.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn evaluate(&self, workload: &Workload) -> Result<FirstNReport, PkaError> {
        let _span = pka_obs::span("baseline.first_n");
        let silicon = self.profiler.silicon_run(workload)?;

        let mut spent_instructions = 0u64;
        let mut spent_cycles = 0u64;
        let mut kernels_touched = 0u64;
        // Total application instructions, for the extrapolation.
        let mut total_instructions = 0u64;
        for (_, kernel) in workload.iter() {
            total_instructions += kernel.total_warp_instructions();
        }

        for (_, kernel) in workload.iter() {
            if spent_instructions >= self.budget {
                break;
            }
            kernels_touched += 1;
            let remaining = self.budget - spent_instructions;
            let result = if kernel.total_warp_instructions() <= remaining {
                self.simulator.run_kernel(&kernel)?
            } else {
                let mut monitor = MaxInstructionsMonitor::new(remaining);
                self.simulator.run_kernel_monitored(&kernel, &mut monitor)?
            };
            spent_instructions += result.instructions;
            spent_cycles += result.cycles;
        }

        // Extrapolate at the IPC observed inside the budget.
        let projected = if spent_instructions == 0 {
            0
        } else {
            (spent_cycles as f64 * total_instructions as f64 / spent_instructions as f64) as u64
        };
        Ok(FirstNReport {
            workload: workload.name().to_string(),
            budget: self.budget,
            simulated_instructions: spent_instructions,
            simulated_cycles: spent_cycles,
            projected_cycles: projected,
            silicon_cycles: silicon.total_cycles,
            error_pct: abs_pct_error(projected as f64, silicon.total_cycles as f64),
            kernels_touched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_workloads::{rodinia, Workload};

    fn tiny_gpu() -> GpuConfig {
        GpuConfig::builder("tiny8").num_sms(8).build().unwrap()
    }

    fn bfs() -> Workload {
        rodinia::workloads()
            .into_iter()
            .find(|w| w.name() == "bfs65536")
            .unwrap()
    }

    #[test]
    fn budget_bounds_simulation() {
        let b = FirstN::new(tiny_gpu(), SimOptions::default(), 50_000);
        let r = b.evaluate(&bfs()).unwrap();
        assert!(r.simulated_instructions >= 50_000);
        // Stops shortly after the budget (at a sampling boundary).
        assert!(r.simulated_instructions < 50_000 * 3);
        assert!(r.kernels_touched < 20);
    }

    #[test]
    fn huge_budget_degenerates_to_full_simulation() {
        let b = FirstN::new(tiny_gpu(), SimOptions::default(), u64::MAX);
        let w = bfs();
        let r = b.evaluate(&w).unwrap();
        assert_eq!(r.kernels_touched, w.kernel_count());
        // Projection equals what was simulated (everything).
        assert_eq!(r.projected_cycles, r.simulated_cycles);
    }

    #[test]
    fn truncation_misses_later_phases() {
        // gramschmidt-style workloads shrink over time: early kernels are
        // not representative, so the truncated estimate is biased.
        let w = rodinia::workloads()
            .into_iter()
            .find(|w| w.name() == "nw")
            .unwrap();
        let tight = FirstN::new(tiny_gpu(), SimOptions::default(), 30_000);
        let r = tight.evaluate(&w).unwrap();
        assert!(r.error_pct > 5.0, "truncation error {}", r.error_pct);
    }
}
