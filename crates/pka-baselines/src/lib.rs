//! Baseline sampled-simulation methodologies the paper compares PKA
//! against (Sections 5.1 and 6):
//!
//! * [`TbPoint`] — the prior state of the art. Clusters kernels with
//!   agglomerative hierarchical clustering over statistics from full
//!   functional simulation, sweeping 20 distance thresholds between 0.01
//!   and 0.2 (the paper's replacement for TBPoint's original hand-tuned
//!   threshold), and reduces intra-kernel work by simulating a fixed
//!   fraction of each representative's thread blocks. Conservative: ~2.19×
//!   less simulation-time reduction than PKA at similar error, and
//!   intractable for scaled workloads (quadratic clustering memory, plus a
//!   full functional-simulation prerequisite).
//! * [`FirstN`] — "simulate the first N (classically 1 billion)
//!   instructions": fast but blind to everything after the warmup phase,
//!   hence the paper's 5.4× error blow-up (Figure 8).
//! * [`SingleIteration`] — NVArchSim's MLPerf methodology: simulate one
//!   training/inference iteration and scale by the iteration count.
//!   Accurate but needs application knowledge and costs ~48× more
//!   simulation than PKA (Section 6).
//!
//! # Examples
//!
//! ```
//! use pka_baselines::FirstN;
//! use pka_gpu::GpuConfig;
//! use pka_sim::SimOptions;
//! use pka_workloads::rodinia;
//!
//! let w = rodinia::workloads()
//!     .into_iter()
//!     .find(|w| w.name() == "bfs65536")
//!     .expect("exists");
//! let baseline = FirstN::new(GpuConfig::v100(), SimOptions::default(), 100_000);
//! let report = baseline.evaluate(&w)?;
//! assert!(report.simulated_instructions >= 100_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod first_n;
mod single_iteration;
mod tbpoint;

pub use first_n::{FirstN, FirstNReport};
pub use single_iteration::{SingleIteration, SingleIterationReport};
pub use tbpoint::{TbPoint, TbPointConfig, TbPointReport};
