use pka_core::PkaError;
use pka_gpu::{GpuConfig, KernelId};
use pka_ml::{Agglomerative, Matrix, StandardScaler};
use pka_profile::Profiler;
use pka_sim::{SampleContext, SimControl, SimMonitor, SimOptions, Simulator};
use pka_stats::error::abs_pct_error;
use pka_workloads::Workload;

/// Configuration for the TBPoint baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TbPointConfig {
    /// Number of thresholds swept between `threshold_min` and
    /// `threshold_max` (paper: 20 values in \[0.01, 0.2\]).
    pub threshold_steps: usize,
    /// Smallest normalised-distance cut threshold.
    pub threshold_min: f64,
    /// Largest cut threshold.
    pub threshold_max: f64,
    /// Projection-error target used to pick among the sweep, matching the
    /// criterion PKS uses (Section 5.1).
    pub target_error_pct: f64,
    /// Fraction of each representative kernel's thread blocks TBPoint
    /// simulates before projecting (its conservative intra-kernel
    /// reduction).
    pub block_fraction: f64,
    /// Hard cap on the number of kernels the quadratic clustering will
    /// accept — the scalability wall the paper attacks.
    pub max_kernels: u64,
}

impl Default for TbPointConfig {
    fn default() -> Self {
        Self {
            threshold_steps: 20,
            threshold_min: 0.01,
            threshold_max: 0.2,
            target_error_pct: 5.0,
            block_fraction: 0.5,
            max_kernels: 2_000,
        }
    }
}

/// Outcome of a [`TbPoint`] evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TbPointReport {
    /// Workload name.
    pub workload: String,
    /// Clusters produced at the chosen threshold.
    pub clusters: usize,
    /// The chosen cut threshold.
    pub threshold: f64,
    /// Projected application cycles.
    pub projected_cycles: u64,
    /// Measured silicon cycles (the reference).
    pub silicon_cycles: u64,
    /// Projection error versus silicon, percent.
    pub error_pct: f64,
    /// Simulator cycles actually spent.
    pub simulated_cycles: u64,
}

/// Stops a kernel once a fraction of its thread blocks has retired.
#[derive(Debug, Clone, Copy)]
struct BlockFractionMonitor {
    fraction: f64,
}

impl SimMonitor for BlockFractionMonitor {
    fn observe(&mut self, ctx: &SampleContext) -> SimControl {
        let target = (ctx.blocks_total as f64 * self.fraction).ceil() as u64;
        if ctx.blocks_completed >= target.max(1) {
            SimControl::Stop
        } else {
            SimControl::Continue
        }
    }
}

/// The TBPoint baseline (Huang et al., IPDPS 2014), as reimplemented by the
/// paper for its quantitative comparison: hierarchical clustering over
/// per-kernel statistics from full functional simulation, a 20-point
/// threshold sweep standing in for the original hand-tuned threshold, and
/// thread-block-sampled simulation of each cluster representative.
///
/// Deliberately inherits TBPoint's scalability limits: the clustering is
/// quadratic in memory (workloads beyond
/// [`max_kernels`](TbPointConfig::max_kernels) are rejected), and the
/// statistics it clusters on presuppose a *complete* functional simulation
/// of the application — which is exactly what scaled workloads rule out.
#[derive(Debug, Clone)]
pub struct TbPoint {
    simulator: Simulator,
    profiler: Profiler,
    config: TbPointConfig,
}

impl TbPoint {
    /// Creates the baseline.
    pub fn new(gpu: GpuConfig, sim_options: SimOptions, config: TbPointConfig) -> Self {
        Self {
            simulator: Simulator::new(gpu.clone(), sim_options),
            profiler: Profiler::new(gpu),
            config,
        }
    }

    /// Runs TBPoint on `workload`.
    ///
    /// # Errors
    ///
    /// Returns [`PkaError::InvalidInput`] when the workload exceeds the
    /// clustering capacity (TBPoint's scalability wall), and propagates
    /// profiling/simulation failures.
    pub fn evaluate(&self, workload: &Workload) -> Result<TbPointReport, PkaError> {
        if workload.kernel_count() > self.config.max_kernels {
            return Err(PkaError::InvalidInput {
                message: format!(
                    "TBPoint's hierarchical clustering cannot handle `{}`: {} kernels \
                     exceed the {}-kernel capacity (O(n^2) distance matrix)",
                    workload.name(),
                    workload.kernel_count(),
                    self.config.max_kernels
                ),
            });
        }
        let _span = pka_obs::span("baseline.tbpoint");
        let n = workload.kernel_count();
        // TBPoint's per-kernel statistics come from full functional
        // simulation; the detailed metric set is the equivalent here.
        let records = {
            let _s = pka_obs::span("baseline.tbpoint.profile");
            self.profiler.detailed(workload, 0..n)?
        };
        let silicon: u64 = records.iter().map(|r| r.cycles).sum();

        let cluster_span = pka_obs::span("baseline.tbpoint.cluster");
        // Normalised feature space for threshold-comparable distances.
        let features = pka_core::feature_matrix(&records)?;
        let (_, scaled) = StandardScaler::fit_transform(&features)?;
        let normalised = normalise_rows(&scaled)?;

        // Threshold sweep, same selection criterion as PKS. The dendrogram
        // is built once (the expensive quadratic part) and cut twenty times
        // (near-linear each).
        let tree = Agglomerative::new().dendrogram(&normalised)?;
        let steps = self.config.threshold_steps.max(1);
        let mut best: Option<(f64, f64, Vec<usize>)> = None; // (err, t, labels)
        for i in 0..steps {
            let t = self.config.threshold_min
                + (self.config.threshold_max - self.config.threshold_min) * i as f64
                    / (steps - 1).max(1) as f64;
            // Scale the normalised threshold to the feature-space diameter.
            let cut = t * (scaled.cols() as f64).sqrt() * 2.0;
            let labels = tree.cut(cut);
            let err = projection_error(&records, &labels, silicon);
            let candidate_err = err;
            if candidate_err <= self.config.target_error_pct {
                best = Some((candidate_err, t, labels));
                break;
            }
            if best.as_ref().is_none_or(|(b, _, _)| candidate_err < *b) {
                best = Some((candidate_err, t, labels));
            }
        }
        drop(cluster_span);
        let (_, threshold, labels) = best.expect("at least one threshold swept");
        let clusters = labels.iter().copied().max().map_or(0, |m| m + 1);

        // Representatives: first chronological member of each cluster,
        // simulated with thread-block sampling.
        let mut rep_of = vec![None::<usize>; clusters];
        let mut counts = vec![0u64; clusters];
        for (i, &l) in labels.iter().enumerate() {
            counts[l] += 1;
            if rep_of[l].is_none() {
                rep_of[l] = Some(i);
            }
        }
        let _sim_span = pka_obs::span("baseline.tbpoint.simulate");
        let mut projected = 0u64;
        let mut spent = 0u64;
        for (cluster, rep) in rep_of.into_iter().enumerate() {
            let rep = rep.expect("every cluster has a member");
            let kernel = workload.kernel(KernelId::new(rep as u64));
            let mut monitor = BlockFractionMonitor {
                fraction: self.config.block_fraction,
            };
            let result = self.simulator.run_kernel_monitored(&kernel, &mut monitor)?;
            spent += result.cycles;
            projected += result.projected_total_cycles() * counts[cluster];
        }

        Ok(TbPointReport {
            workload: workload.name().to_string(),
            clusters,
            threshold,
            projected_cycles: projected,
            silicon_cycles: silicon,
            error_pct: abs_pct_error(projected as f64, silicon as f64),
            simulated_cycles: spent,
        })
    }
}

/// Error of the cluster-and-scale projection using silicon cycles (the
/// sweep criterion only — simulation happens once, after the sweep).
fn projection_error(
    records: &[pka_profile::DetailedRecord],
    labels: &[usize],
    silicon: u64,
) -> f64 {
    let clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut rep_cycles = vec![None::<u64>; clusters];
    let mut counts = vec![0u64; clusters];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        if rep_cycles[l].is_none() {
            rep_cycles[l] = Some(records[i].cycles);
        }
    }
    let projected: u64 = rep_cycles
        .iter()
        .zip(&counts)
        .map(|(c, &n)| c.expect("cluster non-empty") * n)
        .sum();
    abs_pct_error(projected as f64, silicon as f64)
}

/// Rescales every column into `[0, 1]` so distance thresholds are
/// dimensionless.
fn normalise_rows(m: &Matrix) -> Result<Matrix, PkaError> {
    let mut lo = vec![f64::INFINITY; m.cols()];
    let mut hi = vec![f64::NEG_INFINITY; m.cols()];
    for row in m.iter_rows() {
        for (j, &x) in row.iter().enumerate() {
            lo[j] = lo[j].min(x);
            hi[j] = hi[j].max(x);
        }
    }
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            let span = hi[j] - lo[j];
            let v = if span > 0.0 {
                (m.get(i, j) - lo[j]) / span
            } else {
                0.0
            };
            out.set(i, j, v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_workloads::{mlperf, parboil, rodinia, Workload};

    fn tiny_gpu() -> GpuConfig {
        GpuConfig::builder("tiny8").num_sms(8).build().unwrap()
    }

    fn find(suite: Vec<Workload>, name: &str) -> Workload {
        suite.into_iter().find(|w| w.name() == name).unwrap()
    }

    #[test]
    fn clusters_homogeneous_workload_to_one_group() {
        let tb = TbPoint::new(tiny_gpu(), SimOptions::default(), TbPointConfig::default());
        let r = tb.evaluate(&find(rodinia::workloads(), "bfs65536")).unwrap();
        assert_eq!(r.clusters, 1);
        // The error budget includes the simulator-vs-silicon gap, which is
        // substantial for an irregular kernel on a small configuration.
        assert!(r.error_pct < 60.0, "{}", r.error_pct);
    }

    #[test]
    fn separates_heterogeneous_kernels() {
        let tb = TbPoint::new(tiny_gpu(), SimOptions::default(), TbPointConfig::default());
        let r = tb.evaluate(&find(parboil::workloads(), "cutcp")).unwrap();
        assert!(r.clusters >= 2, "{}", r.clusters);
        assert!(r.clusters <= 11);
    }

    #[test]
    fn refuses_scaled_workloads() {
        let tb = TbPoint::new(tiny_gpu(), SimOptions::default(), TbPointConfig::default());
        let ssd = find(mlperf::workloads(), "mlperf_ssd_train");
        let err = tb.evaluate(&ssd).unwrap_err();
        assert!(matches!(err, PkaError::InvalidInput { .. }));
        assert!(err.to_string().contains("hierarchical"));
    }

    #[test]
    fn block_sampling_spends_less_than_full_kernels() {
        let tb = TbPoint::new(tiny_gpu(), SimOptions::default(), TbPointConfig::default());
        let w = find(rodinia::workloads(), "bfs65536");
        let r = tb.evaluate(&w).unwrap();
        // Simulating ~half the blocks of one representative costs less
        // than the projected single-kernel cycles.
        assert!(r.simulated_cycles < r.projected_cycles / 10);
    }
}
