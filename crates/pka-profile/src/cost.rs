//! The profiling wall-clock cost model behind Figure 1's "Silicon Profiler"
//! band and the one-week tractability rule of Section 3.1.
//!
//! Nsight Compute replays every kernel once per metric pass and serialises
//! the GPU, so detailed profiling costs seconds *per kernel* regardless of
//! how short the kernel is. Nsight Systems merely timestamps launches.

/// Modelled Nsight Compute cost per kernel (12-metric replay set), seconds.
///
/// At this rate ResNet-50 inference (~60k kernels) profiles in under a day
/// — tractable, matching the paper — while SSD training's 5.3M kernels
/// would take two months, forcing two-level profiling.
pub const DETAILED_SECONDS_PER_KERNEL: f64 = 1.0;

/// Modelled Nsight Systems cost per kernel, seconds.
pub const LIGHTWEIGHT_SECONDS_PER_KERNEL: f64 = 1e-3;

/// The paper's tractability threshold: detailed profiling that would take
/// more than one week is replaced by two-level profiling.
pub const INTRACTABLE_PROFILING_SECONDS: f64 = 7.0 * 24.0 * 3600.0;

/// Wall-clock seconds to lightweight-profile `kernels` launches.
///
/// # Examples
///
/// ```
/// use pka_profile::lightweight_profiling_seconds;
///
/// assert_eq!(lightweight_profiling_seconds(1000), 1.0);
/// ```
pub fn lightweight_profiling_seconds(kernels: u64) -> f64 {
    kernels as f64 * LIGHTWEIGHT_SECONDS_PER_KERNEL
}

/// The modelled profiling cost of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilingCost {
    kernels: u64,
}

impl ProfilingCost {
    /// Cost model for a stream of `kernels` launches.
    pub fn for_kernel_count(kernels: u64) -> Self {
        Self { kernels }
    }

    /// Kernels in the stream.
    pub fn kernels(&self) -> u64 {
        self.kernels
    }

    /// Seconds to profile the whole stream in detail.
    pub fn detailed_seconds(&self) -> f64 {
        self.kernels as f64 * DETAILED_SECONDS_PER_KERNEL
    }

    /// Seconds to profile the whole stream lightly.
    pub fn lightweight_seconds(&self) -> f64 {
        lightweight_profiling_seconds(self.kernels)
    }

    /// Whether full detailed profiling breaches the one-week rule.
    pub fn detailed_is_intractable(&self) -> bool {
        self.detailed_seconds() > INTRACTABLE_PROFILING_SECONDS
    }

    /// The largest kernel prefix that *can* be profiled in detail within
    /// the one-week budget (the paper's "first j kernels").
    pub fn tractable_detailed_prefix(&self) -> u64 {
        if !self.detailed_is_intractable() {
            return self.kernels;
        }
        (INTRACTABLE_PROFILING_SECONDS / DETAILED_SECONDS_PER_KERNEL) as u64
    }

    /// Seconds for the two-level scheme: detailed on the prefix,
    /// lightweight on the rest.
    pub fn two_level_seconds(&self) -> f64 {
        let j = self.tractable_detailed_prefix();
        j as f64 * DETAILED_SECONDS_PER_KERNEL
            + (self.kernels - j) as f64 * LIGHTWEIGHT_SECONDS_PER_KERNEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workloads_are_tractable() {
        let c = ProfilingCost::for_kernel_count(414);
        assert!(!c.detailed_is_intractable());
        assert_eq!(c.tractable_detailed_prefix(), 414);
    }

    #[test]
    fn millions_of_kernels_are_not() {
        let c = ProfilingCost::for_kernel_count(5_300_000);
        assert!(c.detailed_is_intractable());
        let j = c.tractable_detailed_prefix();
        assert!(j < 5_300_000);
        assert!(j >= 100_000, "one week at 1s/kernel is 604k kernels: {j}");
    }

    #[test]
    fn two_level_is_cheaper_than_detailed_for_scaled_workloads() {
        let c = ProfilingCost::for_kernel_count(5_300_000);
        assert!(c.two_level_seconds() < c.detailed_seconds());
        // And stays within ~a week plus the lightweight pass.
        assert!(c.two_level_seconds() < INTRACTABLE_PROFILING_SECONDS * 1.1);
    }

    #[test]
    fn lightweight_is_cheap() {
        let c = ProfilingCost::for_kernel_count(5_300_000);
        assert!(c.lightweight_seconds() < 2.0 * 3600.0);
    }
}
