//! The two-level silicon profiling substrate.
//!
//! PKA's inputs come from profilers, not simulators: **Nsight Compute**
//! collects the 12 detailed metrics of Table 2 (at a brutal per-kernel
//! replay cost — Figure 1 shows detailed profiling of scaled workloads
//! taking weeks to months), while **Nsight Systems** streams lightweight
//! records (kernel name + launch geometry) at negligible cost, augmented
//! for MLPerf by **PyProf** tensor/layer annotations.
//!
//! This crate reproduces both levels against the synthetic silicon:
//!
//! * [`DetailedRecord`] — Table 2 metrics plus measured cycles for one
//!   kernel, as Nsight Compute would report.
//! * [`LightweightRecord`] — name, grid and block geometry, shared-memory
//!   footprint, and PyProf-style tensor volume.
//! * [`Profiler`] — produces either stream for any workload and
//!   architecture, tracks the modelled wall-clock profiling cost, and
//!   decides when detailed profiling is *intractable* (the paper's
//!   one-week rule) so the caller must fall back to two-level profiling.
//! * [`AppSiliconRun`] — a plain (unprofiled) silicon run of the whole
//!   application: the ground truth every error column in Table 4 is
//!   measured against.
//!
//! # Examples
//!
//! ```
//! use pka_gpu::GpuConfig;
//! use pka_profile::Profiler;
//! use pka_workloads::rodinia;
//!
//! let gaussian = rodinia::workloads()
//!     .into_iter()
//!     .find(|w| w.name() == "gauss_208")
//!     .expect("exists");
//! let profiler = Profiler::new(GpuConfig::v100());
//! let records = profiler.detailed(&gaussian, 0..gaussian.kernel_count())?;
//! assert_eq!(records.len(), 414);
//! # Ok::<(), pka_gpu::GpuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod records;

pub use cost::{
    lightweight_profiling_seconds, ProfilingCost, DETAILED_SECONDS_PER_KERNEL,
    INTRACTABLE_PROFILING_SECONDS, LIGHTWEIGHT_SECONDS_PER_KERNEL,
};
pub use records::{DetailedRecord, LightweightRecord};

use std::ops::Range;

use pka_gpu::{GpuConfig, GpuError, KernelId, KernelMetrics, SiliconExecutor};
use pka_stats::Executor;
use pka_workloads::Workload;

/// A plain end-to-end silicon run of an application (no profiler attached):
/// the ground truth for every error figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSiliconRun {
    /// Total kernel cycles across the whole launch stream.
    pub total_cycles: u64,
    /// Total execution seconds at the configured clock.
    pub total_seconds: f64,
    /// Number of kernels executed.
    pub kernels: u64,
}

/// The profiler pair (Nsight Compute + Nsight Systems) against one GPU.
#[derive(Debug, Clone)]
pub struct Profiler {
    silicon: SiliconExecutor,
    exec: Executor,
}

impl Profiler {
    /// Creates a profiler attached to `config`.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            silicon: SiliconExecutor::new(config),
            exec: Executor::sequential(),
        }
    }

    /// Fans per-kernel silicon runs out over `exec` (results stay in
    /// launch-stream order, so totals are bitwise identical to sequential).
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The architecture being profiled.
    pub fn config(&self) -> &GpuConfig {
        self.silicon.config()
    }

    /// Runs the application end-to-end with no profiler attached.
    ///
    /// # Errors
    ///
    /// Propagates [`GpuError`] from unlaunchable kernels.
    pub fn silicon_run(&self, workload: &Workload) -> Result<AppSiliconRun, GpuError> {
        let _span = pka_obs::span("profile.silicon_run");
        let ids: Vec<u64> = (0..workload.kernel_count()).collect();
        let runs = self.exec.try_map(&ids, |_, &id| {
            let kernel = workload.kernel(KernelId::new(id));
            self.silicon.execute(&kernel).map(|r| (r.cycles, r.seconds))
        })?;
        // Fold in launch-stream order so the float total is bitwise stable.
        let mut total_cycles = 0u64;
        let mut total_seconds = 0.0f64;
        for (cycles, seconds) in runs {
            total_cycles += cycles;
            total_seconds += seconds;
        }
        Ok(AppSiliconRun {
            total_cycles,
            total_seconds,
            kernels: workload.kernel_count(),
        })
    }

    /// Detailed (Nsight Compute) profiling of the kernels in `range`.
    ///
    /// # Errors
    ///
    /// Propagates [`GpuError`] from unlaunchable kernels.
    pub fn detailed(
        &self,
        workload: &Workload,
        range: Range<u64>,
    ) -> Result<Vec<DetailedRecord>, GpuError> {
        let _span = pka_obs::span("profile.detailed");
        let ids: Vec<u64> = range.collect();
        if pka_obs::enabled() {
            pka_obs::counter("profile.detailed_records").add(ids.len() as u64);
        }
        self.exec.try_map(&ids, |_, &id| {
            let kernel = workload.kernel(KernelId::new(id));
            let silicon = self.silicon.execute(&kernel)?;
            let metrics =
                KernelMetrics::from_descriptor(&kernel, self.config().generation());
            Ok(DetailedRecord::new(KernelId::new(id), &kernel, metrics, silicon))
        })
    }

    /// Lightweight (Nsight Systems + PyProf) profiling of the kernels in
    /// `range`.
    pub fn lightweight(&self, workload: &Workload, range: Range<u64>) -> Vec<LightweightRecord> {
        range
            .map(|id| {
                let kernel = workload.kernel(KernelId::new(id));
                LightweightRecord::new(KernelId::new(id), &kernel)
            })
            .collect()
    }

    /// The modelled wall-clock cost of profiling this workload, used to
    /// decide between one-level and two-level profiling (Figure 1 and the
    /// one-week rule of Section 3.1).
    pub fn profiling_cost(&self, workload: &Workload) -> ProfilingCost {
        ProfilingCost::for_kernel_count(workload.kernel_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_workloads::{mlperf, rodinia};

    fn gaussian() -> Workload {
        rodinia::workloads()
            .into_iter()
            .find(|w| w.name() == "gauss_208")
            .unwrap()
    }

    #[test]
    fn detailed_records_cover_range() {
        let p = Profiler::new(GpuConfig::v100());
        let w = gaussian();
        let records = p.detailed(&w, 10..20).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[0].kernel_id, KernelId::new(10));
        assert!(records.iter().all(|r| r.cycles > 0));
    }

    #[test]
    fn lightweight_has_no_metrics_but_geometry() {
        let p = Profiler::new(GpuConfig::v100());
        let w = gaussian();
        let records = p.lightweight(&w, 0..5);
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|r| r.grid_blocks > 0));
    }

    #[test]
    fn silicon_run_sums_kernels() {
        let p = Profiler::new(GpuConfig::v100());
        let w = gaussian();
        let run = p.silicon_run(&w).unwrap();
        assert_eq!(run.kernels, 414);
        assert!(run.total_seconds > 0.0);
        let single = p.detailed(&w, 0..1).unwrap()[0].cycles;
        assert!(run.total_cycles > single);
    }

    #[test]
    fn mlperf_detailed_profiling_is_intractable() {
        let p = Profiler::new(GpuConfig::v100());
        let ssd = mlperf::workloads()
            .into_iter()
            .find(|w| w.name() == "mlperf_ssd_train")
            .unwrap();
        let cost = p.profiling_cost(&ssd);
        assert!(cost.detailed_is_intractable());
        let g = p.profiling_cost(&gaussian());
        assert!(!g.detailed_is_intractable());
    }
}
