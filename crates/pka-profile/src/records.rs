use pka_gpu::{KernelDescriptor, KernelId, KernelMetrics, SiliconResult};
use pka_stats::hash::fnv1a;

/// What Nsight Compute reports for one kernel: the 12 Table 2 metrics plus
/// the measured execution state.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedRecord {
    /// Launch index within the workload.
    pub kernel_id: KernelId,
    /// Kernel (mangled) name.
    pub name: String,
    /// The architecture-agnostic Table 2 metrics.
    pub metrics: KernelMetrics,
    /// Measured kernel cycles.
    pub cycles: u64,
    /// Measured kernel seconds.
    pub seconds: f64,
    /// Measured DRAM utilisation, percent.
    pub dram_util_pct: f64,
    /// Measured L2 miss rate, percent.
    pub l2_miss_rate_pct: f64,
}

impl DetailedRecord {
    /// Assembles a record from a kernel and its silicon measurement.
    pub fn new(
        kernel_id: KernelId,
        kernel: &KernelDescriptor,
        metrics: KernelMetrics,
        silicon: SiliconResult,
    ) -> Self {
        Self {
            kernel_id,
            name: kernel.name().to_string(),
            metrics,
            cycles: silicon.cycles,
            seconds: silicon.seconds,
            dram_util_pct: silicon.dram_util_pct,
            l2_miss_rate_pct: silicon.l2_miss_rate_pct,
        }
    }
}

/// What Nsight Systems (plus PyProf for the MLPerf workloads) reports for
/// one kernel: no hardware counters, just the launch and its annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LightweightRecord {
    /// Launch index within the workload.
    pub kernel_id: KernelId,
    /// Kernel (mangled) name.
    pub name: String,
    /// Grid size in thread blocks.
    pub grid_blocks: u64,
    /// Threads per block.
    pub block_threads: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub shared_mem_bytes: u32,
    /// PyProf-style tensor volume annotation (total elements touched).
    pub tensor_elements: u64,
}

/// Number of hash buckets used to featurise kernel names.
const NAME_BUCKETS: usize = 8;

impl LightweightRecord {
    /// Assembles a record from a kernel launch.
    pub fn new(kernel_id: KernelId, kernel: &KernelDescriptor) -> Self {
        Self {
            kernel_id,
            name: kernel.name().to_string(),
            grid_blocks: kernel.total_blocks(),
            block_threads: kernel.threads_per_block(),
            shared_mem_bytes: kernel.shared_mem_per_block(),
            tensor_elements: kernel.total_threads(),
        }
    }

    /// Number of features produced by
    /// [`to_feature_vector`](Self::to_feature_vector).
    pub const FEATURE_COUNT: usize = 4 + NAME_BUCKETS;

    /// Flattens the record into the feature vector the two-level classifiers
    /// consume: log-compressed geometry plus a hashed bag-of-name encoding
    /// (names never feed the *clustering*, but they are fair game for the
    /// supervised mapping step, which is exactly how the reference tooling
    /// uses Nsight Systems output).
    pub fn to_feature_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(Self::FEATURE_COUNT);
        Self::write_features(
            &self.name,
            self.grid_blocks,
            self.block_threads,
            self.shared_mem_bytes,
            self.tensor_elements,
            &mut v,
        );
        v
    }

    /// Appends the feature vector for raw launch geometry to `out` — the
    /// allocation-free twin of [`to_feature_vector`](Self::to_feature_vector)
    /// for callers that never materialise a record (the streaming tail's
    /// feature-only fast path). Same expressions in the same order, so the
    /// resulting floats are bit-identical.
    pub fn write_features(
        name: &str,
        grid_blocks: u64,
        block_threads: u32,
        shared_mem_bytes: u32,
        tensor_elements: u64,
        out: &mut Vec<f64>,
    ) {
        out.reserve(Self::FEATURE_COUNT);
        out.push((grid_blocks as f64).ln_1p());
        out.push((block_threads as f64).ln_1p());
        out.push((shared_mem_bytes as f64).ln_1p());
        out.push((tensor_elements as f64).ln_1p());
        let h = fnv1a(name.as_bytes());
        for b in 0..NAME_BUCKETS {
            // Two bits of the hash per bucket: a soft categorical encoding.
            out.push(((h >> (b * 2)) & 0b11) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_gpu::{GpuConfig, GpuGeneration, SiliconExecutor};

    fn kernel(name: &str, blocks: u32) -> KernelDescriptor {
        KernelDescriptor::builder(name)
            .grid_blocks(blocks)
            .block_threads(128)
            .fp32_per_thread(32)
            .global_loads_per_thread(4)
            .build()
            .unwrap()
    }

    #[test]
    fn detailed_record_carries_measurement() {
        let k = kernel("k", 64);
        let silicon = SiliconExecutor::new(GpuConfig::v100()).execute(&k).unwrap();
        let m = KernelMetrics::from_descriptor(&k, GpuGeneration::Volta);
        let r = DetailedRecord::new(KernelId::new(3), &k, m, silicon);
        assert_eq!(r.kernel_id, KernelId::new(3));
        assert_eq!(r.cycles, silicon.cycles);
        assert_eq!(r.name, "k");
    }

    #[test]
    fn lightweight_feature_vector_shape() {
        let r = LightweightRecord::new(KernelId::new(0), &kernel("sgemm", 64));
        let v = r.to_feature_vector();
        assert_eq!(v.len(), LightweightRecord::FEATURE_COUNT);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn different_names_hash_differently() {
        let a = LightweightRecord::new(KernelId::new(0), &kernel("sgemm", 64));
        let b = LightweightRecord::new(KernelId::new(0), &kernel("relu", 64));
        let va = a.to_feature_vector();
        let vb = b.to_feature_vector();
        assert_ne!(va[4..], vb[4..], "name buckets should differ");
        // Geometry features agree.
        assert_eq!(va[..4], vb[..4]);
    }

    #[test]
    fn grid_size_separates_same_name_launches() {
        let a = LightweightRecord::new(KernelId::new(0), &kernel("relu", 8));
        let b = LightweightRecord::new(KernelId::new(1), &kernel("relu", 8000));
        let va = a.to_feature_vector();
        let vb = b.to_feature_vector();
        assert!((vb[0] - va[0]).abs() > 3.0);
    }
}
