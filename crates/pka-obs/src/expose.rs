//! Prometheus text exposition (format 0.0.4) for the metric [`Registry`],
//! and the inverse parser behind `pka obs scrape`.
//!
//! # Rendering contract
//!
//! [`prometheus_text`] renders every registered counter, gauge, histogram
//! and stage into the plain-text exposition format, deterministically:
//! each section's map is captured under its lock in one pass (one locked
//! snapshot per family — a scrape concurrent with [`Registry::reset`] or
//! metric updates is tear-free per family), and families are emitted in
//! sorted name order, the registry's native `BTreeMap` iteration order.
//!
//! Name normalisation, in order:
//!
//! 1. The raw dotted name is split on `.`; segments of the form
//!    `shard<digits>` become a `shard="<digits>"` label and segments of
//!    the form `w<digits>` (the executor's per-worker lanes) become a
//!    `worker="<digits>"` label.
//! 2. Remaining segments are joined with `_`, any character outside
//!    `[A-Za-z0-9_]` is mapped to `_`, and the result is prefixed `pka_`.
//!    So `stream.shard3.records` → `pka_stream_records_total{shard="3"}`.
//! 3. Counters gain a `_total` suffix. Histograms expose cumulative
//!    `le`-bucketed `_bucket` samples derived from the registry's fixed
//!    inclusive upper edges (the overflow bucket becomes `le="+Inf"`),
//!    plus `_count` and `_sum`. `_count` is computed from the same
//!    single read of the bucket vector as the `_bucket` samples, so
//!    `_count == Σ buckets` holds in *every* scrape, by construction.
//! 4. Stages are exposed as a `_total_ns` / `_calls` pair of counter
//!    families (matching the manifest's `{total_ns, calls}` shape).
//!
//! The registry's `wall_ns` clock is deliberately *not* exposed: every
//! rendered family is either deterministic for a fixed input or an
//! explicit timing aggregate, so deterministic families compare
//! byte-for-byte across scrapes of identical runs.
//!
//! # Parsing contract
//!
//! [`parse_exposition`] accepts exactly the grammar this module emits (a
//! strict subset of the Prometheus text format: `# HELP` / `# TYPE`
//! comments, `name{labels} value` samples) and rebuilds a
//! `pka.run_manifest/v1`-shaped document — counters, gauges, histograms
//! (`le` buckets de-cumulated back into `edges`/`counts`), and
//! `_total_ns`/`_calls` counter pairs re-joined into `stages` — keyed by
//! the *normalised* sample identity (`pka_stream_records_total{shard="0"}`).
//! The output feeds [`diff_manifests`](crate::diff_manifests) unchanged,
//! so the CI regression gates work against a live `/metrics` endpoint
//! exactly as they do against committed manifests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::{json, Map, Value};

use crate::{Registry, MANIFEST_SCHEMA};

/// `Content-Type` of the rendered exposition.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

// ---------------------------------------------------------------------------
// Name normalisation
// ---------------------------------------------------------------------------

/// A raw dotted metric name resolved to its Prometheus identity.
struct NormalName {
    /// Normalised family base (no type suffix yet), e.g. `pka_stream_records`.
    family: String,
    /// The raw name with label segments removed, e.g. `stream.records`.
    base: String,
    /// Labels extracted from the raw name, in segment order.
    labels: Vec<(String, String)>,
}

fn digits_after<'a>(seg: &'a str, prefix: &str) -> Option<&'a str> {
    let rest = seg.strip_prefix(prefix)?;
    (!rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit())).then_some(rest)
}

fn normalize(raw: &str) -> NormalName {
    let mut labels = Vec::new();
    let mut kept: Vec<&str> = Vec::new();
    for seg in raw.split('.') {
        if let Some(d) = digits_after(seg, "shard") {
            labels.push(("shard".to_string(), d.to_string()));
        } else if let Some(d) = digits_after(seg, "w") {
            labels.push(("worker".to_string(), d.to_string()));
        } else {
            kept.push(seg);
        }
    }
    let mut family = String::from("pka");
    for seg in &kept {
        family.push('_');
        family.extend(
            seg.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }),
        );
    }
    NormalName {
        family,
        base: kept.join("."),
        labels,
    }
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// One value-bearing line, grouped under its family before rendering.
struct Sample {
    labels: Vec<(String, String)>,
    /// Pre-rendered value text (integers for counters/gauges).
    value: String,
    /// Extra histogram lines (bucket/count/sum) already rendered, replacing
    /// the single `value` sample.
    histogram: Option<HistogramSample>,
}

struct HistogramSample {
    edges: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
}

struct Family {
    kind: &'static str,
    help: String,
    samples: Vec<Sample>,
}

fn push_sample(
    families: &mut BTreeMap<String, Family>,
    name: String,
    kind: &'static str,
    help: String,
    sample: Sample,
) {
    families
        .entry(name)
        .or_insert_with(|| Family {
            kind,
            help,
            samples: Vec::new(),
        })
        .samples
        .push(sample);
}

fn render_families(out: &mut String, families: &BTreeMap<String, Family>) {
    for (name, family) in families {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {name} {}", family.kind);
        for s in &family.samples {
            match &s.histogram {
                None => {
                    let _ = writeln!(out, "{name}{} {}", label_block(&s.labels), s.value);
                }
                Some(h) => {
                    let mut cumulative = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cumulative += c;
                        let mut labels = s.labels.clone();
                        let le = match h.edges.get(i) {
                            Some(e) => e.to_string(),
                            None => "+Inf".to_string(),
                        };
                        labels.push(("le".to_string(), le));
                        let _ =
                            writeln!(out, "{name}_bucket{} {cumulative}", label_block(&labels));
                    }
                    // `_count` comes from the same `counts` read as the
                    // buckets above, so it always equals their sum.
                    let block = label_block(&s.labels);
                    let _ = writeln!(out, "{name}_count{block} {cumulative}");
                    let _ = writeln!(out, "{name}_sum{block} {}", h.sum);
                }
            }
        }
    }
}

/// Render `registry` into Prometheus text exposition format 0.0.4.
///
/// Each metric section is captured in one pass under its map lock, so a
/// scrape concurrent with updates or [`Registry::reset`] is tear-free per
/// family; see the module docs for the normalisation rules.
pub fn prometheus_text(registry: &Registry) -> String {
    // One locked snapshot per section; values are read while the map lock
    // is held so no family mixes entries from different instants of the
    // map itself.
    let counters: Vec<(&'static str, u64)> = {
        let map = registry.counters.lock().unwrap();
        map.iter().map(|(&k, c)| (k, c.get())).collect()
    };
    let gauges: Vec<(&'static str, i64)> = {
        let map = registry.gauges.lock().unwrap();
        map.iter().map(|(&k, g)| (k, g.get())).collect()
    };
    let histograms: Vec<(&'static str, Vec<u64>, Vec<u64>, u64)> = {
        let map = registry.histograms.lock().unwrap();
        map.iter()
            .map(|(&k, h)| (k, h.edges().to_vec(), h.counts(), h.sum()))
            .collect()
    };
    let stages: Vec<(&'static str, u64, u64)> = {
        let map = registry.stages.lock().unwrap();
        map.iter().map(|(&k, s)| (k, s.total_ns(), s.calls())).collect()
    };

    let mut out = String::new();

    let mut counter_families = BTreeMap::new();
    for (raw, value) in counters {
        let n = normalize(raw);
        push_sample(
            &mut counter_families,
            format!("{}_total", n.family),
            "counter",
            format!("PKA counter `{}`.", n.base),
            Sample {
                labels: n.labels,
                value: value.to_string(),
                histogram: None,
            },
        );
    }
    render_families(&mut out, &counter_families);

    let mut gauge_families = BTreeMap::new();
    for (raw, value) in gauges {
        let n = normalize(raw);
        push_sample(
            &mut gauge_families,
            n.family,
            "gauge",
            format!("PKA gauge `{}`.", n.base),
            Sample {
                labels: n.labels,
                value: value.to_string(),
                histogram: None,
            },
        );
    }
    render_families(&mut out, &gauge_families);

    let mut histogram_families = BTreeMap::new();
    for (raw, edges, counts, sum) in histograms {
        let n = normalize(raw);
        push_sample(
            &mut histogram_families,
            n.family,
            "histogram",
            format!("PKA histogram `{}` (fixed inclusive upper edges).", n.base),
            Sample {
                labels: n.labels,
                value: String::new(),
                histogram: Some(HistogramSample { edges, counts, sum }),
            },
        );
    }
    render_families(&mut out, &histogram_families);

    let mut stage_families = BTreeMap::new();
    for (raw, total_ns, calls) in stages {
        let n = normalize(raw);
        push_sample(
            &mut stage_families,
            format!("{}_total_ns", n.family),
            "counter",
            format!("Total nanoseconds in PKA stage `{}`.", n.base),
            Sample {
                labels: n.labels.clone(),
                value: total_ns.to_string(),
                histogram: None,
            },
        );
        push_sample(
            &mut stage_families,
            format!("{}_calls", n.family),
            "counter",
            format!("Recorded intervals of PKA stage `{}`.", n.base),
            Sample {
                labels: n.labels,
                value: calls.to_string(),
                histogram: None,
            },
        );
    }
    render_families(&mut out, &stage_families);

    out
}

/// [`prometheus_text`] over the process-wide registry.
pub fn global_prometheus() -> String {
    prometheus_text(crate::global())
}

// ---------------------------------------------------------------------------
// Parsing (the minimal exposition grammar)
// ---------------------------------------------------------------------------

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct ParsedSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    line_no: usize,
}

fn parse_labels(block: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without `=`"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("line {line_no}: invalid label name `{name}`"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e @ ('\\' | '"'))) => value.push(e),
                    _ => return Err(format!("line {line_no}: bad escape in label value")),
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let end =
            consumed.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((name.to_string(), value));
        rest = &rest[end..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: expected `,` between labels"));
        }
    }
    Ok(labels)
}

fn parse_sample(line: &str, line_no: usize) -> Result<ParsedSample, String> {
    let (ident, value_text) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("line {line_no}: unmatched `{{`"))?;
            if close < open {
                return Err(format!("line {line_no}: unmatched `{{`"));
            }
            let labels = parse_labels(&line[open + 1..close], line_no)?;
            (
                (line[..open].to_string(), labels),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().unwrap_or_default().to_string();
            ((name, Vec::new()), it.next().unwrap_or_default().trim())
        }
    };
    let (name, labels) = ident;
    if !valid_metric_name(&name) {
        return Err(format!("line {line_no}: invalid metric name `{name}`"));
    }
    if value_text.is_empty() {
        return Err(format!("line {line_no}: sample `{name}` has no value"));
    }
    let value: f64 = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse()
            .map_err(|_| format!("line {line_no}: invalid sample value `{v}`"))?,
    };
    Ok(ParsedSample {
        name,
        labels,
        value,
        line_no,
    })
}

fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut labels: Vec<&(String, String)> =
        labels.iter().filter(|(k, _)| k != "le").collect();
    labels.sort();
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if rendered.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", rendered.join(","))
    }
}

fn integral(v: f64) -> Value {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        if v < 0.0 {
            json!(v as i64)
        } else {
            json!(v as u64)
        }
    } else {
        json!(v)
    }
}

/// Parse a Prometheus text exposition into a `pka.run_manifest/v1`-shaped
/// document ready for [`diff_manifests`](crate::diff_manifests).
///
/// Every sample line must belong to a family declared by a preceding
/// `# TYPE` line; histogram families are de-cumulated back into
/// `edges`/`counts`, and `_total_ns`/`_calls` counter pairs are re-joined
/// into the `stages` section. Series keys carry their sorted label block
/// (`pka_stream_records_total{shard="0"}`).
///
/// # Errors
///
/// Returns a line-attributed message for any text outside the grammar, a
/// sample without a `# TYPE`, non-cumulative histogram buckets, or a
/// histogram whose `_count` disagrees with the sum of its buckets.
pub fn parse_exposition(text: &str) -> Result<Value, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<ParsedSample> = Vec::new();

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a name"))?;
                let kind = it
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a kind"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: invalid family name `{name}`"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {line_no}: unknown TYPE `{kind}`"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {line_no}: duplicate TYPE for `{name}`"));
                }
            }
            // HELP and other comments carry no data.
            continue;
        }
        samples.push(parse_sample(trimmed, line_no)?);
    }

    // Resolve each sample to its declaring family.
    let family_of = |s: &ParsedSample| -> Result<(String, String), String> {
        if let Some(kind) = types.get(&s.name) {
            return Ok((s.name.clone(), kind.clone()));
        }
        for suffix in ["_bucket", "_count", "_sum"] {
            if let Some(base) = s.name.strip_suffix(suffix) {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    return Ok((base.to_string(), "histogram".to_string()));
                }
            }
        }
        Err(format!(
            "line {}: sample `{}` has no preceding # TYPE",
            s.line_no, s.name
        ))
    };

    let mut counters = Map::new();
    let mut gauges = Map::new();
    let mut histograms = Map::new();
    // family -> series key -> (finite (le, cumulative) pairs in order,
    // +Inf cumulative, declared _count).
    type HistAcc = BTreeMap<String, (Vec<(u64, u64)>, Option<u64>, Option<u64>)>;
    let mut hist_acc: BTreeMap<String, HistAcc> = BTreeMap::new();

    for s in &samples {
        let (family, kind) = family_of(s)?;
        match kind.as_str() {
            "counter" => {
                counters.insert(series_key(&s.name, &s.labels), integral(s.value));
            }
            "gauge" => {
                gauges.insert(series_key(&s.name, &s.labels), integral(s.value));
            }
            "histogram" => {
                let key = series_key(&family, &s.labels);
                let entry = hist_acc
                    .entry(family.clone())
                    .or_default()
                    .entry(key)
                    .or_insert_with(|| (Vec::new(), None, None));
                if s.name.ends_with("_bucket") {
                    let le = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| {
                            format!("line {}: _bucket without `le`", s.line_no)
                        })?;
                    let cumulative = s.value as u64;
                    if le == "+Inf" {
                        entry.1 = Some(cumulative);
                    } else {
                        let edge: u64 = le.parse().map_err(|_| {
                            format!("line {}: non-integer le `{le}`", s.line_no)
                        })?;
                        entry.0.push((edge, cumulative));
                    }
                } else if s.name.ends_with("_count") {
                    entry.2 = Some(s.value as u64);
                }
                // `_sum` is informational; manifests carry counts only.
            }
            other => {
                return Err(format!(
                    "line {}: unsupported family type `{other}`",
                    s.line_no
                ));
            }
        }
    }

    for (family, series) in hist_acc {
        for (key, (finite, inf, declared_count)) in series {
            let total = inf.ok_or_else(|| {
                format!("histogram `{family}`: missing le=\"+Inf\" bucket")
            })?;
            let mut edges = Vec::with_capacity(finite.len());
            let mut counts = Vec::with_capacity(finite.len() + 1);
            let mut prev = 0u64;
            for (edge, cumulative) in finite {
                if cumulative < prev {
                    return Err(format!(
                        "histogram `{family}`: buckets are not cumulative"
                    ));
                }
                edges.push(edge);
                counts.push(cumulative - prev);
                prev = cumulative;
            }
            if total < prev {
                return Err(format!(
                    "histogram `{family}`: +Inf bucket below the last finite bucket"
                ));
            }
            counts.push(total - prev);
            if let Some(declared) = declared_count {
                if declared != total {
                    return Err(format!(
                        "histogram `{family}`: _count {declared} != sum of buckets {total}"
                    ));
                }
            }
            histograms.insert(key, json!({ "edges": edges, "counts": counts }));
        }
    }

    // Re-join `_total_ns` / `_calls` counter pairs into stages.
    let mut stages = Map::new();
    let ns_keys: Vec<String> = counters
        .keys()
        .filter(|k| stage_base(k, "_total_ns").is_some())
        .cloned()
        .collect();
    for ns_key in ns_keys {
        let (base, labels) = stage_base(&ns_key, "_total_ns").expect("filtered above");
        let calls_key = format!("{base}_calls{labels}");
        let Some(calls) = counters.get(&calls_key).cloned() else {
            continue; // unpaired: leave it as a plain counter
        };
        let total_ns = counters
            .get(&ns_key)
            .cloned()
            .expect("key came from the map");
        counters.remove(&ns_key);
        counters.remove(&calls_key);
        stages.insert(
            format!("{base}{labels}"),
            json!({ "calls": calls, "total_ns": total_ns }),
        );
    }

    Ok(json!({
        "schema": MANIFEST_SCHEMA,
        "wall_ns": 0,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "stages": stages,
        "checksums": {},
    }))
}

/// Splits a series key `pka_x_total_ns{...}` into (`pka_x`, `{...}`) when
/// its family name ends with `suffix`.
fn stage_base<'a>(key: &'a str, suffix: &str) -> Option<(&'a str, &'a str)> {
    let (name, labels) = match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    };
    name.strip_suffix(suffix).map(|base| (base, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn normalisation_extracts_shard_and_worker_labels() {
        let n = normalize("stream.shard3.records");
        assert_eq!(n.family, "pka_stream_records");
        assert_eq!(n.base, "stream.records");
        assert_eq!(n.labels, vec![("shard".to_string(), "3".to_string())]);

        let n = normalize("executor.worker_busy.w12");
        assert_eq!(n.family, "pka_executor_worker_busy");
        assert_eq!(n.labels, vec![("worker".to_string(), "12".to_string())]);

        // `w` and `shard` without digits are ordinary segments.
        let n = normalize("stream.shard.weird-name");
        assert_eq!(n.family, "pka_stream_shard_weird_name");
        assert!(n.labels.is_empty());
    }

    #[test]
    fn render_covers_every_metric_kind() {
        let r = Registry::new();
        r.counter("stream.records").add(100);
        r.counter(crate::intern("stream.shard0.records")).add(40);
        r.counter(crate::intern("stream.shard1.records")).add(60);
        r.gauge("stream.selected_k").set(9);
        let h = r.histogram("server.request_ns", &[1_000, 1_000_000]);
        h.record(500);
        h.record(500);
        h.record(2_000_000);
        r.stage("pks.sweep").record_ns(1234);
        let text = prometheus_text(&r);
        let expected = "\
# HELP pka_stream_records_total PKA counter `stream.records`.
# TYPE pka_stream_records_total counter
pka_stream_records_total 100
pka_stream_records_total{shard=\"0\"} 40
pka_stream_records_total{shard=\"1\"} 60
# HELP pka_stream_selected_k PKA gauge `stream.selected_k`.
# TYPE pka_stream_selected_k gauge
pka_stream_selected_k 9
# HELP pka_server_request_ns PKA histogram `server.request_ns` (fixed inclusive upper edges).
# TYPE pka_server_request_ns histogram
pka_server_request_ns_bucket{le=\"1000\"} 2
pka_server_request_ns_bucket{le=\"1000000\"} 2
pka_server_request_ns_bucket{le=\"+Inf\"} 3
pka_server_request_ns_count 3
pka_server_request_ns_sum 2001000
# HELP pka_pks_sweep_calls Recorded intervals of PKA stage `pks.sweep`.
# TYPE pka_pks_sweep_calls counter
pka_pks_sweep_calls 1
# HELP pka_pks_sweep_total_ns Total nanoseconds in PKA stage `pks.sweep`.
# TYPE pka_pks_sweep_total_ns counter
pka_pks_sweep_total_ns 1234
";
        assert_eq!(text, expected);
    }

    #[test]
    fn round_trip_rebuilds_manifest_sections() {
        let r = Registry::new();
        r.counter("stream.records").add(7);
        r.counter(crate::intern("stream.shard0.records")).add(3);
        r.gauge("stream.max_buffered").set(-1);
        let h = r.histogram("stream.checkpoint_write_ns", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5_000);
        r.stage("pks.sweep").record_ns(999);
        r.stage("pks.sweep").record_ns(1);

        let doc = parse_exposition(&prometheus_text(&r)).expect("parse");
        assert_eq!(doc["schema"].as_str(), Some(MANIFEST_SCHEMA));
        assert_eq!(doc["counters"]["pka_stream_records_total"], json!(7));
        assert_eq!(
            doc["counters"]["pka_stream_records_total{shard=\"0\"}"],
            json!(3)
        );
        assert_eq!(doc["gauges"]["pka_stream_max_buffered"], json!(-1));
        assert_eq!(
            doc["histograms"]["pka_stream_checkpoint_write_ns"],
            json!({ "edges": [10, 100], "counts": [1, 1, 1] })
        );
        assert_eq!(
            doc["stages"]["pka_pks_sweep"],
            json!({ "calls": 2, "total_ns": 1000 })
        );
        // The stage halves were consumed by the join.
        assert!(doc["counters"].get("pka_pks_sweep_total_ns").is_none());
        assert!(doc["counters"].get("pka_pks_sweep_calls").is_none());

        // A clean self-diff through the real gate.
        let report =
            crate::diff_manifests(&doc, &doc, &crate::DiffThresholds::default(), true)
                .expect("diff");
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn parser_rejects_text_outside_the_grammar() {
        for (text, why) in [
            ("pka_x_total 1\n", "sample without TYPE"),
            ("# TYPE pka_x counter\npka_x\n", "sample without value"),
            ("# TYPE pka_x counter\npka_x nope\n", "non-numeric value"),
            ("# TYPE 9bad counter\n", "invalid family name"),
            (
                "# TYPE pka_x counter\n# TYPE pka_x counter\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE pka_x counter\npka_x{le=\"oops} 1\n",
                "unterminated label",
            ),
            (
                "# TYPE pka_h histogram\npka_h_bucket{le=\"10\"} 5\npka_h_bucket{le=\"20\"} 3\npka_h_bucket{le=\"+Inf\"} 5\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE pka_h histogram\npka_h_bucket{le=\"10\"} 5\npka_h_bucket{le=\"+Inf\"} 5\npka_h_count 9\n",
                "_count disagrees with buckets",
            ),
            (
                "# TYPE pka_h histogram\npka_h_bucket{le=\"10\"} 5\n",
                "missing +Inf bucket",
            ),
        ] {
            assert!(parse_exposition(text).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn scrape_is_tear_free_per_family_under_concurrent_updates_and_reset() {
        // Satellite contract: `/metrics` scraped concurrently with metric
        // updates and `Registry::reset` parses under the grammar and every
        // histogram's `_count` equals the sum of its buckets (the parser
        // rejects any scrape where it does not).
        let r = Registry::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let h = r.histogram("test.tear_ns", &[10, 100, 1_000]);
                    let c = r.counter("test.tear_total_events");
                    let mut v = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(v % 2_000);
                        c.incr();
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                });
            }
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    r.reset();
                    std::thread::yield_now();
                }
            });
            for _ in 0..200 {
                let text = prometheus_text(&r);
                let doc = parse_exposition(&text).expect("tear-free scrape");
                // De-cumulation + the `_count` cross-check run inside the
                // parser; re-assert the bucket sum here explicitly.
                if let Some(h) = doc["histograms"]["pka_test_tear_ns"].as_object() {
                    let total: u64 = h["counts"]
                        .as_array()
                        .expect("counts")
                        .iter()
                        .map(|c| c.as_u64().expect("count"))
                        .sum();
                    assert!(
                        text.contains(&format!("pka_test_tear_ns_count {total}")),
                        "_count must equal the bucket sum in every scrape"
                    );
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn unpaired_total_ns_counter_stays_a_counter() {
        let text = "# TYPE pka_lonely_total_ns counter\npka_lonely_total_ns 5\n";
        let doc = parse_exposition(text).expect("parse");
        assert_eq!(doc["counters"]["pka_lonely_total_ns"], json!(5));
        assert!(doc["stages"].as_object().expect("stages").is_empty());
    }
}
