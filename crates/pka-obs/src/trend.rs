//! Cross-run performance trends: a bounded on-disk ring of per-commit run
//! manifests plus a detector for *creeping* slowdowns.
//!
//! The single-run CI gate (`diff_manifests`) compares one commit against
//! one baseline with a slowdown threshold, so a sequence of commits that
//! each slow a stage by just under the threshold sails through while the
//! cumulative regression compounds. The trend ring closes that gap:
//! [`trend_push`] appends the current manifest to a bounded
//! `results/trend/` ring (oldest entries pruned), and [`trend_report`]
//! flags any stage (or the wall time) whose timings over the trailing
//! window are monotonically non-decreasing, individually under the
//! single-run threshold, but cumulatively past it.

use std::io;
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::diff::{DiffEntry, DiffReport};
use crate::MANIFEST_SCHEMA;

/// Parameters of the creep detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendThresholds {
    /// The single-run slowdown threshold, in percent. A step past this is
    /// the ordinary gate's business; the trend detector looks for windows
    /// whose *steps* all stay at or under it while their *total* exceeds it.
    pub stage_pct: f64,
    /// Number of trailing runs (including the current one) the detector
    /// examines. Metrics present in fewer runs are reported but never flag.
    pub window: usize,
}

impl Default for TrendThresholds {
    fn default() -> Self {
        Self {
            stage_pct: 25.0,
            window: 4,
        }
    }
}

fn entry_seq(name: &str) -> Option<u64> {
    name.strip_prefix("trend-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

fn ring_entries(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut entries = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if let Some(seq) = entry_seq(name) {
            entries.push((seq, entry.path()));
        }
    }
    entries.sort();
    Ok(entries)
}

/// Append `manifest` to the trend ring at `dir` (created if missing) as
/// `trend-<seq>.json`, then prune the oldest entries down to `cap` files.
/// Returns the path written.
///
/// # Errors
///
/// I/O failures, or [`io::ErrorKind::InvalidData`] when `manifest` does not
/// declare `pka.run_manifest/v1`.
pub fn trend_push(dir: &Path, manifest: &Value, cap: usize) -> io::Result<PathBuf> {
    let schema = manifest["schema"].as_str().unwrap_or("");
    if schema != MANIFEST_SCHEMA {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected schema `{MANIFEST_SCHEMA}`, got `{schema}`"),
        ));
    }
    std::fs::create_dir_all(dir)?;
    let mut entries = ring_entries(dir)?;
    let seq = entries.last().map_or(0, |&(s, _)| s + 1);
    let path = dir.join(format!("trend-{seq:08}.json"));
    let mut text = serde_json::to_string_pretty(manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    text.push('\n');
    std::fs::write(&path, text)?;
    entries.push((seq, path.clone()));
    let cap = cap.max(1);
    while entries.len() > cap {
        let (_, oldest) = entries.remove(0);
        std::fs::remove_file(oldest)?;
    }
    Ok(path)
}

/// Load every ring entry under `dir` in sequence order. A missing directory
/// is an empty ring, not an error.
pub fn trend_load(dir: &Path) -> io::Result<Vec<Value>> {
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut runs = Vec::new();
    for (_, path) in ring_entries(dir)? {
        let text = std::fs::read_to_string(&path)?;
        let value = serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        runs.push(value);
    }
    Ok(runs)
}

/// Scan `runs` (oldest first) for creeping slowdowns in stage timings and
/// wall time. An entry flags as a regression when, over the trailing
/// `window` runs, its values are monotonically non-decreasing, every
/// consecutive step is at or under `stage_pct`, and the cumulative slowdown
/// across the window exceeds `stage_pct` — exactly the drift the single-run
/// gate cannot see.
///
/// # Errors
///
/// Returns a message when any run does not declare `pka.run_manifest/v1`.
pub fn trend_report(runs: &[Value], thresholds: &TrendThresholds) -> Result<DiffReport, String> {
    for (i, run) in runs.iter().enumerate() {
        let schema = run["schema"].as_str().unwrap_or("");
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "run {i}: expected schema `{MANIFEST_SCHEMA}`, got `{schema}`"
            ));
        }
    }
    let mut names: Vec<String> = runs
        .iter()
        .filter_map(|r| r["stages"].as_object())
        .flat_map(|m| m.keys().cloned())
        .collect();
    names.sort();
    names.dedup();

    let mut report = DiffReport::default();
    let window = thresholds.window.max(2);
    let mut push = |name: &str, series: Vec<Option<f64>>| {
        // The trailing window must be fully populated for the metric.
        let tail: Vec<f64> = series
            .iter()
            .rev()
            .take(window)
            .rev()
            .filter_map(|&v| v)
            .collect();
        let full = tail.len() == window && series.len() >= window;
        let (first, last) = match (tail.first(), tail.last()) {
            (Some(&f), Some(&l)) => (f, l),
            _ => return,
        };
        let monotonic = tail.windows(2).all(|w| w[1] >= w[0]);
        let steps_under = tail.windows(2).all(|w| {
            w[0] <= 0.0 || (w[1] - w[0]) / w[0] * 100.0 <= thresholds.stage_pct
        });
        let cumulative = if first > 0.0 {
            Some((last - first) / first * 100.0)
        } else {
            None
        };
        let creeping = full
            && monotonic
            && steps_under
            && cumulative.is_some_and(|c| c > thresholds.stage_pct);
        report.entries.push(DiffEntry {
            kind: "trend",
            name: name.to_string(),
            base: format!("{}", first as u64),
            current: format!("{}", last as u64),
            delta_pct: cumulative,
            regression: creeping,
        });
    };

    for name in &names {
        let series: Vec<Option<f64>> = runs
            .iter()
            .map(|r| r["stages"][name.as_str()]["total_ns"].as_f64())
            .collect();
        push(name, series);
    }
    let wall: Vec<Option<f64>> = runs.iter().map(|r| r["wall_ns"].as_f64()).collect();
    push("wall_ns", wall);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn manifest(stage_ns: u64, wall_ns: u64) -> Value {
        json!({
            "schema": MANIFEST_SCHEMA,
            "wall_ns": wall_ns,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "stages": { "pks.sweep": { "calls": 1u64, "total_ns": stage_ns } },
            "checksums": {},
        })
    }

    fn temp_ring(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pka_obs_trend_{}_{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn push_is_bounded_and_load_returns_sequence_order() {
        let dir = temp_ring("ring");
        for i in 0..6u64 {
            trend_push(&dir, &manifest(1_000 + i, 2_000 + i), 4).expect("push");
        }
        let runs = trend_load(&dir).expect("load");
        assert_eq!(runs.len(), 4, "ring prunes to cap");
        let walls: Vec<u64> = runs.iter().map(|r| r["wall_ns"].as_u64().unwrap()).collect();
        assert_eq!(walls, vec![2_002, 2_003, 2_004, 2_005], "oldest pruned first");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn push_rejects_foreign_schema_and_load_tolerates_missing_dir() {
        let dir = temp_ring("schema");
        let err = trend_push(&dir, &json!({ "schema": "other/v1" }), 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(trend_load(&dir.join("missing")).expect("empty").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn creeping_slowdown_under_single_run_threshold_flags() {
        // +20% per run, each under the 25% single-run threshold, 72.8%
        // cumulative over the 4-run window.
        let runs: Vec<Value> = [1_000u64, 1_200, 1_440, 1_728]
            .iter()
            .map(|&ns| manifest(ns, 10_000))
            .collect();
        let report = trend_report(&runs, &TrendThresholds::default()).expect("report");
        assert_eq!(report.regressions(), 1);
        let creep = report.entries.iter().find(|e| e.regression).unwrap();
        assert_eq!(creep.name, "pks.sweep");
        assert!((creep.delta_pct.unwrap() - 72.8).abs() < 0.1);
        // Flat wall time does not flag.
        let wall = report.entries.iter().find(|e| e.name == "wall_ns").unwrap();
        assert!(!wall.regression);
    }

    #[test]
    fn non_monotonic_or_big_step_series_do_not_flag() {
        // A dip breaks monotonicity even though first -> last is +80%.
        let dip: Vec<Value> = [1_000u64, 1_500, 1_200, 1_800]
            .iter()
            .map(|&ns| manifest(ns, 1))
            .collect();
        let report = trend_report(&dip, &TrendThresholds::default()).expect("report");
        assert_eq!(report.regressions(), 0, "non-monotonic window must not flag");

        // A single +50% jump is the single-run gate's catch, not a creep.
        let jump: Vec<Value> = [1_000u64, 1_010, 1_515, 1_520]
            .iter()
            .map(|&ns| manifest(ns, 1))
            .collect();
        let report = trend_report(&jump, &TrendThresholds::default()).expect("report");
        assert_eq!(report.regressions(), 0, "over-threshold step must not flag");
    }

    #[test]
    fn short_history_reports_but_never_flags() {
        let runs: Vec<Value> = [1_000u64, 1_200, 1_440]
            .iter()
            .map(|&ns| manifest(ns, 1))
            .collect();
        let report = trend_report(&runs, &TrendThresholds::default()).expect("report");
        assert_eq!(report.regressions(), 0);
        assert!(report.entries.iter().any(|e| e.name == "pks.sweep"));
    }

    #[test]
    fn trend_report_rejects_foreign_schema() {
        let runs = vec![manifest(1, 1), json!({ "schema": "nope" })];
        assert!(trend_report(&runs, &TrendThresholds::default()).is_err());
    }

    #[test]
    fn empty_ring_yields_an_empty_report() {
        let report = trend_report(&[], &TrendThresholds::default()).expect("report");
        assert!(report.entries.is_empty(), "no runs, no entries");
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn single_entry_reports_but_never_flags() {
        let runs = vec![manifest(1_000, 2_000)];
        let report = trend_report(&runs, &TrendThresholds::default()).expect("report");
        assert_eq!(report.regressions(), 0, "one run cannot creep");
        let stage = report.entries.iter().find(|e| e.name == "pks.sweep").unwrap();
        assert_eq!((stage.base.as_str(), stage.current.as_str()), ("1000", "1000"));
        assert_eq!(stage.delta_pct, Some(0.0));
    }

    #[test]
    fn exact_window_wrap_detects_creep_over_surviving_entries() {
        // Ring cap equals the detector window: the sixth push evicts the
        // oldest two runs, and the surviving four form a textbook creep
        // (+20% steps, 72.8% cumulative). The evicted flat runs must not
        // dilute the detection.
        let dir = temp_ring("wrap");
        for &ns in &[500u64, 500, 1_000, 1_200, 1_440, 1_728] {
            trend_push(&dir, &manifest(ns, 9_000), 4).expect("push");
        }
        let runs = trend_load(&dir).expect("load");
        assert_eq!(runs.len(), 4, "ring wrapped to cap");
        let report = trend_report(&runs, &TrendThresholds::default()).expect("report");
        assert_eq!(report.regressions(), 1);
        let creep = report.entries.iter().find(|e| e.regression).unwrap();
        assert_eq!(creep.name, "pks.sweep");
        assert!((creep.delta_pct.unwrap() - 72.8).abs() < 0.1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn push_after_wrap_with_partial_window_does_not_fire() {
        // A stage that first appears mid-ring has a partially populated
        // trailing window; even a monotonic over-threshold rise must wait
        // for a full window before the creep rule may fire.
        let dir = temp_ring("partial");
        let no_stage = json!({
            "schema": MANIFEST_SCHEMA,
            "wall_ns": 9_000u64,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "stages": {},
            "checksums": {},
        });
        for _ in 0..3 {
            trend_push(&dir, &no_stage, 4).expect("push");
        }
        for &ns in &[1_000u64, 1_200, 1_440] {
            trend_push(&dir, &manifest(ns, 9_000), 4).expect("push");
        }
        let runs = trend_load(&dir).expect("load");
        assert_eq!(runs.len(), 4, "ring wrapped to cap");
        assert!(
            runs[0]["stages"]["pks.sweep"].is_null(),
            "oldest surviving run predates the stage"
        );
        let report = trend_report(&runs, &TrendThresholds::default()).expect("report");
        assert_eq!(report.regressions(), 0, "partial window must not fire");
        let stage = report.entries.iter().find(|e| e.name == "pks.sweep").unwrap();
        assert!(!stage.regression);
        assert!((stage.delta_pct.unwrap() - 44.0).abs() < 0.1, "still reported");
        std::fs::remove_dir_all(&dir).ok();
    }
}
