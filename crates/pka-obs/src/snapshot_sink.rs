//! Live snapshot emission: the `pka.snapshot/v1` JSONL schema.
//!
//! A snapshot is a periodic, in-flight progress record emitted by the
//! streaming pipeline (and, at phase boundaries, by the batch commands):
//! prefix-vs-tail phase, records folded so far, per-group assignment
//! counts, reservoir occupancy, drift/recluster/checkpoint event counts,
//! and the bounded-memory high-water mark.
//!
//! Determinism contract: every field of [`SnapshotRecord`] is a pure
//! function of the input stream and configuration, so the record payload is
//! byte-identical across `--workers` counts. All wall-clock-derived data
//! (elapsed nanoseconds, kernels/s throughput, cumulative checkpoint write
//! time) is quarantined in a `"timing"` sub-object added by the sink, which
//! parity tooling strips before comparison.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use serde_json::{json, Map, Value};

/// Schema identifier stamped into the snapshot JSONL header.
pub const SNAPSHOT_SCHEMA: &str = "pka.snapshot/v1";

/// The deterministic payload of one `pka.snapshot/v1` record.
///
/// Batch commands that have no streaming state (no reservoir, no drift
/// trackers) leave the corresponding fields zero/empty.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotRecord {
    /// Pipeline phase: `"prefix"` / `"tail"` for streaming runs,
    /// `"profile"` / `"select"` / `"simulate"` for batch commands.
    pub phase: String,
    /// Records folded (streaming) or kernels processed (batch) so far.
    pub records: u64,
    /// Currently selected K (0 before selection).
    pub selected_k: i64,
    /// Per-group assignment counts, indexed by group id.
    pub group_counts: Vec<u64>,
    /// Reservoir occupancy (streaming only).
    pub reservoir_len: u64,
    /// Reservoir capacity (streaming only).
    pub reservoir_cap: u64,
    /// Drift detections fired so far.
    pub drifts: u64,
    /// Reservoir reclusters performed so far.
    pub reclusters: u64,
    /// Checkpoints written so far.
    pub checkpoints: u64,
    /// Bounded-memory high-water mark (max records buffered at once).
    pub max_buffered: u64,
    /// Per-shard records folded so far, indexed by shard id. Empty for
    /// single-pipeline runs, in which case the field is omitted from the
    /// JSONL line entirely (keeping pre-sharding snapshot bytes stable).
    pub shards: Vec<u64>,
}

impl SnapshotRecord {
    /// The record as a JSON object (deterministic payload only; `type`,
    /// `seq`, and `timing` are stamped by the sink).
    pub fn to_value(&self) -> Value {
        let mut v = json!({
            "phase": self.phase,
            "records": self.records,
            "selected_k": self.selected_k,
            "group_counts": self.group_counts,
            "reservoir_len": self.reservoir_len,
            "reservoir_cap": self.reservoir_cap,
            "drifts": self.drifts,
            "reclusters": self.reclusters,
            "checkpoints": self.checkpoints,
            "max_buffered": self.max_buffered,
        });
        if !self.shards.is_empty() {
            if let Value::Object(m) = &mut v {
                m.insert("shards".to_string(), json!(self.shards));
            }
        }
        v
    }

    /// Rebuild a record from a JSONL snapshot line (sink-stamped fields are
    /// ignored, so this accepts both bare payloads and full records).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let need_u64 = |k: &str| {
            v[k].as_u64()
                .ok_or_else(|| format!("snapshot record: missing/invalid field `{k}`"))
        };
        Ok(Self {
            phase: v["phase"]
                .as_str()
                .ok_or("snapshot record: missing/invalid field `phase`")?
                .to_string(),
            records: need_u64("records")?,
            selected_k: v["selected_k"]
                .as_i64()
                .ok_or("snapshot record: missing/invalid field `selected_k`")?,
            group_counts: v["group_counts"]
                .as_array()
                .ok_or("snapshot record: missing/invalid field `group_counts`")?
                .iter()
                .map(|g| g.as_u64().ok_or("snapshot record: non-integer group count"))
                .collect::<Result<_, _>>()?,
            reservoir_len: need_u64("reservoir_len")?,
            reservoir_cap: need_u64("reservoir_cap")?,
            drifts: need_u64("drifts")?,
            reclusters: need_u64("reclusters")?,
            checkpoints: need_u64("checkpoints")?,
            max_buffered: need_u64("max_buffered")?,
            shards: match v.get("shards") {
                None | Some(Value::Null) => Vec::new(),
                Some(s) => s
                    .as_array()
                    .ok_or("snapshot record: invalid field `shards`")?
                    .iter()
                    .map(|n| n.as_u64().ok_or("snapshot record: non-integer shard count"))
                    .collect::<Result<_, _>>()?,
            },
        })
    }
}

/// The snapshot sink: an optional JSONL writer plus an optional
/// human-readable stderr ticker, both fed by the same records.
pub(crate) struct SnapshotSink {
    writer: Option<BufWriter<File>>,
    every: u64,
    progress: bool,
    seq: u64,
    last: Option<(u64, u64)>, // (t_ns, records) of the previous emit
}

impl SnapshotSink {
    pub(crate) fn new(every: u64) -> Self {
        Self {
            writer: None,
            every: every.max(1),
            progress: false,
            seq: 0,
            last: None,
        }
    }

    pub(crate) fn attach(&mut self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        let header = json!({ "type": "header", "schema": SNAPSHOT_SCHEMA });
        writeln!(w, "{header}")?;
        w.flush()?;
        self.writer = Some(w);
        Ok(())
    }

    pub(crate) fn enable_progress(&mut self) {
        self.progress = true;
    }

    pub(crate) fn every(&self) -> u64 {
        self.every
    }

    /// Emit one record: stamp `type`/`seq`, compute the volatile `timing`
    /// sub-object (elapsed ns, kernels/s over the window since the previous
    /// emit), merge caller-supplied timing extras, write the JSONL line, and
    /// print the progress ticker when enabled. Returns the windowed
    /// kernels/s so the registry can mirror it into trace counter tracks.
    pub(crate) fn emit(&mut self, record: &SnapshotRecord, extra_timing: Value, t_ns: u64) -> f64 {
        let kps = match self.last {
            Some((last_t, last_records)) if t_ns > last_t => {
                (record.records.saturating_sub(last_records)) as f64 * 1e9
                    / (t_ns - last_t) as f64
            }
            _ if t_ns > 0 => record.records as f64 * 1e9 / t_ns as f64,
            _ => 0.0,
        };
        // Belt over the window guards above: a pathological clock (zero or
        // backwards elapsed time) must never leak `inf`/`NaN` into the JSONL
        // timing object — downstream jq/plot tooling chokes on both.
        let kps = if kps.is_finite() { kps } else { 0.0 };
        self.last = Some((t_ns, record.records));

        let mut timing = Map::new();
        timing.insert("t_ns".to_string(), json!(t_ns));
        timing.insert("kernels_per_sec".to_string(), json!(kps));
        if let Value::Object(extra) = extra_timing {
            for (k, v) in extra {
                timing.insert(k, v);
            }
        }

        let mut line = match record.to_value() {
            Value::Object(m) => m,
            _ => unreachable!("snapshot record serializes to an object"),
        };
        line.insert("type".to_string(), json!("snapshot"));
        line.insert("seq".to_string(), json!(self.seq));
        line.insert("timing".to_string(), Value::Object(timing));
        self.seq += 1;

        if let Some(w) = self.writer.as_mut() {
            let value = Value::Object(line);
            // A failed snapshot write must never abort the pipeline; drop
            // the writer so the run completes without snapshots.
            if writeln!(w, "{value}").and_then(|_| w.flush()).is_err() {
                self.writer = None;
            }
        }

        if self.progress {
            let shards = if record.shards.is_empty() {
                String::new()
            } else {
                let counts: Vec<String> =
                    record.shards.iter().map(u64::to_string).collect();
                format!(" shards=[{}]", counts.join(","))
            };
            eprintln!(
                "pka: phase={} records={} k={} reservoir={}/{} drifts={} reclusters={} ckpts={}{shards} {}",
                record.phase,
                record.records,
                record.selected_k,
                record.reservoir_len,
                record.reservoir_cap,
                record.drifts,
                record.reclusters,
                record.checkpoints,
                human_rate(kps),
            );
        }
        kps
    }

    pub(crate) fn close(&mut self) -> io::Result<()> {
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        Ok(())
    }
}

fn human_rate(kps: f64) -> String {
    if kps >= 1e6 {
        format!("{:.2}M rec/s", kps / 1e6)
    } else if kps >= 1e3 {
        format!("{:.1}k rec/s", kps / 1e3)
    } else {
        format!("{kps:.0} rec/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotRecord {
        SnapshotRecord {
            phase: "tail".to_string(),
            records: 120_000,
            selected_k: 12,
            group_counts: vec![40_000, 50_000, 30_000],
            reservoir_len: 256,
            reservoir_cap: 256,
            drifts: 3,
            reclusters: 1,
            checkpoints: 6,
            max_buffered: 640,
            shards: Vec::new(),
        }
    }

    #[test]
    fn shards_field_is_omitted_when_empty_and_round_trips_when_set() {
        let plain = sample();
        let v = plain.to_value();
        assert!(v.get("shards").is_none(), "empty shard lanes must not serialize");
        assert_eq!(SnapshotRecord::from_value(&v).unwrap(), plain);

        let mut sharded = sample();
        sharded.shards = vec![30_000, 50_000, 40_000];
        let v = sharded.to_value();
        assert_eq!(
            v["shards"].as_array().map(Vec::len),
            Some(3),
            "shard lanes serialize when present"
        );
        assert_eq!(SnapshotRecord::from_value(&v).unwrap(), sharded);
    }

    #[test]
    fn record_round_trips_through_value() {
        let rec = sample();
        let back = SnapshotRecord::from_value(&rec.to_value()).expect("round trip");
        assert_eq!(back, rec);
    }

    #[test]
    fn from_value_ignores_sink_stamped_fields() {
        let rec = sample();
        let mut line = match rec.to_value() {
            Value::Object(m) => m,
            _ => unreachable!(),
        };
        line.insert("type".to_string(), json!("snapshot"));
        line.insert("seq".to_string(), json!(4));
        line.insert("timing".to_string(), json!({ "t_ns": 99, "kernels_per_sec": 1.5 }));
        let back = SnapshotRecord::from_value(&Value::Object(line)).expect("full line");
        assert_eq!(back, rec);
    }

    #[test]
    fn from_value_rejects_missing_fields() {
        let mut line = match sample().to_value() {
            Value::Object(m) => m,
            _ => unreachable!(),
        };
        line.remove("reservoir_len");
        assert!(SnapshotRecord::from_value(&Value::Object(line)).is_err());
    }

    #[test]
    fn zero_elapsed_window_never_emits_non_finite_rate() {
        let path = std::env::temp_dir().join(format!(
            "pka_obs_test_zero_window_{}.jsonl",
            std::process::id()
        ));
        let mut sink = SnapshotSink::new(100);
        sink.attach(&path).expect("open sink");
        // t_ns == 0 on the first emit, then two emits on a stalled clock:
        // every window below has zero elapsed time.
        assert_eq!(sink.emit(&sample(), Value::Null, 0), 0.0);
        sink.emit(&sample(), Value::Null, 7);
        let mut more = sample();
        more.records += 5_000;
        let kps = sink.emit(&more, Value::Null, 7);
        assert!(kps.is_finite(), "stalled-clock window must stay finite: {kps}");
        sink.close().expect("close");
        let body = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        for line in body.lines().skip(1) {
            let v: Value = serde_json::from_str(line).expect("valid json");
            let kps = v["timing"]["kernels_per_sec"]
                .as_f64()
                .expect("kernels_per_sec is numeric");
            assert!(kps.is_finite(), "line carries non-finite rate: {line}");
        }
        let lower = body.to_lowercase();
        assert!(
            !lower.contains("inf") && !lower.contains("nan"),
            "JSONL must never contain inf/NaN: {body}"
        );
    }

    #[test]
    fn sink_writes_header_and_stamped_records() {
        let path = std::env::temp_dir().join("pka_obs_test_snapshot_sink.jsonl");
        let mut sink = SnapshotSink::new(100);
        sink.attach(&path).expect("open sink");
        sink.emit(&sample(), json!({ "checkpoint_write_ns": 1234u64 }), 2_000_000);
        let mut second = sample();
        second.records = 240_000;
        sink.emit(&second, Value::Null, 4_000_000);
        sink.close().expect("close");
        let body = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        let lines: Vec<Value> = body
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid json"))
            .collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0]["schema"].as_str(), Some(SNAPSHOT_SCHEMA));
        assert_eq!(lines[1]["type"].as_str(), Some("snapshot"));
        assert_eq!(lines[1]["seq"].as_u64(), Some(0));
        assert_eq!(lines[1]["timing"]["checkpoint_write_ns"].as_u64(), Some(1234));
        assert_eq!(lines[2]["seq"].as_u64(), Some(1));
        // Second window: 120k records over 2ms -> 60M rec/s.
        let kps = lines[2]["timing"]["kernels_per_sec"].as_f64().unwrap();
        assert!((kps - 6e7).abs() < 1.0, "kps = {kps}");
        // Payload fields round-trip from the written line.
        assert_eq!(
            SnapshotRecord::from_value(&lines[2]).expect("parse"),
            second
        );
    }
}
