//! `pka.trace/v1` → Chrome trace-event JSON (`about:tracing` / Perfetto).
//!
//! The converter maps span records to `"X"` (complete) events, event
//! records to `"i"` (instant) events, and counter records to `"C"`
//! (counter) events, with one lane per source thread (counters additionally
//! get one value track per record name).
//! Lane (tid) assignment is deterministic and mirrors the executor's
//! per-worker stage naming: the `main` thread gets tid 0, worker threads
//! named `pka-w<N>` (the threads behind the `executor.worker_busy.w<N>`
//! stages) get tid `N + 1`, and any other labels are assigned tids after
//! those in sorted order. Timestamps convert from integer nanoseconds to
//! the trace-event format's microseconds as exact `ns / 1000` fractions,
//! so the output is byte-stable for a fixed input (pinned by the golden
//! fixture test under `tests/`).

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::TRACE_SCHEMA;

/// Process id stamped on every emitted trace event (one pka process).
const PID: u64 = 1;

/// Convert a `pka.trace/v1` JSONL document into a Chrome trace-event JSON
/// value (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// # Errors
///
/// Returns a message when the header line is missing or declares a
/// different schema, or when a line is not valid JSON. Unknown record
/// types are skipped (forward compatibility), as are span/event records
/// missing required fields.
pub fn chrome_trace(jsonl: &str) -> Result<Value, String> {
    let mut rows: Vec<Value> = Vec::new();
    let mut saw_header = false;
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        if !saw_header {
            let schema = v["schema"].as_str().unwrap_or("");
            if v["type"].as_str() != Some("header") || schema != TRACE_SCHEMA {
                return Err(format!(
                    "line {}: expected `{TRACE_SCHEMA}` header, got `{schema}`",
                    i + 1
                ));
            }
            saw_header = true;
            continue;
        }
        rows.push(v);
    }
    if !saw_header {
        return Err(format!("empty input: no `{TRACE_SCHEMA}` header line"));
    }

    let tids = assign_tids(&rows);
    let mut events: Vec<Value> = Vec::new();
    events.push(json!({
        "ph": "M", "name": "process_name", "pid": PID,
        "args": { "name": "pka" },
    }));
    let mut by_tid: Vec<(&u64, &&str)> = tids.values().zip(tids.keys()).collect();
    by_tid.sort();
    for (tid, label) in by_tid {
        events.push(json!({
            "ph": "M", "name": "thread_name", "pid": PID, "tid": *tid,
            "args": { "name": *label },
        }));
        events.push(json!({
            "ph": "M", "name": "thread_sort_index", "pid": PID, "tid": *tid,
            "args": { "sort_index": *tid },
        }));
    }

    for row in &rows {
        let thread = row["thread"].as_str().unwrap_or("");
        let Some(&tid) = tids.get(thread) else {
            continue;
        };
        let Some(t_ns) = row["t_ns"].as_u64() else {
            continue;
        };
        let ts = t_ns as f64 / 1000.0;
        match row["type"].as_str() {
            Some("span") => {
                let (Some(name), Some(dur_ns)) = (row["name"].as_str(), row["dur_ns"].as_u64())
                else {
                    continue;
                };
                events.push(json!({
                    "ph": "X", "name": name, "cat": "span",
                    "pid": PID, "tid": tid,
                    "ts": ts, "dur": dur_ns as f64 / 1000.0,
                    "args": { "depth": row["depth"].as_u64().unwrap_or(0) },
                }));
            }
            Some("event") => {
                let Some(name) = row["name"].as_str() else {
                    continue;
                };
                events.push(json!({
                    "ph": "i", "name": name, "cat": "event",
                    "pid": PID, "tid": tid,
                    "ts": ts, "s": "t",
                    "args": row["fields"].clone(),
                }));
            }
            Some("counter") => {
                let (Some(name), Some(values)) =
                    (row["name"].as_str(), row["values"].as_object())
                else {
                    continue;
                };
                // Chrome renders one counter track per event name, with one
                // series per args key — so `snapshot.shard0.records`,
                // `snapshot.shard1.records`, ... each get their own lane.
                events.push(json!({
                    "ph": "C", "name": name, "cat": "counter",
                    "pid": PID, "tid": tid,
                    "ts": ts,
                    "args": Value::Object(values.clone()),
                }));
            }
            _ => {} // unknown record types: skip, do not fail
        }
    }

    Ok(json!({ "displayTimeUnit": "ms", "traceEvents": events }))
}

/// Deterministic thread-label → tid mapping: `main` → 0, `pka-w<N>` →
/// `N + 1`, everything else packed after the largest structured tid in
/// sorted label order.
fn assign_tids<'a>(rows: &'a [Value]) -> BTreeMap<&'a str, u64> {
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut others: Vec<&str> = Vec::new();
    for row in rows {
        let Some(label) = row["thread"].as_str() else {
            continue;
        };
        if tids.contains_key(label) || others.contains(&label) {
            continue;
        }
        if label == "main" {
            tids.insert(label, 0);
        } else if let Some(n) = label.strip_prefix("pka-w").and_then(|s| s.parse::<u64>().ok()) {
            tids.insert(label, n + 1);
        } else {
            others.push(label);
        }
    }
    let mut next = tids.values().max().map_or(0, |&m| m + 1);
    others.sort_unstable();
    for label in others {
        tids.insert(label, next);
        next += 1;
    }
    tids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> String {
        [
            r#"{"type":"header","schema":"pka.trace/v1"}"#,
            r#"{"type":"span","name":"pks.select","t_ns":1000,"dur_ns":500000,"depth":0,"thread":"main"}"#,
            r#"{"type":"span","name":"kmeans.fit","t_ns":2500,"dur_ns":120000,"depth":1,"thread":"pka-w0"}"#,
            r#"{"type":"event","name":"pkp.stop","t_ns":400000,"thread":"pka-w1","fields":{"cycle":96500}}"#,
            r#"{"type":"span","name":"legacy","t_ns":9000,"dur_ns":100,"depth":0,"thread":"ThreadId(7)"}"#,
        ]
        .join("\n")
    }

    #[test]
    fn converts_spans_and_events_with_stable_lanes() {
        let out = chrome_trace(&fixture()).expect("convert");
        assert_eq!(out["displayTimeUnit"].as_str(), Some("ms"));
        let events = out["traceEvents"].as_array().expect("array");
        // 4 labels -> process_name + 4 * (thread_name + sort_index) = 9
        // metadata events, then 4 trace events.
        assert_eq!(events.len(), 13);
        let x: Vec<&Value> = events.iter().filter(|e| e["ph"] == json!("X")).collect();
        assert_eq!(x.len(), 3);
        assert_eq!(x[0]["name"].as_str(), Some("pks.select"));
        assert_eq!(x[0]["tid"].as_u64(), Some(0)); // main
        assert_eq!(x[0]["ts"].as_f64(), Some(1.0));
        assert_eq!(x[0]["dur"].as_f64(), Some(500.0));
        assert_eq!(x[1]["tid"].as_u64(), Some(1)); // pka-w0
        assert_eq!(x[2]["tid"].as_u64(), Some(3)); // unnamed, after pka-w1
        let i: Vec<&Value> = events.iter().filter(|e| e["ph"] == json!("i")).collect();
        assert_eq!(i.len(), 1);
        assert_eq!(i[0]["tid"].as_u64(), Some(2)); // pka-w1
        assert_eq!(i[0]["args"]["cycle"].as_u64(), Some(96500));
        assert_eq!(i[0]["s"].as_str(), Some("t"));
    }

    #[test]
    fn converts_counter_records_to_counter_events() {
        let body = [
            r#"{"type":"header","schema":"pka.trace/v1"}"#,
            r#"{"type":"counter","name":"snapshot.kernels_per_sec","t_ns":2000,"thread":"main","values":{"kernels_per_sec":1250000.0}}"#,
            r#"{"type":"counter","name":"snapshot.shard0.records","t_ns":2000,"thread":"main","values":{"records":512}}"#,
            r#"{"type":"counter","name":"snapshot.shard1.records","t_ns":2000,"thread":"main","values":{"records":488}}"#,
            r#"{"type":"counter","name":"broken","t_ns":3000,"thread":"main"}"#,
        ]
        .join("\n");
        let out = chrome_trace(&body).expect("convert");
        let c: Vec<&Value> = out["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == json!("C"))
            .collect();
        // The record missing `values` is skipped, not exported.
        assert_eq!(c.len(), 3);
        assert_eq!(c[0]["name"].as_str(), Some("snapshot.kernels_per_sec"));
        assert_eq!(c[0]["args"]["kernels_per_sec"].as_f64(), Some(1_250_000.0));
        assert_eq!(c[0]["ts"].as_f64(), Some(2.0));
        // One counter lane per shard: distinct names, one series each.
        assert_eq!(c[1]["name"].as_str(), Some("snapshot.shard0.records"));
        assert_eq!(c[1]["args"]["records"].as_u64(), Some(512));
        assert_eq!(c[2]["name"].as_str(), Some("snapshot.shard1.records"));
        assert_eq!(c[2]["args"]["records"].as_u64(), Some(488));
    }

    #[test]
    fn rejects_missing_or_foreign_header() {
        assert!(chrome_trace("").is_err());
        assert!(chrome_trace(r#"{"type":"span","name":"x"}"#).is_err());
        assert!(chrome_trace(r#"{"type":"header","schema":"other/v9"}"#).is_err());
    }

    #[test]
    fn skips_unknown_record_types() {
        let body = format!(
            "{}\n{}",
            r#"{"type":"header","schema":"pka.trace/v1"}"#,
            r#"{"type":"future-record","name":"x","thread":"main","t_ns":1}"#
        );
        let out = chrome_trace(&body).expect("convert");
        let events = out["traceEvents"].as_array().unwrap();
        // Only metadata for the one referenced thread label.
        assert!(events.iter().all(|e| e["ph"] == json!("M")));
    }

    #[test]
    fn conversion_is_deterministic() {
        let a = serde_json::to_string_pretty(&chrome_trace(&fixture()).unwrap()).unwrap();
        let b = serde_json::to_string_pretty(&chrome_trace(&fixture()).unwrap()).unwrap();
        assert_eq!(a, b);
    }
}
