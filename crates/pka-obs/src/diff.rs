//! Run-manifest and bench-JSON diffing: the engine behind `pka obs diff`.
//!
//! Compares two `pka.run_manifest/v1` documents section by section —
//! counters, gauges, checksums, histogram totals (all deterministic for a
//! fixed input) and stage timings / wall time (machine-dependent) — and
//! flags entries whose drift exceeds a per-section threshold. CI uses the
//! deterministic sections with zero tolerance as a regression gate against
//! a committed baseline, and the timing sections with a generous threshold
//! on same-machine before/after pairs.

use std::collections::BTreeSet;

use serde_json::Value;

use crate::MANIFEST_SCHEMA;

/// Per-section drift tolerances, in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffThresholds {
    /// Counters and histogram totals: allowed absolute drift (default 0:
    /// any change flags).
    pub counter_pct: f64,
    /// Gauges: allowed absolute drift (default 0).
    pub gauge_pct: f64,
    /// Stage timings and wall time: allowed slowdown (default 25; speedups
    /// never flag).
    pub stage_pct: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        Self {
            counter_pct: 0.0,
            gauge_pct: 0.0,
            stage_pct: 25.0,
        }
    }
}

/// One compared entry (a counter, gauge, checksum, histogram, stage, or
/// bench median).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Section: `counter` / `gauge` / `checksum` / `histogram` / `stage` /
    /// `wall` / `bench`.
    pub kind: &'static str,
    /// Metric name.
    pub name: String,
    /// Baseline value rendered as text (`-` when absent).
    pub base: String,
    /// Current value rendered as text (`-` when absent).
    pub current: String,
    /// Relative drift in percent, when both sides are numeric and the
    /// baseline is nonzero.
    pub delta_pct: Option<f64>,
    /// True when the drift exceeds the section threshold.
    pub regression: bool,
}

impl DiffEntry {
    fn changed(&self) -> bool {
        self.base != self.current
    }

    fn render(&self) -> String {
        let delta = match self.delta_pct {
            Some(d) => format!(" ({d:+.1}%)"),
            None => String::new(),
        };
        let mark = if self.regression { "  REGRESSION" } else { "" };
        format!(
            "{} {}: {} -> {}{delta}{mark}",
            self.kind, self.name, self.base, self.current
        )
    }
}

/// The full comparison result.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every compared entry, in section order then name order.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// Number of entries past their threshold.
    pub fn regressions(&self) -> usize {
        self.entries.iter().filter(|e| e.regression).count()
    }

    /// Human-readable report: changed entries plus a summary line.
    pub fn lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .filter(|e| e.changed() || e.regression)
            .map(DiffEntry::render)
            .collect();
        let changed = self.entries.iter().filter(|e| e.changed()).count();
        lines.push(format!(
            "{} entries compared, {} changed, {} regression(s)",
            self.entries.len(),
            changed,
            self.regressions()
        ));
        lines
    }
}

/// Compare two run manifests. With `counters_only`, the machine-dependent
/// sections (stages, wall time) are skipped so the diff is exact across
/// hosts.
///
/// # Errors
///
/// Returns a message when either document does not declare
/// `pka.run_manifest/v1`.
pub fn diff_manifests(
    base: &Value,
    current: &Value,
    thresholds: &DiffThresholds,
    counters_only: bool,
) -> Result<DiffReport, String> {
    for (label, doc) in [("baseline", base), ("current", current)] {
        let schema = doc["schema"].as_str().unwrap_or("");
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "{label}: expected schema `{MANIFEST_SCHEMA}`, got `{schema}`"
            ));
        }
    }
    let mut report = DiffReport::default();
    diff_numeric_section(
        &mut report,
        "counter",
        &base["counters"],
        &current["counters"],
        |v| v.as_f64(),
        thresholds.counter_pct,
        true,
    );
    diff_numeric_section(
        &mut report,
        "gauge",
        &base["gauges"],
        &current["gauges"],
        |v| v.as_f64(),
        thresholds.gauge_pct,
        true,
    );
    diff_numeric_section(
        &mut report,
        "histogram",
        &base["histograms"],
        &current["histograms"],
        histogram_total,
        thresholds.counter_pct,
        true,
    );
    diff_checksums(&mut report, &base["checksums"], &current["checksums"]);
    if !counters_only {
        diff_numeric_section(
            &mut report,
            "stage",
            &base["stages"],
            &current["stages"],
            |v| v["total_ns"].as_f64(),
            thresholds.stage_pct,
            false,
        );
        push_numeric_entry(
            &mut report,
            "wall",
            "wall_ns",
            base["wall_ns"].as_f64(),
            current["wall_ns"].as_f64(),
            thresholds.stage_pct,
            false,
        );
    }
    Ok(report)
}

/// Compare two `BENCH_pka.json` documents (arrays of
/// `{name, median_ns, ...}` rows) with a slowdown-only tolerance.
///
/// # Errors
///
/// Returns a message when either document is not a bench array.
pub fn diff_bench(base: &Value, current: &Value, tol_pct: f64) -> Result<DiffReport, String> {
    let rows = |label: &str, doc: &Value| -> Result<Vec<(String, f64)>, String> {
        doc.as_array()
            .ok_or_else(|| format!("{label}: expected a bench JSON array"))?
            .iter()
            .map(|row| {
                let name = row["name"]
                    .as_str()
                    .ok_or_else(|| format!("{label}: bench row missing `name`"))?;
                let median = row["median_ns"]
                    .as_f64()
                    .ok_or_else(|| format!("{label}: bench row missing `median_ns`"))?;
                Ok((name.to_string(), median))
            })
            .collect()
    };
    let base_rows = rows("baseline", base)?;
    let cur_rows = rows("current", current)?;
    let mut report = DiffReport::default();
    let names: BTreeSet<&String> = base_rows.iter().chain(&cur_rows).map(|(n, _)| n).collect();
    for name in names {
        let b = base_rows.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
        let c = cur_rows.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
        push_numeric_entry(&mut report, "bench", name, b, c, tol_pct, false);
    }
    Ok(report)
}

fn histogram_total(v: &Value) -> Option<f64> {
    let counts = v["counts"].as_array()?;
    counts.iter().map(Value::as_f64).sum()
}

fn diff_numeric_section(
    report: &mut DiffReport,
    kind: &'static str,
    base: &Value,
    current: &Value,
    extract: impl Fn(&Value) -> Option<f64>,
    tol_pct: f64,
    two_sided: bool,
) {
    let names: BTreeSet<&String> = [base, current]
        .iter()
        .filter_map(|v| v.as_object())
        .flat_map(|m| m.keys())
        .collect();
    for name in names {
        let b = base.get(name).and_then(&extract);
        let c = current.get(name).and_then(&extract);
        push_numeric_entry(report, kind, name, b, c, tol_pct, two_sided);
    }
}

fn push_numeric_entry(
    report: &mut DiffReport,
    kind: &'static str,
    name: &str,
    base: Option<f64>,
    current: Option<f64>,
    tol_pct: f64,
    two_sided: bool,
) {
    let render = |v: Option<f64>| match v {
        // Counters/gauges/medians are integral in practice; keep them terse.
        Some(v) if v.fract() == 0.0 && v.abs() < 9e15 => format!("{}", v as i64),
        Some(v) => format!("{v}"),
        None => "-".to_string(),
    };
    let (delta_pct, regression) = match (base, current) {
        (Some(b), Some(c)) if b != 0.0 => {
            let delta = (c - b) / b.abs() * 100.0;
            let past = if two_sided {
                delta.abs() > tol_pct
            } else {
                delta > tol_pct
            };
            (Some(delta), past)
        }
        (Some(b), Some(c)) => (None, c != b), // new activity from a zero baseline
        (Some(_), None) => (None, true),      // metric disappeared
        (None, Some(_)) => (None, false),     // new metric: informational
        (None, None) => (None, false),
    };
    report.entries.push(DiffEntry {
        kind,
        name: name.to_string(),
        base: render(base),
        current: render(current),
        delta_pct,
        regression,
    });
}

fn diff_checksums(report: &mut DiffReport, base: &Value, current: &Value) {
    let names: BTreeSet<&String> = [base, current]
        .iter()
        .filter_map(|v| v.as_object())
        .flat_map(|m| m.keys())
        .collect();
    for name in names {
        let b = base.get(name);
        let c = current.get(name);
        let render = |v: Option<&Value>| v.map_or("-".to_string(), Value::to_string);
        report.entries.push(DiffEntry {
            kind: "checksum",
            name: name.clone(),
            base: render(b),
            current: render(c),
            delta_pct: None,
            // A checksum is a bitwise-determinism witness: any change or
            // disappearance is a regression; a new checksum is informational.
            regression: b.is_some() && b != c,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn manifest(stage_ns: u64, counter: u64, checksum: u64) -> Value {
        json!({
            "schema": MANIFEST_SCHEMA,
            "wall_ns": stage_ns * 2,
            "counters": { "pks.records": counter, "pkp.stops": 12u64 },
            "gauges": { "pks.selected_k": 9i64 },
            "histograms": { "pkp.stop_cycle": { "edges": [10u64], "counts": [3u64, 1u64] } },
            "stages": { "pks.sweep": { "calls": 1u64, "total_ns": stage_ns } },
            "checksums": { "selection": checksum },
        })
    }

    #[test]
    fn self_diff_is_clean() {
        let m = manifest(1_000_000, 500, 42);
        let report = diff_manifests(&m, &m, &DiffThresholds::default(), false).unwrap();
        assert_eq!(report.regressions(), 0);
        assert!(report.entries.len() >= 6);
        assert!(report.lines().last().unwrap().contains("0 regression(s)"));
    }

    #[test]
    fn stage_slowdown_past_threshold_flags() {
        let base = manifest(1_000_000, 500, 42);
        let slow = manifest(1_300_000, 500, 42); // +30% > 25%
        let report = diff_manifests(&base, &slow, &DiffThresholds::default(), false).unwrap();
        let stage = report
            .entries
            .iter()
            .find(|e| e.kind == "stage")
            .expect("stage entry");
        assert!(stage.regression, "{stage:?}");
        assert!((stage.delta_pct.unwrap() - 30.0).abs() < 1e-9);
        // Speedups never flag.
        let fast = manifest(500_000, 500, 42);
        let report = diff_manifests(&base, &fast, &DiffThresholds::default(), false).unwrap();
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn counters_only_skips_timing_sections() {
        let base = manifest(1_000_000, 500, 42);
        let slow = manifest(9_000_000, 500, 42);
        let report = diff_manifests(&base, &slow, &DiffThresholds::default(), true).unwrap();
        assert_eq!(report.regressions(), 0);
        assert!(report.entries.iter().all(|e| e.kind != "stage" && e.kind != "wall"));
    }

    #[test]
    fn counter_drift_and_checksum_mismatch_flag() {
        let base = manifest(1_000_000, 500, 42);
        let drifted = manifest(1_000_000, 501, 43);
        let report = diff_manifests(&base, &drifted, &DiffThresholds::default(), true).unwrap();
        assert_eq!(report.regressions(), 2);
        let kinds: Vec<&str> = report
            .entries
            .iter()
            .filter(|e| e.regression)
            .map(|e| e.kind)
            .collect();
        assert_eq!(kinds, vec!["counter", "checksum"]);
    }

    #[test]
    fn missing_counter_flags_but_new_counter_does_not() {
        let base = manifest(1_000_000, 500, 42);
        let mut cur = manifest(1_000_000, 500, 42);
        let Value::Object(body) = &mut cur else { unreachable!() };
        let Some(Value::Object(counters)) = body.get_mut("counters") else { unreachable!() };
        counters.remove("pkp.stops");
        counters.insert("stream.records".to_string(), json!(7u64));
        let report = diff_manifests(&base, &cur, &DiffThresholds::default(), true).unwrap();
        let removed = report.entries.iter().find(|e| e.name == "pkp.stops").unwrap();
        assert!(removed.regression);
        let added = report.entries.iter().find(|e| e.name == "stream.records").unwrap();
        assert!(!added.regression);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let m = manifest(1, 1, 1);
        let bad = json!({ "schema": "other/v1" });
        assert!(diff_manifests(&m, &bad, &DiffThresholds::default(), false).is_err());
        assert!(diff_manifests(&bad, &m, &DiffThresholds::default(), false).is_err());
    }

    #[test]
    fn bench_diff_flags_slow_medians_only() {
        let row = |name: &str, median_ns: u64| json!({ "name": name, "median_ns": median_ns });
        let base = Value::Array(vec![row("kmeans_fit", 1000), row("pkp_engine", 2000)]);
        // kmeans_fit +40%, pkp_engine -25%.
        let cur = Value::Array(vec![row("kmeans_fit", 1400), row("pkp_engine", 1500)]);
        let report = diff_bench(&base, &cur, 25.0).unwrap();
        assert_eq!(report.regressions(), 1);
        let slow = report.entries.iter().find(|e| e.regression).unwrap();
        assert_eq!(slow.name, "kmeans_fit");
        assert!(diff_bench(&base, &json!({}), 25.0).is_err());
    }
}
