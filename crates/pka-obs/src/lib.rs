//! Lightweight observability for the PKA pipeline.
//!
//! Vendored, zero-external-dependency instrumentation shared by every layer
//! of the workspace: spans with monotonic timing aggregated per stage,
//! atomic counters/gauges, fixed-bucket histograms, an optional JSONL trace
//! sink, and an end-of-run `run_manifest.json` snapshot.
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled means free.** Every instrumentation site is gated on a
//!    single relaxed [`AtomicBool`] load ([`enabled`]). With the sink off,
//!    hot paths (bounded K-Means assignment, the PKP engine loop) pay one
//!    predictable branch and nothing else, so `BENCH_pka.json` numbers are
//!    unperturbed.
//! 2. **Results stay bitwise deterministic.** Observability only *reads*
//!    pipeline state; counters, spans, and trace lines never feed back into
//!    any computation. Trace and snapshot JSONL are deterministic up to
//!    wall-clock fields: the executor flushes worker-emitted lines in item
//!    order via [`capture_trace`]/[`emit_captured`], and snapshot records
//!    quarantine volatile data in a `"timing"` sub-object, so canonicalized
//!    output is byte-identical across worker counts (the manifest is
//!    deterministic outright, because all of its maps are sorted
//!    `BTreeMap`s).
//! 3. **Metric handles are `&'static` and survive [`reset`].** Names are
//!    interned once (`Box::leak`) and never removed, so call sites may cache
//!    handles in `OnceLock` statics without invalidation hazards.
//!
//! The global registry starts disabled; binaries opt in via
//! `--trace-out` / `--metrics-out` / `-v`, which call [`enable`],
//! [`trace_to`], and [`write_manifest`].

#![forbid(unsafe_code)]

mod attribution;
mod diff;
mod export;
mod expose;
mod snapshot_sink;
mod trend;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde_json::{json, Map, Value};

pub use attribution::{
    diff_attributions, explain_attribution, ATTRIBUTION_SCHEMA, DOMINANCE_THRESHOLD_PCT,
};
pub use diff::{diff_bench, diff_manifests, DiffEntry, DiffReport, DiffThresholds};
pub use export::chrome_trace;
pub use expose::{global_prometheus, parse_exposition, prometheus_text, EXPOSITION_CONTENT_TYPE};
pub use snapshot_sink::{SnapshotRecord, SNAPSHOT_SCHEMA};
pub use trend::{trend_load, trend_push, trend_report, TrendThresholds};

use snapshot_sink::SnapshotSink;

/// Schema identifier stamped into every run manifest.
pub const MANIFEST_SCHEMA: &str = "pka.run_manifest/v1";

/// Schema identifier stamped into every JSONL trace line.
pub const TRACE_SCHEMA: &str = "pka.trace/v1";

/// Percentile routine injected by the binary (see [`set_percentile_fn`]).
static PERCENTILE_FN: OnceLock<fn(&[f64], f64) -> f64> = OnceLock::new();

/// Register the percentile routine used to annotate manifest histogram
/// sections with `p50`/`p95`/`p99`.
///
/// `pka-obs` sits below `pka-stats` in the crate DAG, so it cannot call
/// `pka_stats::summary::percentile` directly; binaries inject it once at
/// startup. Until a routine is registered (and for empty histograms),
/// manifests simply omit the percentile keys — existing `edges`/`counts`
/// bytes are unchanged either way, so `obs diff` baselines do not churn.
/// The first registration wins; later calls are ignored.
pub fn set_percentile_fn(f: fn(&[f64], f64) -> f64) {
    let _ = PERCENTILE_FN.set(f);
}

/// Approximate percentile `p` of a fixed-bucket histogram: rank the sample
/// index `p/100 * (total - 1)` into the cumulative counts, map bucket `i`
/// to its inclusive upper edge (the overflow bucket maps to the last edge),
/// and linearly interpolate fractional ranks via the injected routine.
fn histogram_percentile(
    edges: &[u64],
    counts: &[u64],
    p: f64,
    percentile: fn(&[f64], f64) -> f64,
) -> f64 {
    let total: u64 = counts.iter().sum();
    debug_assert!(total > 0, "caller guards empty histograms");
    let rank = p / 100.0 * (total.saturating_sub(1)) as f64;
    let value_at = |target: u64| -> f64 {
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative > target {
                return edges
                    .get(i)
                    .or_else(|| edges.last())
                    .copied()
                    .unwrap_or(0) as f64;
            }
        }
        edges.last().copied().unwrap_or(0) as f64
    };
    let low = value_at(rank.floor() as u64);
    let high = value_at(rank.ceil() as u64);
    percentile(&[low, high], (rank - rank.floor()) * 100.0)
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's interned name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` occurrences.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one occurrence.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value (e.g. the selected K).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicI64::new(0),
        }
    }

    /// The gauge's interned name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Last recorded value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram: `edges` are inclusive upper bounds, plus one
/// implicit overflow bucket, so `counts.len() == edges.len() + 1`.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    edges: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    fn new(name: &'static str, edges: &[u64]) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Self {
            name,
            edges: edges.to_vec(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// The histogram's interned name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Inclusive upper bounds of the finite buckets.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Record one observation of `v`. Values above the last edge land in
    /// the overflow bucket.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self
            .edges
            .iter()
            .position(|&edge| v <= edge)
            .unwrap_or(self.edges.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Per-bucket counts (finite buckets in edge order, then overflow).
    pub fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all observed values (wrapping at `u64::MAX`), for Prometheus
    /// `_sum` exposition. Updated by a separate relaxed add, so a scrape
    /// racing `record` may see `sum` lag the buckets by in-flight
    /// observations; `_count` is derived from one read of the buckets and
    /// never drifts.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Aggregated wall time for one named pipeline stage: total nanoseconds and
/// the number of recorded intervals, accumulated across threads.
#[derive(Debug)]
pub struct Stage {
    name: &'static str,
    total_ns: AtomicU64,
    calls: AtomicU64,
}

impl Stage {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            total_ns: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        }
    }

    /// The stage's interned name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one interval of `ns` nanoseconds. Used directly (instead of a
    /// [`Span`] guard) at per-item sites like the simulator kernel loop,
    /// where emitting a trace line per interval would be noise.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Number of recorded intervals.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.total_ns.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The metric registry. One process-wide instance lives behind the
/// free functions ([`counter`], [`span`], ...); tests may build private
/// instances to avoid cross-test interference.
pub struct Registry {
    enabled: AtomicBool,
    started: Mutex<Instant>,
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    stages: Mutex<BTreeMap<&'static str, &'static Stage>>,
    trace: Mutex<Option<BufWriter<File>>>,
    snapshots: Mutex<Option<SnapshotSink>>,
}

impl Registry {
    /// A fresh, disabled registry.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            started: Mutex::new(Instant::now()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            stages: Mutex::new(BTreeMap::new()),
            trace: Mutex::new(None),
            snapshots: Mutex::new(None),
        }
    }

    /// The single relaxed load that gates every instrumentation site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn collection on and restart the wall clock.
    pub fn enable(&self) {
        *self.started.lock().unwrap() = Instant::now();
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn collection off (interned metrics and their values remain).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Nanoseconds since [`enable`] (or registry creation).
    pub fn wall_ns(&self) -> u64 {
        u64::try_from(self.started.lock().unwrap().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Intern (or fetch) the counter named `name`. The returned handle is
    /// `&'static` and may be cached by call sites.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Counter::new(name))))
    }

    /// Intern (or fetch) the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Gauge::new(name))))
    }

    /// Intern (or fetch) the histogram named `name`. `edges` are used on
    /// first interning; later calls reuse the existing bucket layout.
    pub fn histogram(&self, name: &'static str, edges: &[u64]) -> &'static Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new(name, edges))))
    }

    /// Intern (or fetch) the stage named `name`.
    pub fn stage(&self, name: &'static str) -> &'static Stage {
        let mut map = self.stages.lock().unwrap();
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Stage::new(name))))
    }

    /// Zero every metric value and restart the wall clock. Interned entries
    /// are never removed, so handles cached by call sites stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
        for s in self.stages.lock().unwrap().values() {
            s.reset();
        }
        *self.started.lock().unwrap() = Instant::now();
    }

    /// Route trace events to a JSONL file at `path` (truncating it). The
    /// first line is a header record identifying the schema.
    pub fn trace_to(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        let header = json!({ "type": "header", "schema": TRACE_SCHEMA });
        writeln!(w, "{header}")?;
        w.flush()?;
        *self.trace.lock().unwrap() = Some(w);
        Ok(())
    }

    /// True when a JSONL sink is attached.
    pub fn tracing(&self) -> bool {
        self.trace.lock().unwrap().is_some()
    }

    /// Flush and detach the JSONL sink, if any.
    pub fn close_trace(&self) -> io::Result<()> {
        if let Some(mut w) = self.trace.lock().unwrap().take() {
            w.flush()?;
        }
        Ok(())
    }

    fn emit(&self, line: Value) {
        // When a capture frame is active on this thread (see
        // [`capture_trace`]), the line is diverted there so the executor can
        // re-emit worker output in deterministic item order.
        let line = match TRACE_BUFFER.with(|b| {
            let mut stack = b.borrow_mut();
            match stack.last_mut() {
                Some(frame) => {
                    frame.push(line);
                    None
                }
                None => Some(line),
            }
        }) {
            Some(line) => line,
            None => return,
        };
        let mut guard = self.trace.lock().unwrap();
        if let Some(w) = guard.as_mut() {
            // A failed trace write must never abort the pipeline; drop the
            // sink instead so the run completes untraced.
            if writeln!(w, "{line}").and_then(|_| w.flush()).is_err() {
                *guard = None;
            }
        }
    }

    /// Emit a free-form event record to the trace sink (no-op when disabled
    /// or untraced). `fields` should be an object.
    pub fn trace_event(&self, name: &str, fields: Value) {
        if !self.enabled() || !self.tracing() {
            return;
        }
        let line = json!({
            "type": "event",
            "name": name,
            "t_ns": self.wall_ns(),
            "thread": current_thread_label(),
            "fields": fields,
        });
        self.emit(line);
    }

    /// Emit a counter-track record to the trace sink (no-op when disabled
    /// or untraced). `values` should be an object of numeric series; the
    /// Chrome exporter maps each record to a `"C"` event, so every distinct
    /// `name` becomes its own counter lane in Perfetto.
    pub fn trace_counter(&self, name: &str, values: Value) {
        if !self.enabled() || !self.tracing() {
            return;
        }
        let line = json!({
            "type": "counter",
            "name": name,
            "t_ns": self.wall_ns(),
            "thread": current_thread_label(),
            "values": values,
        });
        self.emit(line);
    }

    /// Route live snapshot records (`pka.snapshot/v1`) to a JSONL file at
    /// `path` (truncating it), with a cadence hint of one record per
    /// `every` stream records. The first line is a schema header.
    pub fn snapshot_to(&self, path: &Path, every: u64) -> io::Result<()> {
        let mut guard = self.snapshots.lock().unwrap();
        let sink = guard.get_or_insert_with(|| SnapshotSink::new(every));
        sink.attach(path)
    }

    /// Mirror snapshot records as a human-readable stderr ticker (usable
    /// with or without a JSONL sink).
    pub fn progress_ticker(&self, every: u64) {
        let mut guard = self.snapshots.lock().unwrap();
        let sink = guard.get_or_insert_with(|| SnapshotSink::new(every));
        sink.enable_progress();
    }

    /// The snapshot cadence in stream records, or 0 when no snapshot sink
    /// (nor progress ticker) is active. Pipelines read this once per run
    /// and compare `records % every` in the fold, keeping the disabled
    /// path at a single integer compare.
    pub fn snapshot_every(&self) -> u64 {
        self.snapshots.lock().unwrap().as_ref().map_or(0, SnapshotSink::every)
    }

    /// Emit one snapshot record. The sink stamps `type`/`seq` and a
    /// volatile `"timing"` sub-object (elapsed ns, kernels/s, plus
    /// `extra_timing` entries); everything else is the deterministic
    /// payload of `record`. No-op when disabled or without a sink.
    pub fn emit_snapshot(&self, record: &SnapshotRecord, extra_timing: Value) {
        if !self.enabled() {
            return;
        }
        let t_ns = self.wall_ns();
        let kps = {
            let mut guard = self.snapshots.lock().unwrap();
            match guard.as_mut() {
                Some(sink) => sink.emit(record, extra_timing, t_ns),
                None => return,
            }
        };
        // Mirror the snapshot into trace counter tracks so `pka trace
        // export` can render throughput and occupancy lanes next to the
        // span timeline. Counter records carry wall-clock-derived values;
        // parity tooling compares only `"event"` records, so these never
        // enter the determinism contract.
        if self.tracing() {
            self.trace_counter(
                "snapshot.kernels_per_sec",
                json!({ "kernels_per_sec": kps }),
            );
            if record.reservoir_cap > 0 {
                self.trace_counter(
                    "snapshot.reservoir",
                    json!({ "len": record.reservoir_len, "cap": record.reservoir_cap }),
                );
            }
            for (i, &n) in record.shards.iter().enumerate() {
                self.trace_counter(
                    &format!("snapshot.shard{i}.records"),
                    json!({ "records": n }),
                );
            }
        }
    }

    /// Flush and detach the snapshot sink, if any.
    pub fn close_snapshots(&self) -> io::Result<()> {
        if let Some(mut sink) = self.snapshots.lock().unwrap().take() {
            sink.close()?;
        }
        Ok(())
    }

    /// Start a span for `name`. Returns a guard that records the elapsed
    /// time into the stage aggregate (and the trace sink) when dropped.
    /// When the registry is disabled the guard is inert.
    pub fn span(&'static self, name: &'static str) -> Span {
        if !self.enabled() {
            return Span { inner: None };
        }
        let depth = SPAN_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            inner: Some(SpanInner {
                registry: self,
                stage: self.stage(name),
                start: Instant::now(),
                depth,
            }),
        }
    }

    /// Point-in-time copy of every metric, for the manifest and summaries.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            wall_ns: self.wall_ns(),
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, c)| (k.to_string(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, g)| (k.to_string(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, h)| (k.to_string(), (h.edges.clone(), h.counts())))
                .collect(),
            stages: self
                .stages
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, s)| (k.to_string(), StageSnapshot { calls: s.calls(), total_ns: s.total_ns() }))
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static SPAN_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };

    // Stack of active capture frames (one per nested `capture_trace` call)
    // diverting trace lines emitted on this thread.
    static TRACE_BUFFER: RefCell<Vec<Vec<Value>>> = const { RefCell::new(Vec::new()) };
}

/// Trace lines captured on one thread by [`capture_trace`], ready to be
/// re-emitted in a deterministic order via [`emit_captured`].
#[derive(Debug, Default)]
pub struct CapturedTrace(Vec<Value>);

impl CapturedTrace {
    /// True when no lines were captured.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of captured lines.
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

/// Run `f`, diverting every trace line it emits on this thread (spans,
/// events) into a buffer instead of the sink. The executor wraps each
/// work item in a capture and re-emits the buffers in item order, making
/// trace-file line order independent of thread schedule.
///
/// Captures nest: a capture inside a capture forwards its lines to the
/// enclosing frame when re-emitted on the same thread.
pub fn capture_trace<R>(f: impl FnOnce() -> R) -> (R, CapturedTrace) {
    TRACE_BUFFER.with(|b| b.borrow_mut().push(Vec::new()));
    let result = f();
    let lines = TRACE_BUFFER.with(|b| b.borrow_mut().pop().unwrap_or_default());
    (result, CapturedTrace(lines))
}

/// Re-emit lines captured by [`capture_trace`] to the global trace sink
/// (or into this thread's enclosing capture frame, preserving order under
/// nested executors).
pub fn emit_captured(trace: CapturedTrace) {
    if trace.0.is_empty() {
        return;
    }
    let registry = global();
    for line in trace.0 {
        registry.emit(line);
    }
}

fn current_thread_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", t.id()),
    }
}

/// RAII guard produced by [`span`]: on drop it adds the elapsed time to the
/// stage aggregate and, when a sink is attached, appends a JSONL record.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    registry: &'static Registry,
    stage: &'static Stage,
    start: Instant,
    depth: u32,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner.stage.record_ns(dur_ns);
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if inner.registry.tracing() {
            let line = json!({
                "type": "span",
                "name": inner.stage.name(),
                "t_ns": inner.registry.wall_ns().saturating_sub(dur_ns),
                "dur_ns": dur_ns,
                "depth": inner.depth,
                "thread": current_thread_label(),
            });
            inner.registry.emit(line);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot + manifest
// ---------------------------------------------------------------------------

/// Aggregated timing for one stage at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Number of recorded intervals.
    pub calls: u64,
    /// Total accumulated nanoseconds.
    pub total_ns: u64,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Nanoseconds since [`enable`].
    pub wall_ns: u64,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram `(edges, counts)` by name; `counts` has one trailing
    /// overflow bucket.
    pub histograms: BTreeMap<String, (Vec<u64>, Vec<u64>)>,
    /// Stage timings by name.
    pub stages: BTreeMap<String, StageSnapshot>,
}

impl Snapshot {
    /// The snapshot as a JSON value (the manifest body minus config).
    pub fn to_value(&self) -> Value {
        let percentile = PERCENTILE_FN.get().copied();
        let histograms: Map = self
            .histograms
            .iter()
            .map(|(k, (edges, counts))| {
                let mut section = match json!({ "edges": edges.clone(), "counts": counts.clone() })
                {
                    Value::Object(m) => m,
                    _ => unreachable!("histogram section serializes to an object"),
                };
                if let Some(f) = percentile {
                    if counts.iter().any(|&c| c > 0) {
                        for (key, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
                            section.insert(
                                key.to_string(),
                                json!(histogram_percentile(edges, counts, p, f)),
                            );
                        }
                    }
                }
                (k.clone(), Value::Object(section))
            })
            .collect();
        let stages: Map = self
            .stages
            .iter()
            .map(|(k, s)| (k.clone(), json!({ "calls": s.calls, "total_ns": s.total_ns })))
            .collect();
        json!({
            "wall_ns": self.wall_ns,
            "counters": self.counters.clone(),
            "gauges": self.gauges.clone(),
            "histograms": Value::Object(histograms),
            "stages": Value::Object(stages),
        })
    }

    /// Human-readable per-stage and counter summary, for `-v` output.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        let wall_ms = self.wall_ns as f64 / 1e6;
        lines.push(format!("wall time: {wall_ms:.1} ms"));
        for (name, s) in &self.stages {
            let ms = s.total_ns as f64 / 1e6;
            let pct = if self.wall_ns > 0 {
                100.0 * s.total_ns as f64 / self.wall_ns as f64
            } else {
                0.0
            };
            lines.push(format!(
                "stage {name}: {ms:.1} ms ({pct:.1}% of wall, {} calls)",
                s.calls
            ));
        }
        for (name, v) in &self.counters {
            lines.push(format!("counter {name}: {v}"));
        }
        for (name, v) in &self.gauges {
            lines.push(format!("gauge {name}: {v}"));
        }
        lines
    }
}

/// Build the manifest JSON for `snapshot` with caller-supplied `config`,
/// `seeds`, and `checksums` sections.
pub fn manifest_value(snapshot: &Snapshot, config: Value, seeds: Value, checksums: Value) -> Value {
    let mut body = match snapshot.to_value() {
        Value::Object(m) => m,
        _ => unreachable!("snapshot serializes to an object"),
    };
    body.insert("schema".to_string(), Value::String(MANIFEST_SCHEMA.to_string()));
    body.insert("config".to_string(), config);
    body.insert("seeds".to_string(), seeds);
    body.insert("checksums".to_string(), checksums);
    Value::Object(body)
}

/// [`manifest_value`] plus a caller-supplied `report` section for pipeline
/// outputs that belong next to the metrics (projection tables, stream
/// summaries). Pass [`Value::Null`] to omit nothing-to-report runs cleanly.
pub fn manifest_value_with_report(
    snapshot: &Snapshot,
    config: Value,
    seeds: Value,
    checksums: Value,
    report: Value,
) -> Value {
    let mut value = manifest_value(snapshot, config, seeds, checksums);
    if let Value::Object(body) = &mut value {
        body.insert("report".to_string(), report);
    }
    value
}

// ---------------------------------------------------------------------------
// Global registry facade
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry behind the free functions.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// True when collection is on. This is the disabled fast path: one relaxed
/// atomic load.
#[inline]
pub fn enabled() -> bool {
    // `OnceLock::get` avoids the init closure in the common case; an
    // uninitialized registry is equivalent to a disabled one.
    match GLOBAL.get() {
        Some(r) => r.enabled(),
        None => false,
    }
}

/// Turn global collection on and restart the wall clock.
pub fn enable() {
    global().enable();
}

/// Turn global collection off.
pub fn disable() {
    global().disable();
}

/// Zero all global metric values; interned handles stay valid.
pub fn reset() {
    global().reset();
}

/// Intern a dynamically built metric name, returning a `&'static str`
/// accepted by [`counter`]/[`gauge`]/[`histogram`]/[`stage`].
///
/// Names are leaked exactly once and cached, so repeated calls with the
/// same string are a map lookup, and the leaked-memory footprint is bounded
/// by the number of *distinct* names (per-worker metrics are bounded by the
/// worker count). Static call sites should keep passing string literals;
/// this is only for names with runtime components, e.g.
/// `executor.worker_busy.w3`.
pub fn intern(name: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let names = NAMES.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut guard = names.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&interned) = guard.get(name) {
        return interned;
    }
    let interned: &'static str = Box::leak(name.to_string().into_boxed_str());
    guard.insert(name.to_string(), interned);
    interned
}

/// Intern (or fetch) a global counter.
pub fn counter(name: &'static str) -> &'static Counter {
    global().counter(name)
}

/// Intern (or fetch) a global gauge.
pub fn gauge(name: &'static str) -> &'static Gauge {
    global().gauge(name)
}

/// Intern (or fetch) a global histogram.
pub fn histogram(name: &'static str, edges: &[u64]) -> &'static Histogram {
    global().histogram(name, edges)
}

/// Intern (or fetch) a global stage aggregate.
pub fn stage(name: &'static str) -> &'static Stage {
    global().stage(name)
}

/// Start a global span (inert when disabled).
pub fn span(name: &'static str) -> Span {
    global().span(name)
}

/// Attach a global JSONL trace sink.
pub fn trace_to(path: &Path) -> io::Result<()> {
    global().trace_to(path)
}

/// Flush and detach the global trace sink.
pub fn close_trace() -> io::Result<()> {
    global().close_trace()
}

/// Emit a free-form event to the global trace sink.
pub fn trace_event(name: &str, fields: Value) {
    global().trace_event(name, fields)
}

/// Emit a counter-track record to the global trace sink.
pub fn trace_counter(name: &str, values: Value) {
    global().trace_counter(name, values)
}

/// [`trace_event`] for emitters without a JSON dependency: fields are
/// unsigned-integer key/value pairs.
pub fn trace_event_u64(name: &str, fields: &[(&str, u64)]) {
    let registry = global();
    if !registry.enabled() || !registry.tracing() {
        return;
    }
    let mut m = Map::new();
    for &(k, v) in fields {
        m.insert(k.to_string(), Value::from(v));
    }
    registry.trace_event(name, Value::Object(m));
}

/// Attach a global `pka.snapshot/v1` JSONL sink with cadence `every`.
pub fn snapshot_to(path: &Path, every: u64) -> io::Result<()> {
    global().snapshot_to(path, every)
}

/// Enable the global stderr progress ticker with cadence `every`.
pub fn progress_ticker(every: u64) {
    global().progress_ticker(every)
}

/// The global snapshot cadence (0 when snapshots are off).
pub fn snapshot_every() -> u64 {
    match GLOBAL.get() {
        Some(r) => r.snapshot_every(),
        None => 0,
    }
}

/// Emit one record to the global snapshot sink.
pub fn emit_snapshot(record: &SnapshotRecord, extra_timing: Value) {
    global().emit_snapshot(record, extra_timing)
}

/// Flush and detach the global snapshot sink.
pub fn close_snapshots() -> io::Result<()> {
    global().close_snapshots()
}

/// Snapshot every global metric.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Write the global run manifest to `path` with caller-supplied sections.
pub fn write_manifest(path: &Path, config: Value, seeds: Value, checksums: Value) -> io::Result<()> {
    let value = manifest_value(&snapshot(), config, seeds, checksums);
    write_manifest_value(path, &value)
}

/// [`write_manifest`] plus a `report` section (see
/// [`manifest_value_with_report`]).
pub fn write_manifest_with_report(
    path: &Path,
    config: Value,
    seeds: Value,
    checksums: Value,
    report: Value,
) -> io::Result<()> {
    let value = manifest_value_with_report(&snapshot(), config, seeds, checksums, report);
    write_manifest_value(path, &value)
}

fn write_manifest_value(path: &Path, value: &Value) -> io::Result<()> {
    let mut text = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The global registry is process-wide state; tests that touch it hold
    // this lock so `cargo test`'s parallel runner cannot interleave them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::new();
        assert!(!r.enabled());
        // A private registry's metrics still update (gating is the caller's
        // job), but spans are inert when disabled.
        let c = r.counter("test.count");
        c.incr();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn counter_concurrent_increments_sum_exactly() {
        let r = Registry::new();
        let c = r.counter("test.concurrent");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let r = Registry::new();
        let h = r.histogram("test.hist", &[10, 100, 1000]);
        // One observation per interesting boundary.
        for v in [0, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
            h.record(v);
        }
        // <=10: {0, 10}; <=100: {11, 100}; <=1000: {101, 1000};
        // overflow: {1001, MAX}.
        assert_eq!(h.counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.edges(), &[10, 100, 1000]);
    }

    #[test]
    fn histogram_single_edge() {
        let r = Registry::new();
        let h = r.histogram("test.hist1", &[5]);
        h.record(5);
        h.record(6);
        assert_eq!(h.counts(), vec![1, 1]);
    }

    #[test]
    fn interning_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("test.same");
        let b = r.counter("test.same");
        assert!(std::ptr::eq(a, b));
        a.add(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn intern_caches_dynamic_names() {
        let w3 = intern(&format!("test.intern.w{}", 3));
        let again = intern("test.intern.w3");
        assert!(std::ptr::eq(w3, again));
        // The interned name is a valid handle key.
        let r = Registry::new();
        let s = r.stage(w3);
        s.record_ns(42);
        assert_eq!(r.stage(intern("test.intern.w3")).total_ns(), 42);
    }

    #[test]
    fn manifest_with_report_adds_the_section() {
        let r = Registry::new();
        r.counter("test.manifest").add(7);
        let snap = r.snapshot();
        let value = manifest_value_with_report(
            &snap,
            json!({ "cfg": true }),
            Value::Null,
            Value::Null,
            json!({ "records": 5 }),
        );
        assert_eq!(value["schema"].as_str(), Some(MANIFEST_SCHEMA));
        assert_eq!(value["report"]["records"].as_u64(), Some(5));
        assert_eq!(value["counters"]["test.manifest"].as_u64(), Some(7));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("test.reset");
        let g = r.gauge("test.reset_gauge");
        let h = r.histogram("test.reset_hist", &[1]);
        let s = r.stage("test.reset_stage");
        c.add(5);
        g.set(-2);
        h.record(0);
        s.record_ns(100);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.total(), 0);
        assert_eq!(s.calls(), 0);
        assert_eq!(s.total_ns(), 0);
        // Handle still valid and wired to the same interned entry.
        c.incr();
        assert_eq!(r.counter("test.reset").get(), 1);
    }

    #[test]
    fn span_nesting_aggregates_and_tracks_depth() {
        let _guard = lock();
        let r = global();
        r.reset();
        r.enable();
        {
            let _outer = r.span("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = r.span("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        r.disable();
        let snap = r.snapshot();
        let outer = &snap.stages["test.outer"];
        let inner = &snap.stages["test.inner"];
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // The outer span contains the inner one.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(inner.total_ns >= 1_000_000);
    }

    #[test]
    fn disabled_global_span_is_inert() {
        let _guard = lock();
        let r = global();
        r.reset();
        r.disable();
        {
            let _s = r.span("test.disabled_span");
        }
        let snap = r.snapshot();
        assert_eq!(
            snap.stages.get("test.disabled_span").map(|s| s.calls).unwrap_or(0),
            0
        );
    }

    #[test]
    fn trace_sink_writes_schema_valid_jsonl() {
        let _guard = lock();
        let r = global();
        r.reset();
        let path = std::env::temp_dir().join("pka_obs_test_trace.jsonl");
        r.trace_to(&path).expect("open sink");
        r.enable();
        {
            let _s = r.span("test.traced");
        }
        r.trace_event("test.event", json!({ "k": 1 }));
        r.disable();
        r.close_trace().expect("close sink");
        let body = std::fs::read_to_string(&path).expect("read trace");
        let lines: Vec<Value> = body
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid json line"))
            .collect();
        std::fs::remove_file(&path).ok();
        assert!(lines.len() >= 3, "header + span + event");
        assert_eq!(lines[0]["schema"].as_str(), Some(TRACE_SCHEMA));
        assert!(lines
            .iter()
            .any(|l| l["type"].as_str() == Some("span") && l["name"].as_str() == Some("test.traced")));
        assert!(lines
            .iter()
            .any(|l| l["type"].as_str() == Some("event") && l["fields"]["k"].as_u64() == Some(1)));
    }

    #[test]
    fn captured_trace_lines_re_emit_in_caller_order() {
        let _guard = lock();
        let r = global();
        r.reset();
        let path = std::env::temp_dir().join("pka_obs_test_capture.jsonl");
        r.trace_to(&path).expect("open sink");
        r.enable();
        // Simulate the executor: workers capture out of order, the
        // coordinator re-emits in item order.
        let mut captures: Vec<Option<CapturedTrace>> = (0..3).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in [2usize, 0, 1] {
                handles.push((i, scope.spawn(move || {
                    capture_trace(|| {
                        trace_event("test.capture", json!({ "item": i }));
                    })
                    .1
                })));
            }
            for (i, h) in handles {
                captures[i] = Some(h.join().expect("worker"));
            }
        });
        for c in captures {
            emit_captured(c.expect("captured"));
        }
        r.disable();
        r.close_trace().expect("close");
        let body = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        let items: Vec<u64> = body
            .lines()
            .filter_map(|l| serde_json::from_str::<Value>(l).ok())
            .filter(|v| v["name"].as_str() == Some("test.capture"))
            .map(|v| v["fields"]["item"].as_u64().unwrap())
            .collect();
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn nested_captures_forward_to_enclosing_frame() {
        let _guard = lock();
        let r = global();
        r.reset();
        let path = std::env::temp_dir().join("pka_obs_test_capture_nested.jsonl");
        r.trace_to(&path).expect("open sink");
        r.enable();
        let ((), outer) = capture_trace(|| {
            trace_event("test.nested", json!({ "at": "before" }));
            let ((), inner) = capture_trace(|| {
                trace_event("test.nested", json!({ "at": "inner" }));
            });
            emit_captured(inner); // lands in the outer frame, not the sink
            trace_event("test.nested", json!({ "at": "after" }));
        });
        assert_eq!(outer.len(), 3);
        emit_captured(outer);
        r.disable();
        r.close_trace().expect("close");
        let body = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        let ats: Vec<String> = body
            .lines()
            .filter_map(|l| serde_json::from_str::<Value>(l).ok())
            .filter(|v| v["name"].as_str() == Some("test.nested"))
            .map(|v| v["fields"]["at"].as_str().unwrap().to_string())
            .collect();
        assert_eq!(ats, vec!["before", "inner", "after"]);
    }

    #[test]
    fn snapshot_sink_respects_enabled_gate_and_cadence() {
        let r = Registry::new();
        let path = std::env::temp_dir().join("pka_obs_test_registry_snap.jsonl");
        r.snapshot_to(&path, 500).expect("open sink");
        assert_eq!(r.snapshot_every(), 500);
        let rec = SnapshotRecord {
            phase: "tail".to_string(),
            records: 500,
            ..SnapshotRecord::default()
        };
        r.emit_snapshot(&rec, Value::Null); // disabled: dropped
        r.enable();
        r.emit_snapshot(&rec, Value::Null);
        r.close_snapshots().expect("close");
        let body = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        assert_eq!(body.lines().count(), 2, "header + one record: {body}");
        let rec_line: Value = serde_json::from_str(body.lines().nth(1).unwrap()).unwrap();
        assert_eq!(rec_line["type"].as_str(), Some("snapshot"));
        assert_eq!(rec_line["seq"].as_u64(), Some(0));
        assert!(rec_line["timing"]["t_ns"].as_u64().is_some());
    }

    #[test]
    fn manifest_value_has_schema_and_sections() {
        let r = Registry::new();
        r.counter("test.manifest").add(7);
        r.stage("test.stage").record_ns(42);
        let v = manifest_value(
            &r.snapshot(),
            json!({ "cmd": "select" }),
            json!({ "pks": 1 }),
            json!({ "out": 99 }),
        );
        assert_eq!(v["schema"].as_str(), Some(MANIFEST_SCHEMA));
        assert_eq!(v["config"]["cmd"].as_str(), Some("select"));
        assert_eq!(v["seeds"]["pks"].as_u64(), Some(1));
        assert_eq!(v["checksums"]["out"].as_u64(), Some(99));
        assert_eq!(v["counters"]["test.manifest"].as_u64(), Some(7));
        assert_eq!(v["stages"]["test.stage"]["total_ns"].as_u64(), Some(42));
        assert_eq!(v["stages"]["test.stage"]["calls"].as_u64(), Some(1));
    }

    /// Mirrors `pka_stats::summary::percentile` (rank `p/100 * (n-1)`,
    /// linear interpolation) without the upward crate dependency.
    fn linear_percentile(xs: &[f64], p: f64) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let rank = p / 100.0 * (xs.len() - 1) as f64;
        let lo = xs[rank.floor() as usize];
        let hi = xs[rank.ceil() as usize];
        lo + (hi - lo) * (rank - rank.floor())
    }

    #[test]
    fn histogram_percentiles_appear_once_routine_is_registered() {
        set_percentile_fn(linear_percentile);
        let r = Registry::new();
        let h = r.histogram("test.pctl", &[10, 100, 1000]);
        for _ in 0..90 {
            h.record(5); // bucket 0 -> upper edge 10
        }
        for _ in 0..9 {
            h.record(50); // bucket 1 -> upper edge 100
        }
        h.record(5_000); // overflow bucket -> last edge 1000
        let v = r.snapshot().to_value();
        let section = &v["histograms"]["test.pctl"];
        // Pre-existing fields stay byte-identical alongside the new keys.
        assert_eq!(section["edges"][0].as_u64(), Some(10));
        assert_eq!(section["counts"][0].as_u64(), Some(90));
        assert_eq!(section["counts"][3].as_u64(), Some(1));
        // 100 samples: rank(p50) = 49.5 lands inside bucket 0; rank(p95) =
        // 94.05 inside bucket 1; rank(p99) = 98.01 straddles bucket 1 and
        // the overflow bucket, interpolating 100 -> 1000 at 1%.
        assert_eq!(section["p50"].as_f64(), Some(10.0));
        assert_eq!(section["p95"].as_f64(), Some(100.0));
        let p99 = section["p99"].as_f64().expect("p99 present");
        assert!((p99 - 109.0).abs() < 1e-9, "p99 = {p99}");

        // All-zero histograms omit the percentile keys entirely.
        let empty = Registry::new();
        empty.histogram("test.pctl_empty", &[10]);
        let v = empty.snapshot().to_value();
        let section = &v["histograms"]["test.pctl_empty"];
        assert!(section.get("p50").is_none(), "{section}");
        assert!(section["counts"].as_array().is_some());
    }
}
