//! `pka.attribution/v1` rendering and diffing: the engine behind
//! `pka obs explain` and the attribution branch of `pka obs diff`.
//!
//! The artifact itself is produced by `pka-core` (an exact per-group
//! decomposition of the projection error plus representative provenance);
//! this module only consumes the JSON document, so it stays below
//! `pka-core` in the crate DAG. [`explain_attribution`] renders a ranked
//! table (largest absolute error contribution first) and flags any single
//! group past the dominance threshold; [`diff_attributions`] compares two
//! artifacts for CI accuracy gating — representative swaps, group-count
//! changes and error drift beyond an absolute tolerance are regressions.

use serde_json::Value;

use crate::diff::{DiffEntry, DiffReport};

/// Schema identifier of an attribution artifact (matches
/// `pka_core::ATTRIBUTION_SCHEMA`).
pub const ATTRIBUTION_SCHEMA: &str = "pka.attribution/v1";

/// A single group contributing more than this share of the total absolute
/// error is flagged by [`explain_attribution`].
pub const DOMINANCE_THRESHOLD_PCT: f64 = 50.0;

fn check_schema(label: &str, doc: &Value) -> Result<(), String> {
    let schema = doc["schema"].as_str().unwrap_or("");
    if schema == ATTRIBUTION_SCHEMA {
        Ok(())
    } else {
        Err(format!(
            "{label}: expected schema `{ATTRIBUTION_SCHEMA}`, got `{schema}`"
        ))
    }
}

struct Row {
    group: u64,
    representative: u64,
    chrono_rank: u64,
    distance: f64,
    weight: u64,
    skip_ratio: Option<f64>,
    ci_low: f64,
    ci_high: f64,
    pks_term: f64,
    pkp_term: Option<f64>,
    total_term: f64,
}

fn rows(doc: &Value) -> Result<Vec<Row>, String> {
    let groups = doc["groups"]
        .as_array()
        .ok_or_else(|| "attribution document has no `groups` array".to_string())?;
    groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let num = |key: &str| {
                g[key]
                    .as_f64()
                    .ok_or_else(|| format!("group {i}: missing numeric `{key}`"))
            };
            let int = |key: &str| {
                g[key]
                    .as_u64()
                    .ok_or_else(|| format!("group {i}: missing integer `{key}`"))
            };
            Ok(Row {
                group: int("group")?,
                representative: int("representative")?,
                chrono_rank: int("chrono_rank")?,
                distance: num("distance_to_centroid")?,
                weight: int("weight")?,
                skip_ratio: g["skip_ratio"].as_f64(),
                ci_low: num("member_mean_ci_low")?,
                ci_high: num("member_mean_ci_high")?,
                pks_term: num("pks_term_pct")?,
                pkp_term: g["pkp_term_pct"].as_f64(),
                total_term: num("total_term_pct")?,
            })
        })
        .collect()
}

/// Renders an attribution artifact as a ranked table: groups ordered by
/// absolute total error contribution (descending), each with its
/// representative's provenance, the bootstrap CI on the mean member cycles,
/// the PKP skip ratio, and the signed PKS / PKP / total terms. Any single
/// group past [`DOMINANCE_THRESHOLD_PCT`] of the total absolute error gets
/// a trailing `WARNING:` line.
///
/// # Errors
///
/// Returns a message when the document does not declare
/// `pka.attribution/v1` or its groups are malformed.
pub fn explain_attribution(doc: &Value) -> Result<Vec<String>, String> {
    check_schema("attribution", doc)?;
    let workload = doc["workload"].as_str().unwrap_or("?");
    let kind = doc["kind"].as_str().unwrap_or("?");
    let mut rows = rows(doc)?;
    rows.sort_by(|a, b| {
        b.total_term
            .abs()
            .partial_cmp(&a.total_term.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.group.cmp(&b.group))
    });
    let total_abs: f64 = rows.iter().map(|r| r.total_term.abs()).sum();

    let mut lines = Vec::new();
    lines.push(format!("{ATTRIBUTION_SCHEMA} — {workload} ({kind})"));
    let mut totals = format!(
        "reference {} cycles; PKS error {:+.4}% (reported {:.4}%)",
        doc["reference_cycles"].as_u64().unwrap_or(0),
        doc["pks_err_signed_pct"].as_f64().unwrap_or(0.0),
        doc["pks_err_pct"].as_f64().unwrap_or(0.0),
    );
    if let (Some(signed), Some(abs)) = (
        doc["pka_err_signed_pct"].as_f64(),
        doc["pka_err_pct"].as_f64(),
    ) {
        totals.push_str(&format!("; PKA error {signed:+.4}% (reported {abs:.4}%)"));
    }
    if let Some(dram) = doc["dram_util_pct"].as_f64() {
        totals.push_str(&format!("; DRAM {dram:.2}%"));
    }
    lines.push(totals);
    lines.push(format!(
        "{} group(s), ranked by |total contribution|:",
        rows.len()
    ));
    lines.push(format!(
        "{:>4} {:>5} {:>6} {:>6} {:>10} {:>10} {:>6} {:>9} {:>9} {:>9} {:>7}  {}",
        "rank",
        "group",
        "rep",
        "chrono",
        "weight",
        "dist",
        "skip%",
        "pks%",
        "pkp%",
        "total%",
        "share%",
        "ci(mean member cycles)"
    ));
    let mut warnings = Vec::new();
    for (rank, r) in rows.iter().enumerate() {
        let share = if total_abs > 0.0 {
            r.total_term.abs() / total_abs * 100.0
        } else {
            0.0
        };
        let skip = r
            .skip_ratio
            .map_or("-".to_string(), |s| format!("{:.1}", s * 100.0));
        let pkp = r
            .pkp_term
            .map_or("-".to_string(), |t| format!("{t:+.4}"));
        lines.push(format!(
            "{:>4} {:>5} {:>6} {:>6} {:>10} {:>10.4} {:>6} {:>9} {:>9} {:>9} {:>7.1}  [{:.1}, {:.1}]",
            rank + 1,
            r.group,
            r.representative,
            r.chrono_rank,
            r.weight,
            r.distance,
            skip,
            format!("{:+.4}", r.pks_term),
            pkp,
            format!("{:+.4}", r.total_term),
            share,
            r.ci_low,
            r.ci_high,
        ));
        if share > DOMINANCE_THRESHOLD_PCT {
            warnings.push(format!(
                "WARNING: group {} (representative {}) contributes {share:.1}% of the total \
                 error (> {DOMINANCE_THRESHOLD_PCT:.0}%) — raise K or inspect its representative",
                r.group, r.representative
            ));
        }
    }
    lines.extend(warnings);
    Ok(lines)
}

fn push_scalar(
    report: &mut DiffReport,
    name: &str,
    base: Option<f64>,
    current: Option<f64>,
    tol_points: f64,
) {
    let render = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.6}"));
    let (delta, regression) = match (base, current) {
        (Some(b), Some(c)) => (Some(c - b), (c - b).abs() > tol_points),
        (Some(_), None) => (None, true), // reported value disappeared
        (None, Some(_)) => (None, false), // new value: informational
        (None, None) => (None, false),
    };
    report.entries.push(DiffEntry {
        kind: "attribution",
        name: name.to_string(),
        base: render(base),
        current: render(current),
        delta_pct: delta,
        regression,
    });
}

fn push_exact(report: &mut DiffReport, name: &str, base: Option<String>, current: Option<String>) {
    let regression = match (&base, &current) {
        (Some(b), Some(c)) => b != c,
        (Some(_), None) => true,
        _ => false,
    };
    report.entries.push(DiffEntry {
        kind: "attribution",
        name: name.to_string(),
        base: base.unwrap_or_else(|| "-".to_string()),
        current: current.unwrap_or_else(|| "-".to_string()),
        delta_pct: None,
        regression,
    });
}

/// Compare two attribution artifacts for CI accuracy gating.
///
/// Exact comparisons (any change is a regression): workload, kind, group
/// count, and each group's representative — a representative swap means
/// the clustering itself changed. Tolerance comparisons (`error_tol_pct`
/// absolute percent points): `pks_err_pct`, `pka_err_pct` and
/// `dram_util_pct`. Per-group weights are reported informationally (they
/// legitimately grow with stream length) and never flag on their own.
///
/// # Errors
///
/// Returns a message when either document does not declare
/// `pka.attribution/v1`.
pub fn diff_attributions(
    base: &Value,
    current: &Value,
    error_tol_pct: f64,
) -> Result<DiffReport, String> {
    check_schema("baseline", base)?;
    check_schema("current", current)?;
    let mut report = DiffReport::default();
    for key in ["workload", "kind"] {
        push_exact(
            &mut report,
            key,
            base[key].as_str().map(str::to_string),
            current[key].as_str().map(str::to_string),
        );
    }
    let groups = |doc: &Value| doc["groups"].as_array().cloned().unwrap_or_default();
    let (bg, cg) = (groups(base), groups(current));
    push_exact(
        &mut report,
        "selected_k",
        Some(bg.len().to_string()),
        Some(cg.len().to_string()),
    );
    push_scalar(
        &mut report,
        "pks_err_pct",
        base["pks_err_pct"].as_f64(),
        current["pks_err_pct"].as_f64(),
        error_tol_pct,
    );
    push_scalar(
        &mut report,
        "pka_err_pct",
        base["pka_err_pct"].as_f64(),
        current["pka_err_pct"].as_f64(),
        error_tol_pct,
    );
    push_scalar(
        &mut report,
        "dram_util_pct",
        base["dram_util_pct"].as_f64(),
        current["dram_util_pct"].as_f64(),
        error_tol_pct,
    );
    for i in 0..bg.len().max(cg.len()) {
        let rep = |g: Option<&Value>| {
            g.and_then(|g| g["representative"].as_u64())
                .map(|r| r.to_string())
        };
        push_exact(
            &mut report,
            &format!("group{i}.representative"),
            rep(bg.get(i)),
            rep(cg.get(i)),
        );
        // Weights drift legitimately (longer streams); informational only.
        let weight = |g: Option<&Value>| g.and_then(|g| g["weight"].as_u64());
        let render = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
        report.entries.push(DiffEntry {
            kind: "attribution",
            name: format!("group{i}.weight"),
            base: render(weight(bg.get(i))),
            current: render(weight(cg.get(i))),
            delta_pct: None,
            regression: false,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn group(i: u64, rep: u64, weight: u64, pks: f64, pkp: f64) -> Value {
        json!({
            "group": i,
            "representative": rep,
            "chrono_rank": 0u64,
            "distance_to_centroid": 0.25,
            "weight": weight,
            "profiled_count": weight,
            "member_cycles": 1_000u64 * weight,
            "member_mean_ci_low": 990.0,
            "member_mean_ci_high": 1_010.0,
            "rep_cycles_pks": 1_000u64,
            "rep_cycles_pka": 995u64,
            "skip_ratio": 0.4,
            "pks_term_pct": pks,
            "pkp_term_pct": pkp,
            "total_term_pct": pks + pkp,
        })
    }

    fn artifact(groups: Vec<Value>) -> Value {
        json!({
            "schema": ATTRIBUTION_SCHEMA,
            "workload": "synthetic:1000",
            "kind": "simulation",
            "reference_cycles": 1_000_000u64,
            "pks_projected_cycles": 1_010_000u64,
            "pka_projected_cycles": 1_005_000u64,
            "pks_err_signed_pct": 1.0,
            "pks_err_pct": 1.0,
            "pka_err_signed_pct": 0.5,
            "pka_err_pct": 0.5,
            "dram_util_pct": 12.0,
            "groups": groups,
        })
    }

    #[test]
    fn explain_ranks_by_absolute_contribution_and_flags_dominance() {
        let doc = artifact(vec![
            group(0, 3, 100, 0.1, 0.0),
            group(1, 7, 50, -2.0, -0.5),
            group(2, 9, 10, 0.3, 0.1),
        ]);
        let lines = explain_attribution(&doc).expect("explain");
        let rank1 = lines.iter().find(|l| l.trim_start().starts_with("1 ")).unwrap();
        assert!(rank1.contains(" 1 "), "group 1 leads: {rank1}");
        // |−2.5| of |−2.5|+0.1+0.4 = 83% > 50% dominance.
        let warning = lines.last().unwrap();
        assert!(warning.starts_with("WARNING:"), "{warning}");
        assert!(warning.contains("group 1"), "{warning}");
        assert!(warning.contains("representative 7"), "{warning}");
    }

    #[test]
    fn explain_without_dominant_group_has_no_warning() {
        let doc = artifact(vec![
            group(0, 3, 100, 0.5, 0.0),
            group(1, 7, 50, -0.5, 0.0),
        ]);
        let lines = explain_attribution(&doc).expect("explain");
        assert!(lines.iter().all(|l| !l.starts_with("WARNING:")));
    }

    #[test]
    fn explain_rejects_foreign_schema() {
        assert!(explain_attribution(&json!({ "schema": "other/v1" })).is_err());
    }

    #[test]
    fn self_diff_is_clean() {
        let doc = artifact(vec![group(0, 3, 100, 0.5, 0.1)]);
        let report = diff_attributions(&doc, &doc, 0.5).expect("diff");
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn representative_swap_is_a_regression() {
        let base = artifact(vec![group(0, 3, 100, 0.5, 0.1)]);
        let swapped = artifact(vec![group(0, 4, 100, 0.5, 0.1)]);
        let report = diff_attributions(&base, &swapped, 0.5).expect("diff");
        assert_eq!(report.regressions(), 1);
        let e = report.entries.iter().find(|e| e.regression).unwrap();
        assert_eq!(e.name, "group0.representative");
    }

    #[test]
    fn error_drift_past_tolerance_flags_but_weight_growth_does_not() {
        let base = artifact(vec![group(0, 3, 100, 0.5, 0.1)]);
        let mut drifted = artifact(vec![group(0, 3, 900, 0.5, 0.1)]);
        if let Value::Object(m) = &mut drifted {
            m.insert("pks_err_pct".to_string(), json!(2.1)); // +1.1 > 0.5 tol
        }
        let report = diff_attributions(&base, &drifted, 0.5).expect("diff");
        assert_eq!(report.regressions(), 1);
        let e = report.entries.iter().find(|e| e.regression).unwrap();
        assert_eq!(e.name, "pks_err_pct");
        let w = report
            .entries
            .iter()
            .find(|e| e.name == "group0.weight")
            .unwrap();
        assert!(!w.regression && w.base != w.current);
    }

    #[test]
    fn group_count_change_is_a_regression() {
        let base = artifact(vec![group(0, 3, 100, 0.5, 0.1)]);
        let split = artifact(vec![group(0, 3, 60, 0.3, 0.1), group(1, 9, 40, 0.2, 0.0)]);
        let report = diff_attributions(&base, &split, 0.5).expect("diff");
        assert_eq!(report.regressions(), 1, "only the K change flags");
        assert!(report
            .entries
            .iter()
            .any(|e| e.name == "selected_k" && e.regression));
        // The new group's representative row is informational, mirroring
        // the new-checksum convention in manifest diffs.
        let new_rep = report
            .entries
            .iter()
            .find(|e| e.name == "group1.representative")
            .unwrap();
        assert!(!new_rep.regression && new_rep.base == "-");
    }

    #[test]
    fn diff_rejects_foreign_schema() {
        let doc = artifact(vec![group(0, 3, 100, 0.5, 0.1)]);
        assert!(diff_attributions(&doc, &json!({}), 0.5).is_err());
        assert!(diff_attributions(&json!({}), &doc, 0.5).is_err());
    }
}
