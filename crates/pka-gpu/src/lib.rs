//! GPU execution-model substrate for Principal Kernel Analysis.
//!
//! The paper evaluates PKA on real Nvidia silicon (Volta V100, Turing
//! RTX 2060, Ampere RTX 3070) profiled with Nsight. This environment has no
//! GPU, so this crate supplies the synthetic equivalent (see DESIGN.md §2):
//!
//! * [`GpuConfig`] — an architecture description with presets for the three
//!   generations the paper studies, plus the half-SM MPS configuration used
//!   by the Figure 10 case study.
//! * [`KernelDescriptor`] — a declarative description of one kernel launch:
//!   grid geometry, per-thread instruction mix, memory behaviour, and phase
//!   structure. Workload generators produce streams of these.
//! * [`KernelMetrics`] — the 12 microarchitecture-agnostic metrics of
//!   Table 2, derivable from any descriptor for any architecture (the ISA
//!   scale factor models the instruction-count drift between generations the
//!   paper discusses in Section 3.1).
//! * [`Occupancy`] — the blocks-per-SM / wave-size calculator that
//!   *Principal Kernel Projection* needs for its full-wave constraint.
//! * [`SiliconExecutor`] — an analytical performance model standing in for
//!   real silicon: given a descriptor it returns cycles, runtime, DRAM
//!   utilisation and cache behaviour, deterministically.
//!
//! The cycle-level *timing* simulator (the Accel-Sim stand-in) lives in the
//! `pka-sim` crate and consumes the same descriptors.
//!
//! # Examples
//!
//! ```
//! use pka_gpu::{GpuConfig, KernelDescriptor, SiliconExecutor};
//!
//! let config = GpuConfig::v100();
//! let kernel = KernelDescriptor::builder("saxpy")
//!     .grid_blocks(1024)
//!     .block_threads(256)
//!     .fp32_per_thread(64)
//!     .global_loads_per_thread(2)
//!     .global_stores_per_thread(1)
//!     .build()?;
//! let silicon = SiliconExecutor::new(config);
//! let result = silicon.execute(&kernel)?;
//! assert!(result.cycles > 0);
//! # Ok::<(), pka_gpu::GpuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod error;
mod kernel;
mod metrics;
mod occupancy;
mod silicon;

pub use arch::{GpuConfig, GpuConfigBuilder, GpuGeneration};
pub use error::GpuError;
pub use kernel::{Dim3, InstClass, KernelDescriptor, KernelDescriptorBuilder, KernelId, KernelPhase};
pub use metrics::KernelMetrics;
pub use occupancy::Occupancy;
pub use silicon::{base_latency, warp_throughput, SiliconExecutor, SiliconResult};
