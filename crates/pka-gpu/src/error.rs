use std::error::Error;
use std::fmt;

/// Errors produced when constructing GPU configurations or kernels.
///
/// # Examples
///
/// ```
/// use pka_gpu::{GpuError, KernelDescriptor};
///
/// let err = KernelDescriptor::builder("k").block_threads(0).build().unwrap_err();
/// assert!(matches!(err, GpuError::InvalidKernel { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpuError {
    /// An architecture parameter was out of range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        message: String,
    },
    /// A kernel descriptor was malformed.
    InvalidKernel {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        message: String,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::InvalidConfig { field, message } => {
                write!(f, "invalid gpu config field `{field}`: {message}")
            }
            GpuError::InvalidKernel { field, message } => {
                write!(f, "invalid kernel field `{field}`: {message}")
            }
        }
    }
}

impl Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = GpuError::InvalidConfig {
            field: "num_sms",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("num_sms"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpuError>();
    }
}
