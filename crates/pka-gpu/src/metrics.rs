use serde::{Deserialize, Serialize};

use crate::{GpuGeneration, InstClass, KernelDescriptor};

/// The 12 microarchitecture-agnostic characteristics of Table 2, collected
/// per kernel for PCA analysis.
///
/// Each field corresponds to one Nsight Compute metric from the paper:
///
/// | Field | Nsight metric |
/// |---|---|
/// | `coalesced_global_loads` | `l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum` |
/// | `coalesced_global_stores` | `l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum` |
/// | `coalesced_local_loads` | `l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum` |
/// | `thread_global_loads` | `smsp__inst_executed_op_global_ld.sum` |
/// | `thread_global_stores` | `smsp__inst_executed_op_global_st.sum` |
/// | `thread_local_loads` | `smsp__inst_executed_op_local_ld.sum` |
/// | `thread_shared_loads` | `smsp__inst_executed_op_shared_ld.sum` |
/// | `thread_shared_stores` | `smsp__inst_executed_op_shared_st.sum` |
/// | `thread_global_atomics` | `smsp__sass_inst_executed_op_global_atom.sum` |
/// | `instructions` | `smsp__inst_executed.sum` |
/// | `divergence_efficiency` | `smsp__thread_inst_executed_per_inst_executed.ratio` |
/// | `thread_blocks` | `launch_grid_size` |
///
/// These depend only on the generated GPU code, not on the specific GPU —
/// except for the small ISA drift between generations, modelled by
/// [`GpuGeneration::isa_scale`].
///
/// # Examples
///
/// ```
/// use pka_gpu::{GpuGeneration, KernelDescriptor, KernelMetrics};
///
/// let k = KernelDescriptor::builder("k")
///     .grid_blocks(64)
///     .block_threads(128)
///     .fp32_per_thread(16)
///     .global_loads_per_thread(4)
///     .build()?;
/// let m = KernelMetrics::from_descriptor(&k, GpuGeneration::Volta);
/// assert_eq!(m.thread_blocks, 64);
/// assert!(m.instructions > 0.0);
/// # Ok::<(), pka_gpu::GpuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Global-load sector traffic (32 B sectors).
    pub coalesced_global_loads: f64,
    /// Global-store sector traffic.
    pub coalesced_global_stores: f64,
    /// Local-load sector traffic.
    pub coalesced_local_loads: f64,
    /// Warp-level global-load instructions executed.
    pub thread_global_loads: f64,
    /// Warp-level global-store instructions executed.
    pub thread_global_stores: f64,
    /// Warp-level local-load instructions executed.
    pub thread_local_loads: f64,
    /// Warp-level shared-load instructions executed.
    pub thread_shared_loads: f64,
    /// Warp-level shared-store instructions executed.
    pub thread_shared_stores: f64,
    /// Warp-level global atomic instructions executed.
    pub thread_global_atomics: f64,
    /// Total warp instructions executed.
    pub instructions: f64,
    /// Average threads active per executed warp instruction (`0..=32`).
    pub divergence_efficiency: f64,
    /// Thread blocks in the launch grid.
    pub thread_blocks: u64,
}

impl KernelMetrics {
    /// Number of features in the vector form.
    pub const FEATURE_COUNT: usize = 12;

    /// Stable feature names matching [`to_feature_vector`]
    /// (`to_feature_vector`'s ordering).
    ///
    /// [`to_feature_vector`]: KernelMetrics::to_feature_vector
    pub const FEATURE_NAMES: [&'static str; Self::FEATURE_COUNT] = [
        "coalesced_global_loads",
        "coalesced_global_stores",
        "coalesced_local_loads",
        "thread_global_loads",
        "thread_global_stores",
        "thread_local_loads",
        "thread_shared_loads",
        "thread_shared_stores",
        "thread_global_atomics",
        "instructions",
        "divergence_efficiency",
        "thread_blocks",
    ];

    /// Derives the profile a detailed profiler (Nsight Compute) would report
    /// for `descriptor` on a GPU of `generation`.
    pub fn from_descriptor(descriptor: &KernelDescriptor, generation: GpuGeneration) -> Self {
        let warps = descriptor.total_warps() as f64;
        let isa = generation.isa_scale();
        let warp_count = |class: InstClass| descriptor.count(class) as f64 * warps * isa;
        let sectors = descriptor.coalescing_sectors();

        KernelMetrics {
            coalesced_global_loads: warp_count(InstClass::LdGlobal) * sectors,
            coalesced_global_stores: warp_count(InstClass::StGlobal) * sectors,
            coalesced_local_loads: warp_count(InstClass::LdLocal) * sectors,
            thread_global_loads: warp_count(InstClass::LdGlobal),
            thread_global_stores: warp_count(InstClass::StGlobal),
            thread_local_loads: warp_count(InstClass::LdLocal),
            thread_shared_loads: warp_count(InstClass::LdShared),
            thread_shared_stores: warp_count(InstClass::StShared),
            thread_global_atomics: warp_count(InstClass::AtomicGlobal),
            instructions: descriptor.instructions_per_thread() as f64 * warps * isa,
            divergence_efficiency: descriptor.divergence_efficiency() * 32.0,
            thread_blocks: descriptor.total_blocks(),
        }
    }

    /// Flattens the metrics into the feature vector used for PCA + K-Means.
    ///
    /// Count-valued metrics are `log1p`-compressed so that a kernel with 10×
    /// the instructions is a constant distance away regardless of absolute
    /// scale — the same reason the paper standardises before PCA. Ratio
    /// metrics are passed through unchanged.
    pub fn to_feature_vector(&self) -> Vec<f64> {
        vec![
            self.coalesced_global_loads.ln_1p(),
            self.coalesced_global_stores.ln_1p(),
            self.coalesced_local_loads.ln_1p(),
            self.thread_global_loads.ln_1p(),
            self.thread_global_stores.ln_1p(),
            self.thread_local_loads.ln_1p(),
            self.thread_shared_loads.ln_1p(),
            self.thread_shared_stores.ln_1p(),
            self.thread_global_atomics.ln_1p(),
            self.instructions.ln_1p(),
            self.divergence_efficiency,
            (self.thread_blocks as f64).ln_1p(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelDescriptor;

    fn kernel() -> KernelDescriptor {
        KernelDescriptor::builder("k")
            .grid_blocks(8)
            .block_threads(64) // 2 warps per block, 16 warps total
            .fp32_per_thread(10)
            .global_loads_per_thread(3)
            .global_stores_per_thread(1)
            .shared_loads_per_thread(2)
            .coalescing_sectors(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn counts_scale_with_warps() {
        let m = KernelMetrics::from_descriptor(&kernel(), GpuGeneration::Volta);
        assert_eq!(m.thread_global_loads, 3.0 * 16.0);
        assert_eq!(m.thread_global_stores, 16.0);
        assert_eq!(m.coalesced_global_loads, 3.0 * 16.0 * 4.0);
        assert_eq!(m.thread_shared_loads, 2.0 * 16.0);
        assert_eq!(m.thread_blocks, 8);
    }

    #[test]
    fn isa_scale_shifts_counts_between_generations() {
        let k = kernel();
        let volta = KernelMetrics::from_descriptor(&k, GpuGeneration::Volta);
        let turing = KernelMetrics::from_descriptor(&k, GpuGeneration::Turing);
        let ampere = KernelMetrics::from_descriptor(&k, GpuGeneration::Ampere);
        assert!(turing.instructions > volta.instructions);
        assert!(ampere.instructions < volta.instructions);
        // Grid geometry is ISA-independent.
        assert_eq!(volta.thread_blocks, turing.thread_blocks);
    }

    #[test]
    fn divergence_reported_in_threads_per_instruction() {
        let k = KernelDescriptor::builder("div")
            .fp32_per_thread(1)
            .divergence_efficiency(0.5)
            .build()
            .unwrap();
        let m = KernelMetrics::from_descriptor(&k, GpuGeneration::Volta);
        assert_eq!(m.divergence_efficiency, 16.0);
    }

    #[test]
    fn feature_vector_shape_and_names_agree() {
        let m = KernelMetrics::from_descriptor(&kernel(), GpuGeneration::Volta);
        let v = m.to_feature_vector();
        assert_eq!(v.len(), KernelMetrics::FEATURE_COUNT);
        assert_eq!(v.len(), KernelMetrics::FEATURE_NAMES.len());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn feature_vector_is_log_compressed() {
        let small = kernel();
        let big = KernelDescriptor::builder("big")
            .grid_blocks(8000)
            .block_threads(64)
            .fp32_per_thread(10)
            .global_loads_per_thread(3)
            .build()
            .unwrap();
        let vs = KernelMetrics::from_descriptor(&small, GpuGeneration::Volta).to_feature_vector();
        let vb = KernelMetrics::from_descriptor(&big, GpuGeneration::Volta).to_feature_vector();
        // 1000x more blocks moves the instruction feature by ~ln(1000), not 1000x.
        assert!(vb[9] - vs[9] < 8.0);
        assert!(vb[9] > vs[9]);
    }
}
