use pka_stats::hash::{fnv1a, UnitStream};
use serde::{Deserialize, Serialize};

use crate::{GpuConfig, GpuError, InstClass, KernelDescriptor, Occupancy};

/// Per-class warp-instruction throughput of one SM, in warp instructions per
/// cycle. Shared by the silicon model and the cycle-level simulator (in
/// `pka-sim`) so both agree on the *meaning* of a descriptor; their accuracy
/// gap comes from structural effects (queueing, caches, scheduling), not
/// from different instruction semantics.
pub fn warp_throughput(config: &GpuConfig, class: InstClass) -> f64 {
    let lanes = config.fp32_lanes_per_sm() as f64 / config.warp_size() as f64;
    match class {
        InstClass::Fp32 | InstClass::Int => lanes,
        InstClass::Fp64 => match config.generation() {
            crate::GpuGeneration::Volta => lanes / 2.0,
            _ => lanes / 16.0,
        },
        InstClass::Sfu => config.sfu_units_per_sm() as f64 / 8.0,
        InstClass::Tensor => config.tensor_units_per_sm() as f64 / 4.0,
        InstClass::LdGlobal
        | InstClass::StGlobal
        | InstClass::LdLocal
        | InstClass::StLocal
        | InstClass::AtomicGlobal
        | InstClass::LdShared
        | InstClass::StShared => config.ldst_units_per_sm() as f64 / 4.0,
        InstClass::Branch | InstClass::Sync => config.issue_width() as f64,
    }
}

/// Typical result latency of one instruction class in core cycles, assuming
/// the access hits at the given level (memory classes use the cache model's
/// outcome instead of the L1 figure here).
pub fn base_latency(config: &GpuConfig, class: InstClass) -> u32 {
    match class {
        InstClass::Fp32 | InstClass::Int => 4,
        InstClass::Fp64 => match config.generation() {
            crate::GpuGeneration::Volta => 8,
            _ => 32,
        },
        InstClass::Sfu => 20,
        InstClass::Tensor => 16,
        InstClass::LdGlobal | InstClass::LdLocal => config.l1_latency_cycles(),
        InstClass::StGlobal | InstClass::StLocal => 8,
        InstClass::AtomicGlobal => config.l2_latency_cycles(),
        InstClass::LdShared | InstClass::StShared => 24,
        InstClass::Branch => 2,
        InstClass::Sync => 6,
    }
}

/// What real silicon reports for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiliconResult {
    /// Kernel duration in core cycles (includes launch overhead).
    pub cycles: u64,
    /// Kernel duration in seconds at the configured clock.
    pub seconds: f64,
    /// Average warp instructions retired per cycle, device-wide.
    pub warp_ipc: f64,
    /// DRAM bandwidth utilisation, percent.
    pub dram_util_pct: f64,
    /// L2 miss rate, percent of L2 accesses.
    pub l2_miss_rate_pct: f64,
    /// L1 hit rate, percent of L1 accesses.
    pub l1_hit_rate_pct: f64,
}

/// An analytical performance model standing in for real GPU silicon.
///
/// Given a [`KernelDescriptor`] it computes execution cycles from roofline-
/// style throughput limits (compute pipes, L2 bandwidth, DRAM bandwidth),
/// a latency floor for under-occupied launches, a wave-quantisation tail
/// penalty, and a small deterministic per-kernel perturbation — i.e. the
/// ingredients that make real silicon disagree with any simulator. The
/// cycle-level simulator in `pka-sim` models the same kernels structurally,
/// and the gap between the two reproduces the paper's "SimError" column.
///
/// Results are deterministic: the perturbation is seeded from the kernel
/// seed and the configuration name.
///
/// # Examples
///
/// ```
/// use pka_gpu::{GpuConfig, KernelDescriptor, SiliconExecutor};
///
/// let silicon = SiliconExecutor::new(GpuConfig::v100());
/// let k = KernelDescriptor::builder("k")
///     .grid_blocks(640)
///     .block_threads(256)
///     .fp32_per_thread(100)
///     .build()?;
/// let r = silicon.execute(&k)?;
/// assert!(r.seconds > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SiliconExecutor {
    config: GpuConfig,
    /// Fixed kernel-launch overhead in cycles (driver + dispatch).
    launch_overhead_cycles: u64,
}

impl SiliconExecutor {
    /// Creates an executor for `config`.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            config,
            launch_overhead_cycles: 2_500,
        }
    }

    /// The architecture this executor models.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs one kernel and reports what a profiler would measure.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidKernel`] if the kernel cannot be launched
    /// on this configuration (occupancy of zero blocks per SM).
    pub fn execute(&self, kernel: &KernelDescriptor) -> Result<SiliconResult, GpuError> {
        let config = &self.config;
        let occ = Occupancy::compute(kernel, config)?;
        let isa = config.generation().isa_scale();

        let sms_used = config.num_sms().min(kernel.total_blocks() as u32).max(1) as f64;
        let total_warps = kernel.total_warps() as f64;

        // --- Compute roofline: busiest pipe across the used SMs. ---
        let mut issue_insts = 0.0f64;
        let mut pipe_cycles = 0.0f64;
        for class in InstClass::ALL {
            let insts = kernel.count(class) as f64 * total_warps * isa;
            issue_insts += insts;
            let rate = warp_throughput(config, class) * sms_used;
            pipe_cycles = pipe_cycles.max(insts / rate);
        }
        let issue_cycles = issue_insts / (config.issue_width() as f64 * sms_used);
        // Divergent kernels waste issue slots re-issuing partial warps.
        let divergence_penalty = 1.0 + 0.4 * (1.0 - kernel.divergence_efficiency());
        let compute_cycles = pipe_cycles.max(issue_cycles) * divergence_penalty;

        // --- Memory rooflines. ---
        let (l1_hit, l2_hit) = self.hit_rates(kernel, sms_used);
        let sectors = kernel.total_global_sectors() * isa;
        let l2_sectors = sectors * (1.0 - l1_hit);
        let dram_sectors = l2_sectors * (1.0 - l2_hit);
        // L2 serves roughly one sector per slice per cycle.
        let l2_rate = config.dram_channels() as f64;
        let l2_cycles = l2_sectors / l2_rate;
        let dram_cycles = dram_sectors / config.dram_sectors_per_cycle();

        // --- Latency floor: waves of blocks can't beat their critical path. ---
        let ipt = kernel.instructions_per_thread() as f64 * isa;
        let mem_per_thread = kernel.global_accesses_per_thread() as f64 * isa;
        let miss_latency = config.l1_latency_cycles() as f64
            + (1.0 - l1_hit)
                * (config.l2_latency_cycles() as f64
                    + (1.0 - l2_hit) * config.dram_latency_cycles() as f64);
        // A block's critical path: issue its instructions, and pay roughly
        // one exposed miss latency per barrier segment (the slowest warp's
        // outstanding load gates every barrier) when the kernel touches
        // global memory, plus a residual dependence term for barrier-free
        // kernels (a quarter of misses on the chain at MLP 4).
        let barriers = kernel.count(InstClass::Sync) as f64 * isa;
        let mem_factor = (mem_per_thread / 8.0).min(1.0);
        let barrier_stalls = (barriers + 1.0) * miss_latency * mem_factor;
        let chain_stalls = mem_per_thread * miss_latency * 0.25 / 4.0;
        let block_critical_path = 40.0 + ipt * 1.15 + barrier_stalls.max(chain_stalls);
        let latency_cycles = occ.waves() as f64 * block_critical_path;

        // --- Combine. ---
        // Wave quantisation penalises SM-bound (compute) work: a partial
        // last wave underutilises the cores. Bandwidth-bound work drains the
        // memory system at full rate regardless of wave alignment, so the
        // tail multiplier applies to the compute component only.
        let frac_waves = kernel.total_blocks() as f64 / occ.wave_blocks() as f64;
        let tail = if frac_waves >= 1.0 {
            occ.waves() as f64 / frac_waves
        } else {
            1.0
        };
        let throughput_cycles = (compute_cycles * tail).max(l2_cycles).max(dram_cycles);
        let mut cycles = throughput_cycles;
        cycles = cycles.max(latency_cycles);

        // Deterministic silicon jitter (clock boost, DVFS, row-buffer luck).
        let mut jitter = UnitStream::new(kernel.seed() ^ fnv1a(config.name().as_bytes()));
        cycles *= 1.0 + 0.04 * (jitter.next_f64() - 0.5);

        let cycles = cycles.max(1.0) as u64 + self.launch_overhead_cycles;
        let seconds = cycles as f64 / config.core_clock_hz();
        let dram_util = (dram_cycles / cycles as f64 * 100.0).min(99.0);
        Ok(SiliconResult {
            cycles,
            seconds,
            warp_ipc: issue_insts / cycles as f64,
            dram_util_pct: dram_util,
            l2_miss_rate_pct: (1.0 - l2_hit) * 100.0,
            l1_hit_rate_pct: l1_hit * 100.0,
        })
    }

    /// Capacity-adjusted L1 and L2 hit rates for a kernel.
    fn hit_rates(&self, kernel: &KernelDescriptor, sms_used: f64) -> (f64, f64) {
        let ws = kernel.working_set_bytes().max(1) as f64;
        let l1_capacity = self.config.l1_bytes() as f64 * sms_used;
        let l2_capacity = self.config.l2_bytes() as f64;
        let l1_fit = (l1_capacity / ws).min(1.0).sqrt();
        let l2_fit = (l2_capacity / ws).min(1.0).sqrt();
        (
            kernel.l1_locality() * l1_fit,
            kernel.l2_locality() * l2_fit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_kernel(blocks: u32) -> KernelDescriptor {
        KernelDescriptor::builder("compute")
            .grid_blocks(blocks)
            .block_threads(256)
            .fp32_per_thread(2000)
            .global_loads_per_thread(2)
            .build()
            .unwrap()
    }

    fn memory_kernel(blocks: u32) -> KernelDescriptor {
        KernelDescriptor::builder("memory")
            .grid_blocks(blocks)
            .block_threads(256)
            .fp32_per_thread(4)
            .global_loads_per_thread(64)
            .global_stores_per_thread(32)
            .coalescing_sectors(16.0)
            .l1_locality(0.05)
            .l2_locality(0.1)
            .working_set_bytes(1 << 30)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic() {
        let s = SiliconExecutor::new(GpuConfig::v100());
        let k = compute_kernel(640);
        assert_eq!(s.execute(&k).unwrap(), s.execute(&k).unwrap());
    }

    #[test]
    fn more_work_takes_longer() {
        let s = SiliconExecutor::new(GpuConfig::v100());
        let small = s.execute(&compute_kernel(80)).unwrap();
        let big = s.execute(&compute_kernel(8000)).unwrap();
        assert!(big.cycles > 10 * small.cycles);
    }

    #[test]
    fn memory_kernel_saturates_dram() {
        let s = SiliconExecutor::new(GpuConfig::v100());
        let r = s.execute(&memory_kernel(2000)).unwrap();
        assert!(r.dram_util_pct > 50.0, "{}", r.dram_util_pct);
        let c = s.execute(&compute_kernel(2000)).unwrap();
        assert!(c.dram_util_pct < 20.0, "{}", c.dram_util_pct);
    }

    #[test]
    fn faster_memory_system_helps_memory_kernels_more() {
        let v100 = SiliconExecutor::new(GpuConfig::v100());
        let t2060 = SiliconExecutor::new(GpuConfig::rtx2060());
        let mem_ratio = t2060.execute(&memory_kernel(2000)).unwrap().seconds
            / v100.execute(&memory_kernel(2000)).unwrap().seconds;
        let cmp_ratio = t2060.execute(&compute_kernel(2000)).unwrap().seconds
            / v100.execute(&compute_kernel(2000)).unwrap().seconds;
        assert!(mem_ratio > cmp_ratio);
        assert!(mem_ratio > 1.5, "900 vs 336 GB/s should show: {mem_ratio}");
    }

    #[test]
    fn halving_sms_hurts_compute_bound_kernels() {
        let full = SiliconExecutor::new(GpuConfig::v100());
        let half = SiliconExecutor::new(GpuConfig::v100_half_sms());
        let k = compute_kernel(8000);
        let ratio =
            half.execute(&k).unwrap().cycles as f64 / full.execute(&k).unwrap().cycles as f64;
        assert!(ratio > 1.7 && ratio < 2.3, "{ratio}");
        // Memory-bound work cares much less.
        let m = memory_kernel(8000);
        let mratio =
            half.execute(&m).unwrap().cycles as f64 / full.execute(&m).unwrap().cycles as f64;
        assert!(mratio < ratio);
    }

    #[test]
    fn single_block_is_latency_bound() {
        let s = SiliconExecutor::new(GpuConfig::v100());
        let one = KernelDescriptor::builder("tiny")
            .grid_blocks(1)
            .block_threads(32)
            .fp32_per_thread(100)
            .build()
            .unwrap();
        let r = s.execute(&one).unwrap();
        // Must cost at least the critical path plus launch overhead, and the
        // device-wide IPC must be far below peak.
        assert!(r.cycles > 2_500);
        assert!(r.warp_ipc < 1.0);
    }

    #[test]
    fn ipc_below_peak() {
        let s = SiliconExecutor::new(GpuConfig::v100());
        for k in [compute_kernel(640), memory_kernel(640)] {
            let r = s.execute(&k).unwrap();
            assert!(r.warp_ipc <= s.config().peak_warp_ipc() * 1.01);
        }
    }

    #[test]
    fn seconds_track_cycles_and_clock() {
        let s = SiliconExecutor::new(GpuConfig::v100());
        let r = s.execute(&compute_kernel(640)).unwrap();
        let expected = r.cycles as f64 / (1455.0 * 1e6);
        assert!((r.seconds - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn different_seeds_jitter_slightly() {
        let s = SiliconExecutor::new(GpuConfig::v100());
        let a = compute_kernel(640);
        let b = KernelDescriptor::builder("compute")
            .grid_blocks(640)
            .block_threads(256)
            .fp32_per_thread(2000)
            .global_loads_per_thread(2)
            .seed(99)
            .build()
            .unwrap();
        let ra = s.execute(&a).unwrap();
        let rb = s.execute(&b).unwrap();
        assert_ne!(ra.cycles, rb.cycles);
        let rel = (ra.cycles as f64 - rb.cycles as f64).abs() / ra.cycles as f64;
        assert!(rel < 0.05, "jitter should be small: {rel}");
    }

    #[test]
    fn tensor_kernels_fly_on_tensor_cores() {
        let s = SiliconExecutor::new(GpuConfig::v100());
        let wmma = KernelDescriptor::builder("wmma")
            .grid_blocks(640)
            .block_threads(256)
            .tensor_per_thread(500)
            .shared_loads_per_thread(32)
            .build()
            .unwrap();
        let sgemm = KernelDescriptor::builder("sgemm")
            .grid_blocks(640)
            .block_threads(256)
            .fp32_per_thread(4000) // ~8x the math throughput demand
            .shared_loads_per_thread(32)
            .build()
            .unwrap();
        let rw = s.execute(&wmma).unwrap();
        let rs = s.execute(&sgemm).unwrap();
        assert!(rw.cycles < rs.cycles);
    }
}
