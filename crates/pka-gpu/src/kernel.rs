use serde::{Deserialize, Serialize};

use crate::GpuError;

/// Identifier of one kernel launch within a workload, in chronological
/// launch order starting at 0 (the numbering Table 3 of the paper uses).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct KernelId(u64);

impl KernelId {
    /// Wraps a raw launch index.
    pub fn new(index: u64) -> Self {
        Self(index)
    }

    /// The raw launch index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for KernelId {
    fn from(index: u64) -> Self {
        Self(index)
    }
}

/// A CUDA-style 3-component dimension.
///
/// # Examples
///
/// ```
/// use pka_gpu::Dim3;
///
/// assert_eq!(Dim3::new(4, 2, 1).count(), 8);
/// assert_eq!(Dim3::linear(64).count(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// Extent along x.
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z.
    pub z: u32,
}

impl Dim3 {
    /// A 3-D dimension.
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// A 1-D dimension `(x, 1, 1)`.
    pub fn linear(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// Total element count (`x * y * z`).
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Self::linear(1)
    }
}

/// Dynamic instruction classes distinguished by the performance models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Single-precision arithmetic.
    Fp32,
    /// Double-precision arithmetic.
    Fp64,
    /// Integer / address arithmetic.
    Int,
    /// Special-function (transcendental) operations.
    Sfu,
    /// Tensor-core matrix-multiply-accumulate.
    Tensor,
    /// Global-memory load.
    LdGlobal,
    /// Global-memory store.
    StGlobal,
    /// Local-memory load (register spill traffic).
    LdLocal,
    /// Local-memory store.
    StLocal,
    /// Shared-memory load.
    LdShared,
    /// Shared-memory store.
    StShared,
    /// Global atomic operation.
    AtomicGlobal,
    /// Branch instruction.
    Branch,
    /// Block-wide barrier.
    Sync,
}

impl InstClass {
    /// All classes, in a stable order.
    pub const ALL: [InstClass; 14] = [
        InstClass::Fp32,
        InstClass::Fp64,
        InstClass::Int,
        InstClass::Sfu,
        InstClass::Tensor,
        InstClass::LdGlobal,
        InstClass::StGlobal,
        InstClass::LdLocal,
        InstClass::StLocal,
        InstClass::LdShared,
        InstClass::StShared,
        InstClass::AtomicGlobal,
        InstClass::Branch,
        InstClass::Sync,
    ];

    /// Stable dense index of this class (its position in [`InstClass::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns `true` for classes that access global memory (and therefore
    /// the L1/L2/DRAM hierarchy).
    pub fn is_global_memory(self) -> bool {
        matches!(
            self,
            InstClass::LdGlobal
                | InstClass::StGlobal
                | InstClass::LdLocal
                | InstClass::StLocal
                | InstClass::AtomicGlobal
        )
    }
}

/// One behavioural phase of a kernel.
///
/// Regular kernels have a single phase; irregular kernels (the paper's BFS
/// example, Figure 5b) shift between phases with different memory and
/// compute intensity, producing the wandering-then-stabilising IPC curves
/// PKP must cope with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelPhase {
    /// Fraction of the kernel's dynamic instructions spent in this phase.
    pub fraction: f64,
    /// Multiplier on memory intensity during the phase.
    pub mem_scale: f64,
    /// Multiplier on compute throughput during the phase.
    pub compute_scale: f64,
}

impl Default for KernelPhase {
    fn default() -> Self {
        Self {
            fraction: 1.0,
            mem_scale: 1.0,
            compute_scale: 1.0,
        }
    }
}

/// A declarative description of one kernel launch.
///
/// This is the unit both performance models consume: the silicon executor
/// turns it into cycles analytically, the cycle-level simulator expands it
/// into per-warp instruction traces. Workload generators stamp out millions
/// of these (lazily) to reproduce the launch streams of the 147 workloads.
///
/// Construct via [`KernelDescriptor::builder`].
///
/// # Examples
///
/// ```
/// use pka_gpu::KernelDescriptor;
///
/// let k = KernelDescriptor::builder("vecadd")
///     .grid_blocks(256)
///     .block_threads(128)
///     .fp32_per_thread(8)
///     .global_loads_per_thread(2)
///     .global_stores_per_thread(1)
///     .build()?;
/// assert_eq!(k.total_threads(), 256 * 128);
/// assert_eq!(k.warps_per_block(), 4);
/// # Ok::<(), pka_gpu::GpuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDescriptor {
    name: String,
    grid: Dim3,
    block: Dim3,
    regs_per_thread: u32,
    shared_mem_per_block: u32,

    // Per-thread dynamic instruction counts.
    fp32: u32,
    fp64: u32,
    int_ops: u32,
    sfu: u32,
    tensor: u32,
    global_loads: u32,
    global_stores: u32,
    local_loads: u32,
    local_stores: u32,
    shared_loads: u32,
    shared_stores: u32,
    global_atomics: u32,
    branches: u32,
    syncs: u32,

    // Memory behaviour.
    /// Average 32-byte sectors touched per warp-level global access
    /// (4 = perfectly coalesced 128 B, 32 = fully diverged).
    coalescing_sectors: f64,
    working_set_bytes: u64,
    /// Propensity of L1 hits given infinite capacity, in `[0, 1]`.
    l1_locality: f64,
    /// Propensity of L2 hits given infinite capacity, in `[0, 1]`.
    l2_locality: f64,
    /// Average active threads per warp divided by the warp size, `(0, 1]`.
    divergence_efficiency: f64,

    phases: Vec<KernelPhase>,
    seed: u64,
}

impl KernelDescriptor {
    /// Starts building a kernel named `name`.
    pub fn builder(name: impl Into<String>) -> KernelDescriptorBuilder {
        KernelDescriptorBuilder {
            descriptor: KernelDescriptor {
                name: name.into(),
                grid: Dim3::linear(1),
                block: Dim3::linear(128),
                regs_per_thread: 32,
                shared_mem_per_block: 0,
                fp32: 0,
                fp64: 0,
                int_ops: 8,
                sfu: 0,
                tensor: 0,
                global_loads: 0,
                global_stores: 0,
                local_loads: 0,
                local_stores: 0,
                shared_loads: 0,
                shared_stores: 0,
                global_atomics: 0,
                branches: 2,
                syncs: 0,
                coalescing_sectors: 4.0,
                working_set_bytes: 1 << 20,
                l1_locality: 0.5,
                l2_locality: 0.6,
                divergence_efficiency: 1.0,
                phases: vec![KernelPhase::default()],
                seed: 0,
            },
        }
    }

    /// Kernel name (not used by any clustering — PKS is name-independent).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid dimensions (blocks).
    pub fn grid(&self) -> Dim3 {
        self.grid
    }

    /// Block dimensions (threads).
    pub fn block(&self) -> Dim3 {
        self.block
    }

    /// Registers per thread.
    pub fn regs_per_thread(&self) -> u32 {
        self.regs_per_thread
    }

    /// Static + dynamic shared memory per block, bytes.
    pub fn shared_mem_per_block(&self) -> u32 {
        self.shared_mem_per_block
    }

    /// Total thread blocks in the grid.
    pub fn total_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    /// Warps per block (warp size 32).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(32)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.total_blocks() * self.threads_per_block() as u64
    }

    /// Total warps in the grid.
    pub fn total_warps(&self) -> u64 {
        self.total_blocks() * self.warps_per_block() as u64
    }

    /// Per-thread dynamic instruction count of one class.
    pub fn count(&self, class: InstClass) -> u32 {
        match class {
            InstClass::Fp32 => self.fp32,
            InstClass::Fp64 => self.fp64,
            InstClass::Int => self.int_ops,
            InstClass::Sfu => self.sfu,
            InstClass::Tensor => self.tensor,
            InstClass::LdGlobal => self.global_loads,
            InstClass::StGlobal => self.global_stores,
            InstClass::LdLocal => self.local_loads,
            InstClass::StLocal => self.local_stores,
            InstClass::LdShared => self.shared_loads,
            InstClass::StShared => self.shared_stores,
            InstClass::AtomicGlobal => self.global_atomics,
            InstClass::Branch => self.branches,
            InstClass::Sync => self.syncs,
        }
    }

    /// Total per-thread dynamic instructions across all classes.
    pub fn instructions_per_thread(&self) -> u64 {
        InstClass::ALL
            .iter()
            .map(|&c| self.count(c) as u64)
            .sum()
    }

    /// Total dynamic warp instructions in the grid.
    pub fn total_warp_instructions(&self) -> u64 {
        self.instructions_per_thread() * self.total_warps()
    }

    /// Per-thread global-memory instructions (loads, stores, locals,
    /// atomics).
    pub fn global_accesses_per_thread(&self) -> u64 {
        (self.global_loads
            + self.global_stores
            + self.local_loads
            + self.local_stores
            + self.global_atomics) as u64
    }

    /// Average 32-byte sectors per warp-level global access.
    pub fn coalescing_sectors(&self) -> f64 {
        self.coalescing_sectors
    }

    /// Estimated working-set size, bytes.
    pub fn working_set_bytes(&self) -> u64 {
        self.working_set_bytes
    }

    /// L1 hit propensity in `[0, 1]` (before capacity effects).
    pub fn l1_locality(&self) -> f64 {
        self.l1_locality
    }

    /// L2 hit propensity in `[0, 1]` (before capacity effects).
    pub fn l2_locality(&self) -> f64 {
        self.l2_locality
    }

    /// Average active-thread fraction per warp, `(0, 1]`.
    pub fn divergence_efficiency(&self) -> f64 {
        self.divergence_efficiency
    }

    /// Behavioural phases (at least one; fractions sum to 1).
    pub fn phases(&self) -> &[KernelPhase] {
        &self.phases
    }

    /// Deterministic seed for address streams and model noise.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total 32-byte sectors of global traffic the grid generates (before
    /// any cache filtering).
    pub fn total_global_sectors(&self) -> f64 {
        self.global_accesses_per_thread() as f64
            * self.total_warps() as f64
            * self.coalescing_sectors
    }
}

/// Builder for [`KernelDescriptor`]. Cloneable so workload generators can
/// stamp out families of similar launches from one template.
#[derive(Debug, Clone)]
pub struct KernelDescriptorBuilder {
    descriptor: KernelDescriptor,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident, $field:ident, u32) => {
        $(#[$doc])*
        pub fn $name(mut self, value: u32) -> Self {
            self.descriptor.$field = value;
            self
        }
    };
    ($(#[$doc:meta])* $name:ident, $field:ident, f64) => {
        $(#[$doc])*
        pub fn $name(mut self, value: f64) -> Self {
            self.descriptor.$field = value;
            self
        }
    };
}

impl KernelDescriptorBuilder {
    /// Sets a 1-D grid of `blocks` thread blocks.
    pub fn grid_blocks(mut self, blocks: u32) -> Self {
        self.descriptor.grid = Dim3::linear(blocks);
        self
    }

    /// Sets the full 3-D grid dimensions.
    pub fn grid(mut self, grid: Dim3) -> Self {
        self.descriptor.grid = grid;
        self
    }

    /// Sets a 1-D block of `threads` threads.
    pub fn block_threads(mut self, threads: u32) -> Self {
        self.descriptor.block = Dim3::linear(threads);
        self
    }

    /// Sets the full 3-D block dimensions.
    pub fn block(mut self, block: Dim3) -> Self {
        self.descriptor.block = block;
        self
    }

    /// Renames the kernel (useful when stamping variants from a template).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.descriptor.name = name.into();
        self
    }

    setter!(
        /// Registers per thread (occupancy limiter).
        regs_per_thread, regs_per_thread, u32);
    setter!(
        /// Shared memory per block in bytes (occupancy limiter).
        shared_mem_per_block, shared_mem_per_block, u32);
    setter!(
        /// FP32 instructions per thread.
        fp32_per_thread, fp32, u32);
    setter!(
        /// FP64 instructions per thread.
        fp64_per_thread, fp64, u32);
    setter!(
        /// Integer instructions per thread.
        int_per_thread, int_ops, u32);
    setter!(
        /// SFU instructions per thread.
        sfu_per_thread, sfu, u32);
    setter!(
        /// Tensor-core MMA instructions per thread.
        tensor_per_thread, tensor, u32);
    setter!(
        /// Global loads per thread.
        global_loads_per_thread, global_loads, u32);
    setter!(
        /// Global stores per thread.
        global_stores_per_thread, global_stores, u32);
    setter!(
        /// Local (spill) loads per thread.
        local_loads_per_thread, local_loads, u32);
    setter!(
        /// Local (spill) stores per thread.
        local_stores_per_thread, local_stores, u32);
    setter!(
        /// Shared-memory loads per thread.
        shared_loads_per_thread, shared_loads, u32);
    setter!(
        /// Shared-memory stores per thread.
        shared_stores_per_thread, shared_stores, u32);
    setter!(
        /// Global atomics per thread.
        global_atomics_per_thread, global_atomics, u32);
    setter!(
        /// Branches per thread.
        branches_per_thread, branches, u32);
    setter!(
        /// Barriers per thread.
        syncs_per_thread, syncs, u32);
    setter!(
        /// Average 32 B sectors per warp global access (4 = coalesced,
        /// 32 = diverged).
        coalescing_sectors, coalescing_sectors, f64);
    setter!(
        /// L1 hit propensity in `[0, 1]`.
        l1_locality, l1_locality, f64);
    setter!(
        /// L2 hit propensity in `[0, 1]`.
        l2_locality, l2_locality, f64);
    setter!(
        /// Average active-thread fraction per warp in `(0, 1]`.
        divergence_efficiency, divergence_efficiency, f64);

    /// Sets the working-set size in bytes.
    pub fn working_set_bytes(mut self, bytes: u64) -> Self {
        self.descriptor.working_set_bytes = bytes;
        self
    }

    /// Sets the deterministic model seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.descriptor.seed = seed;
        self
    }

    /// Replaces the phase list. Fractions are normalised at build time.
    pub fn phases(mut self, phases: Vec<KernelPhase>) -> Self {
        self.descriptor.phases = phases;
        self
    }

    /// Validates and returns the descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidKernel`] if the grid or block is empty,
    /// the block exceeds 1024 threads, ratios are outside their ranges, the
    /// phase list is empty, or the kernel executes no instructions.
    pub fn build(mut self) -> Result<KernelDescriptor, GpuError> {
        let d = &mut self.descriptor;
        if d.grid.count() == 0 {
            return Err(GpuError::InvalidKernel {
                field: "grid",
                message: "grid must contain at least one block".into(),
            });
        }
        let tpb = d.block.count();
        if tpb == 0 || tpb > 1024 {
            return Err(GpuError::InvalidKernel {
                field: "block",
                message: format!("threads per block must be in 1..=1024, got {tpb}"),
            });
        }
        if !(1.0..=32.0).contains(&d.coalescing_sectors) {
            return Err(GpuError::InvalidKernel {
                field: "coalescing_sectors",
                message: "must be in [1, 32]".into(),
            });
        }
        for (field, v) in [("l1_locality", d.l1_locality), ("l2_locality", d.l2_locality)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(GpuError::InvalidKernel {
                    field,
                    message: "must be in [0, 1]".into(),
                });
            }
        }
        if d.divergence_efficiency.is_nan() || d.divergence_efficiency <= 0.0 || d.divergence_efficiency > 1.0 {
            return Err(GpuError::InvalidKernel {
                field: "divergence_efficiency",
                message: "must be in (0, 1]".into(),
            });
        }
        if d.phases.is_empty() {
            return Err(GpuError::InvalidKernel {
                field: "phases",
                message: "at least one phase is required".into(),
            });
        }
        let total: f64 = d.phases.iter().map(|p| p.fraction).sum();
        if total.is_nan() || total <= 0.0 {
            return Err(GpuError::InvalidKernel {
                field: "phases",
                message: "phase fractions must sum to a positive value".into(),
            });
        }
        for p in &mut d.phases {
            p.fraction /= total;
        }
        if d.instructions_per_thread() == 0 {
            return Err(GpuError::InvalidKernel {
                field: "instructions",
                message: "kernel executes no instructions".into(),
            });
        }
        Ok(self.descriptor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> KernelDescriptorBuilder {
        KernelDescriptor::builder("k")
            .grid_blocks(4)
            .block_threads(64)
            .fp32_per_thread(10)
            .global_loads_per_thread(2)
    }

    #[test]
    fn geometry_derivations() {
        let k = simple().build().unwrap();
        assert_eq!(k.total_blocks(), 4);
        assert_eq!(k.threads_per_block(), 64);
        assert_eq!(k.warps_per_block(), 2);
        assert_eq!(k.total_threads(), 256);
        assert_eq!(k.total_warps(), 8);
    }

    #[test]
    fn ragged_block_rounds_warps_up() {
        let k = simple().block_threads(33).build().unwrap();
        assert_eq!(k.warps_per_block(), 2);
    }

    #[test]
    fn instruction_accounting() {
        let k = simple().build().unwrap();
        // fp32=10, int=8 (default), branches=2 (default), ld=2.
        assert_eq!(k.instructions_per_thread(), 22);
        assert_eq!(k.total_warp_instructions(), 22 * 8);
        assert_eq!(k.global_accesses_per_thread(), 2);
    }

    #[test]
    fn total_sectors_scales_with_coalescing() {
        let c4 = simple().coalescing_sectors(4.0).build().unwrap();
        let c32 = simple().coalescing_sectors(32.0).build().unwrap();
        assert_eq!(c32.total_global_sectors(), 8.0 * c4.total_global_sectors());
    }

    #[test]
    fn rejects_empty_grid_and_block() {
        assert!(simple().grid(Dim3::new(0, 1, 1)).build().is_err());
        assert!(simple().block_threads(0).build().is_err());
        assert!(simple().block_threads(2048).build().is_err());
    }

    #[test]
    fn rejects_out_of_range_ratios() {
        assert!(simple().coalescing_sectors(0.5).build().is_err());
        assert!(simple().coalescing_sectors(33.0).build().is_err());
        assert!(simple().l1_locality(1.5).build().is_err());
        assert!(simple().l2_locality(-0.1).build().is_err());
        assert!(simple().divergence_efficiency(0.0).build().is_err());
    }

    #[test]
    fn rejects_instructionless_kernel() {
        let err = KernelDescriptor::builder("empty")
            .int_per_thread(0)
            .branches_per_thread(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, GpuError::InvalidKernel { field: "instructions", .. }));
    }

    #[test]
    fn phases_normalised() {
        let k = simple()
            .phases(vec![
                KernelPhase {
                    fraction: 2.0,
                    mem_scale: 1.0,
                    compute_scale: 1.0,
                },
                KernelPhase {
                    fraction: 2.0,
                    mem_scale: 3.0,
                    compute_scale: 0.5,
                },
            ])
            .build()
            .unwrap();
        assert_eq!(k.phases().len(), 2);
        assert!((k.phases()[0].fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_phases_rejected() {
        assert!(simple().phases(vec![]).build().is_err());
    }

    #[test]
    fn kernel_id_round_trip() {
        let id = KernelId::new(1439);
        assert_eq!(id.index(), 1439);
        assert_eq!(id.to_string(), "1439");
        assert_eq!(KernelId::from(7u64), KernelId::new(7));
    }

    #[test]
    fn builder_is_cloneable_template() {
        let template = simple();
        let a = template.clone().name("a").build().unwrap();
        let b = template.grid_blocks(8).name("b").build().unwrap();
        assert_eq!(a.total_blocks(), 4);
        assert_eq!(b.total_blocks(), 8);
    }
}
