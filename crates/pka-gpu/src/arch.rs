use serde::{Deserialize, Serialize};

use crate::GpuError;

/// The three Nvidia GPU generations the paper validates against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuGeneration {
    /// Volta (V100) — the generation on which Principal Kernel Selection is
    /// performed; Turing and Ampere reuse its selected kernels.
    Volta,
    /// Turing (RTX 2060).
    Turing,
    /// Ampere (RTX 3070).
    Ampere,
}

impl GpuGeneration {
    /// Instruction-count scale relative to Volta.
    ///
    /// Different generations use different machine ISAs, so "the number of
    /// instructions and makeup of specific instructions can vary slightly
    /// across generations" (Section 3.1). We model that as a small global
    /// scale factor applied to per-kernel instruction counts.
    pub fn isa_scale(self) -> f64 {
        match self {
            GpuGeneration::Volta => 1.0,
            GpuGeneration::Turing => 1.03,
            GpuGeneration::Ampere => 0.97,
        }
    }
}

impl std::fmt::Display for GpuGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GpuGeneration::Volta => "Volta",
            GpuGeneration::Turing => "Turing",
            GpuGeneration::Ampere => "Ampere",
        };
        f.write_str(s)
    }
}

/// An architecture description shared by the silicon model and the
/// cycle-level simulator.
///
/// Build one with a preset ([`GpuConfig::v100`], [`GpuConfig::rtx2060`],
/// [`GpuConfig::rtx3070`], [`GpuConfig::v100_half_sms`]) or via
/// [`GpuConfig::builder`].
///
/// # Examples
///
/// ```
/// use pka_gpu::GpuConfig;
///
/// let v100 = GpuConfig::v100();
/// assert_eq!(v100.num_sms(), 80);
///
/// let custom = GpuConfig::builder("tiny")
///     .num_sms(4)
///     .core_clock_mhz(1000.0)
///     .build()?;
/// assert_eq!(custom.num_sms(), 4);
/// # Ok::<(), pka_gpu::GpuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    name: String,
    generation: GpuGeneration,
    num_sms: u32,
    warp_size: u32,
    max_warps_per_sm: u32,
    max_blocks_per_sm: u32,
    max_threads_per_sm: u32,
    registers_per_sm: u32,
    shared_mem_per_sm: u32,
    core_clock_mhz: f64,
    /// Warp-instruction issue slots per SM per cycle.
    issue_width: u32,
    /// FP32 lanes per SM (CUDA cores).
    fp32_lanes_per_sm: u32,
    /// Load/store units per SM (warp memory instructions issued per cycle).
    ldst_units_per_sm: u32,
    /// Special-function units per SM.
    sfu_units_per_sm: u32,
    /// Tensor-core warp-MMA throughput per SM per cycle (ops).
    tensor_units_per_sm: u32,
    l1_bytes: u64,
    l2_bytes: u64,
    dram_bandwidth_gbps: f64,
    dram_channels: u32,
    /// Uncontended DRAM access latency in core cycles.
    dram_latency_cycles: u32,
    /// L2 hit latency in core cycles.
    l2_latency_cycles: u32,
    /// L1 hit latency in core cycles.
    l1_latency_cycles: u32,
}

impl GpuConfig {
    /// Starts building a config from conservative defaults (a V100-like
    /// part).
    pub fn builder(name: impl Into<String>) -> GpuConfigBuilder {
        GpuConfigBuilder {
            config: GpuConfig {
                name: name.into(),
                ..GpuConfig::v100()
            },
        }
    }

    /// Nvidia Volta V100 (SXM2 16GB-class): 80 SMs @ 1455 MHz, 6 MiB L2,
    /// 900 GB/s HBM2.
    pub fn v100() -> Self {
        GpuConfig {
            name: "V100".into(),
            generation: GpuGeneration::Volta,
            num_sms: 80,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            registers_per_sm: 65_536,
            shared_mem_per_sm: 96 * 1024,
            core_clock_mhz: 1455.0,
            issue_width: 4,
            fp32_lanes_per_sm: 64,
            ldst_units_per_sm: 4,
            sfu_units_per_sm: 4,
            tensor_units_per_sm: 8,
            l1_bytes: 128 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            dram_bandwidth_gbps: 900.0,
            dram_channels: 32,
            dram_latency_cycles: 440,
            l2_latency_cycles: 210,
            l1_latency_cycles: 28,
        }
    }

    /// Nvidia Turing RTX 2060: 30 SMs @ 1680 MHz, 3 MiB L2, 336 GB/s GDDR6.
    pub fn rtx2060() -> Self {
        GpuConfig {
            name: "RTX2060".into(),
            generation: GpuGeneration::Turing,
            num_sms: 30,
            warp_size: 32,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 16,
            max_threads_per_sm: 1024,
            registers_per_sm: 65_536,
            shared_mem_per_sm: 64 * 1024,
            core_clock_mhz: 1680.0,
            issue_width: 4,
            fp32_lanes_per_sm: 64,
            ldst_units_per_sm: 4,
            sfu_units_per_sm: 4,
            tensor_units_per_sm: 8,
            l1_bytes: 96 * 1024,
            l2_bytes: 3 * 1024 * 1024,
            dram_bandwidth_gbps: 336.0,
            dram_channels: 12,
            dram_latency_cycles: 480,
            l2_latency_cycles: 230,
            l1_latency_cycles: 32,
        }
    }

    /// Nvidia Ampere RTX 3070: 46 SMs @ 1725 MHz, 4 MiB L2, 448 GB/s GDDR6.
    pub fn rtx3070() -> Self {
        GpuConfig {
            name: "RTX3070".into(),
            generation: GpuGeneration::Ampere,
            num_sms: 46,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 16,
            max_threads_per_sm: 1536,
            registers_per_sm: 65_536,
            shared_mem_per_sm: 100 * 1024,
            core_clock_mhz: 1725.0,
            issue_width: 4,
            fp32_lanes_per_sm: 128,
            ldst_units_per_sm: 4,
            sfu_units_per_sm: 4,
            tensor_units_per_sm: 8,
            l1_bytes: 128 * 1024,
            l2_bytes: 4 * 1024 * 1024,
            dram_bandwidth_gbps: 448.0,
            dram_channels: 16,
            dram_latency_cycles: 470,
            l2_latency_cycles: 225,
            l1_latency_cycles: 30,
        }
    }

    /// The Figure 10 case study: a V100 with half its SMs disabled via MPS.
    /// Memory system is unchanged; only the SM count halves.
    pub fn v100_half_sms() -> Self {
        let mut c = Self::v100();
        c.name = "V100-40SM".into();
        c.num_sms = 40;
        c
    }

    /// Human-readable configuration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// GPU generation.
    pub fn generation(&self) -> GpuGeneration {
        self.generation
    }

    /// Number of streaming multiprocessors.
    pub fn num_sms(&self) -> u32 {
        self.num_sms
    }

    /// Threads per warp (always 32 on Nvidia parts).
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_warps_per_sm
    }

    /// Maximum resident thread blocks per SM.
    pub fn max_blocks_per_sm(&self) -> u32 {
        self.max_blocks_per_sm
    }

    /// Maximum resident threads per SM.
    pub fn max_threads_per_sm(&self) -> u32 {
        self.max_threads_per_sm
    }

    /// Register file size per SM (32-bit registers).
    pub fn registers_per_sm(&self) -> u32 {
        self.registers_per_sm
    }

    /// Shared memory per SM in bytes.
    pub fn shared_mem_per_sm(&self) -> u32 {
        self.shared_mem_per_sm
    }

    /// Core clock in MHz.
    pub fn core_clock_mhz(&self) -> f64 {
        self.core_clock_mhz
    }

    /// Core clock in Hz.
    pub fn core_clock_hz(&self) -> f64 {
        self.core_clock_mhz * 1e6
    }

    /// Warp-instruction issue slots per SM per cycle.
    pub fn issue_width(&self) -> u32 {
        self.issue_width
    }

    /// FP32 lanes (CUDA cores) per SM.
    pub fn fp32_lanes_per_sm(&self) -> u32 {
        self.fp32_lanes_per_sm
    }

    /// Load/store unit issue slots per SM per cycle.
    pub fn ldst_units_per_sm(&self) -> u32 {
        self.ldst_units_per_sm
    }

    /// Special-function units per SM.
    pub fn sfu_units_per_sm(&self) -> u32 {
        self.sfu_units_per_sm
    }

    /// Tensor cores per SM.
    pub fn tensor_units_per_sm(&self) -> u32 {
        self.tensor_units_per_sm
    }

    /// L1 data cache size per SM, bytes.
    pub fn l1_bytes(&self) -> u64 {
        self.l1_bytes
    }

    /// L2 cache size (device-wide), bytes.
    pub fn l2_bytes(&self) -> u64 {
        self.l2_bytes
    }

    /// Peak DRAM bandwidth, GB/s.
    pub fn dram_bandwidth_gbps(&self) -> f64 {
        self.dram_bandwidth_gbps
    }

    /// Number of independent DRAM channels.
    pub fn dram_channels(&self) -> u32 {
        self.dram_channels
    }

    /// Uncontended DRAM round-trip latency in core cycles.
    pub fn dram_latency_cycles(&self) -> u32 {
        self.dram_latency_cycles
    }

    /// L2 hit latency in core cycles.
    pub fn l2_latency_cycles(&self) -> u32 {
        self.l2_latency_cycles
    }

    /// L1 hit latency in core cycles.
    pub fn l1_latency_cycles(&self) -> u32 {
        self.l1_latency_cycles
    }

    /// DRAM sectors (32 B) the device can deliver per core cycle in
    /// aggregate. This is the quantity both performance models divide by.
    pub fn dram_sectors_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps * 1e9 / 32.0 / self.core_clock_hz()
    }

    /// Peak warp-instructions per cycle for the whole device, assuming pure
    /// FP32 work.
    pub fn peak_warp_ipc(&self) -> f64 {
        let per_sm = self.fp32_lanes_per_sm as f64 / self.warp_size as f64;
        per_sm.min(self.issue_width as f64) * self.num_sms as f64
    }
}

/// Builder for [`GpuConfig`] (starts from V100 defaults).
#[derive(Debug, Clone)]
pub struct GpuConfigBuilder {
    config: GpuConfig,
}

impl GpuConfigBuilder {
    /// Sets the SM count.
    pub fn num_sms(mut self, n: u32) -> Self {
        self.config.num_sms = n;
        self
    }

    /// Sets the GPU generation (affects the ISA scale factor).
    pub fn generation(mut self, generation: GpuGeneration) -> Self {
        self.config.generation = generation;
        self
    }

    /// Sets the core clock in MHz.
    pub fn core_clock_mhz(mut self, mhz: f64) -> Self {
        self.config.core_clock_mhz = mhz;
        self
    }

    /// Sets the maximum resident warps per SM.
    pub fn max_warps_per_sm(mut self, n: u32) -> Self {
        self.config.max_warps_per_sm = n;
        self
    }

    /// Sets the maximum resident blocks per SM.
    pub fn max_blocks_per_sm(mut self, n: u32) -> Self {
        self.config.max_blocks_per_sm = n;
        self
    }

    /// Sets the register file size per SM.
    pub fn registers_per_sm(mut self, n: u32) -> Self {
        self.config.registers_per_sm = n;
        self
    }

    /// Sets the shared memory per SM in bytes.
    pub fn shared_mem_per_sm(mut self, bytes: u32) -> Self {
        self.config.shared_mem_per_sm = bytes;
        self
    }

    /// Sets the L2 size in bytes.
    pub fn l2_bytes(mut self, bytes: u64) -> Self {
        self.config.l2_bytes = bytes;
        self
    }

    /// Sets peak DRAM bandwidth in GB/s.
    pub fn dram_bandwidth_gbps(mut self, gbps: f64) -> Self {
        self.config.dram_bandwidth_gbps = gbps;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidConfig`] if any structural parameter is
    /// zero or the clock is not positive.
    pub fn build(self) -> Result<GpuConfig, GpuError> {
        let c = &self.config;
        let positive: [(&'static str, u64); 6] = [
            ("num_sms", c.num_sms as u64),
            ("warp_size", c.warp_size as u64),
            ("max_warps_per_sm", c.max_warps_per_sm as u64),
            ("max_blocks_per_sm", c.max_blocks_per_sm as u64),
            ("l2_bytes", c.l2_bytes),
            ("dram_channels", c.dram_channels as u64),
        ];
        for (field, v) in positive {
            if v == 0 {
                return Err(GpuError::InvalidConfig {
                    field,
                    message: "must be positive".into(),
                });
            }
        }
        if c.core_clock_mhz.is_nan() || c.core_clock_mhz <= 0.0 {
            return Err(GpuError::InvalidConfig {
                field: "core_clock_mhz",
                message: "must be positive".into(),
            });
        }
        if c.dram_bandwidth_gbps.is_nan() || c.dram_bandwidth_gbps <= 0.0 {
            return Err(GpuError::InvalidConfig {
                field: "dram_bandwidth_gbps",
                message: "must be positive".into(),
            });
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_distinct() {
        let v = GpuConfig::v100();
        let t = GpuConfig::rtx2060();
        let a = GpuConfig::rtx3070();
        assert_eq!(v.generation(), GpuGeneration::Volta);
        assert_eq!(t.generation(), GpuGeneration::Turing);
        assert_eq!(a.generation(), GpuGeneration::Ampere);
        assert!(v.dram_bandwidth_gbps() > a.dram_bandwidth_gbps());
        assert!(a.dram_bandwidth_gbps() > t.dram_bandwidth_gbps());
        assert!(v.num_sms() > a.num_sms());
    }

    #[test]
    fn half_sm_config_only_changes_sms() {
        let full = GpuConfig::v100();
        let half = GpuConfig::v100_half_sms();
        assert_eq!(half.num_sms(), full.num_sms() / 2);
        assert_eq!(half.l2_bytes(), full.l2_bytes());
        assert_eq!(half.dram_bandwidth_gbps(), full.dram_bandwidth_gbps());
    }

    #[test]
    fn builder_rejects_zero_sms() {
        let err = GpuConfig::builder("bad").num_sms(0).build().unwrap_err();
        assert!(matches!(err, GpuError::InvalidConfig { field: "num_sms", .. }));
    }

    #[test]
    fn builder_rejects_nonpositive_clock() {
        assert!(GpuConfig::builder("bad").core_clock_mhz(0.0).build().is_err());
        assert!(GpuConfig::builder("bad")
            .core_clock_mhz(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn isa_scale_ordering() {
        assert_eq!(GpuGeneration::Volta.isa_scale(), 1.0);
        assert!(GpuGeneration::Turing.isa_scale() > 1.0);
        assert!(GpuGeneration::Ampere.isa_scale() < 1.0);
    }

    #[test]
    fn derived_rates_are_sane() {
        let v = GpuConfig::v100();
        // 900 GB/s at ~1.455 GHz is about 19 sectors per cycle.
        let s = v.dram_sectors_per_cycle();
        assert!(s > 15.0 && s < 25.0, "{s}");
        // 64 FP32 lanes = 2 warp instructions per cycle per SM, 80 SMs.
        assert_eq!(v.peak_warp_ipc(), 160.0);
    }

    #[test]
    fn display_generation() {
        assert_eq!(GpuGeneration::Volta.to_string(), "Volta");
    }
}
