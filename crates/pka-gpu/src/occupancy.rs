use serde::{Deserialize, Serialize};

use crate::{GpuConfig, GpuError, KernelDescriptor};

/// Occupancy of a kernel on a specific GPU: how many thread blocks fit on
/// each SM at once, and therefore how large one *wave* is.
///
/// *Principal Kernel Projection* leans on the wave concept (Section 3.2):
/// IPC is only declared stable after at least one full wave of thread blocks
/// has retired, so that block-boundary ramp effects and realistic resource
/// contention are captured before projecting.
///
/// # Examples
///
/// ```
/// use pka_gpu::{GpuConfig, KernelDescriptor, Occupancy};
///
/// let k = KernelDescriptor::builder("k")
///     .grid_blocks(10_000)
///     .block_threads(256)
///     .fp32_per_thread(1)
///     .build()?;
/// let occ = Occupancy::compute(&k, &GpuConfig::v100())?;
/// assert!(occ.blocks_per_sm() >= 1);
/// assert_eq!(occ.wave_blocks(), occ.blocks_per_sm() as u64 * 80);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    blocks_per_sm: u32,
    wave_blocks: u64,
    waves: u64,
    resident_warps_per_sm: u32,
    max_warps_per_sm: u32,
}

impl Occupancy {
    /// Computes occupancy of `kernel` on `config`.
    ///
    /// The limiters are the classic four: threads per SM, warps per SM,
    /// blocks per SM, registers, and shared memory.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidKernel`] if a single block exceeds the
    /// SM's resources (the launch would fail on real hardware).
    pub fn compute(kernel: &KernelDescriptor, config: &GpuConfig) -> Result<Self, GpuError> {
        let tpb = kernel.threads_per_block();
        let wpb = kernel.warps_per_block();

        let by_threads = config.max_threads_per_sm() / tpb.max(1);
        let by_warps = config.max_warps_per_sm() / wpb.max(1);
        let by_blocks = config.max_blocks_per_sm();
        let regs_per_block = kernel.regs_per_thread() as u64 * tpb as u64;
        let by_regs = (config.registers_per_sm() as u64)
            .checked_div(regs_per_block)
            .map_or(u32::MAX, |v| v.min(u32::MAX as u64) as u32);
        let by_smem = if kernel.shared_mem_per_block() == 0 {
            u32::MAX
        } else {
            config.shared_mem_per_sm() / kernel.shared_mem_per_block()
        };

        let blocks_per_sm = by_threads
            .min(by_warps)
            .min(by_blocks)
            .min(by_regs)
            .min(by_smem);
        if blocks_per_sm == 0 {
            return Err(GpuError::InvalidKernel {
                field: "resources",
                message: format!(
                    "one block of `{}` ({} threads, {} regs/thread, {} B smem) \
                     exceeds a single SM on {}",
                    kernel.name(),
                    tpb,
                    kernel.regs_per_thread(),
                    kernel.shared_mem_per_block(),
                    config.name()
                ),
            });
        }

        let wave_blocks = blocks_per_sm as u64 * config.num_sms() as u64;
        let waves = kernel.total_blocks().div_ceil(wave_blocks);
        Ok(Occupancy {
            blocks_per_sm,
            wave_blocks,
            waves,
            resident_warps_per_sm: blocks_per_sm * wpb,
            max_warps_per_sm: config.max_warps_per_sm(),
        })
    }

    /// Concurrent thread blocks per SM.
    pub fn blocks_per_sm(&self) -> u32 {
        self.blocks_per_sm
    }

    /// Thread blocks in one full wave (`blocks_per_sm × num_sms`).
    pub fn wave_blocks(&self) -> u64 {
        self.wave_blocks
    }

    /// Number of waves needed to drain the grid (ceiling division).
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Warps resident per SM when fully occupied by this kernel.
    pub fn resident_warps_per_sm(&self) -> u32 {
        self.resident_warps_per_sm
    }

    /// Achieved occupancy as a fraction of the SM's warp slots.
    pub fn fraction(&self) -> f64 {
        self.resident_warps_per_sm as f64 / self.max_warps_per_sm as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> crate::KernelDescriptorBuilder {
        KernelDescriptor::builder("k")
            .grid_blocks(1000)
            .block_threads(256)
            .fp32_per_thread(1)
    }

    #[test]
    fn thread_limited() {
        // 256 threads/block on a 2048-thread SM -> 8 blocks, but V100 caps
        // warps at 64: 8 blocks x 8 warps = 64 warps. Fits exactly.
        let occ = Occupancy::compute(&base().build().unwrap(), &GpuConfig::v100()).unwrap();
        assert_eq!(occ.blocks_per_sm(), 8);
        assert_eq!(occ.fraction(), 1.0);
    }

    #[test]
    fn register_limited() {
        // 256 regs/thread x 256 threads = 65536 regs = exactly one block.
        let k = base().regs_per_thread(256).build().unwrap();
        let occ = Occupancy::compute(&k, &GpuConfig::v100()).unwrap();
        assert_eq!(occ.blocks_per_sm(), 1);
    }

    #[test]
    fn shared_memory_limited() {
        let k = base().shared_mem_per_block(48 * 1024).build().unwrap();
        let occ = Occupancy::compute(&k, &GpuConfig::v100()).unwrap();
        assert_eq!(occ.blocks_per_sm(), 2);
    }

    #[test]
    fn oversized_block_rejected() {
        let k = base()
            .block_threads(1024)
            .regs_per_thread(128)
            .build()
            .unwrap();
        // 1024 x 128 = 131072 regs > 65536: does not fit.
        assert!(matches!(
            Occupancy::compute(&k, &GpuConfig::v100()),
            Err(GpuError::InvalidKernel { .. })
        ));
    }

    #[test]
    fn wave_accounting() {
        let k = base().grid_blocks(1000).build().unwrap();
        let occ = Occupancy::compute(&k, &GpuConfig::v100()).unwrap();
        // 8 blocks/SM x 80 SMs = 640-block waves; 1000 blocks = 2 waves.
        assert_eq!(occ.wave_blocks(), 640);
        assert_eq!(occ.waves(), 2);
    }

    #[test]
    fn sub_wave_grid_is_one_wave() {
        let k = base().grid_blocks(3).build().unwrap();
        let occ = Occupancy::compute(&k, &GpuConfig::v100()).unwrap();
        assert_eq!(occ.waves(), 1);
    }

    #[test]
    fn half_sm_config_halves_wave() {
        let k = base().build().unwrap();
        let full = Occupancy::compute(&k, &GpuConfig::v100()).unwrap();
        let half = Occupancy::compute(&k, &GpuConfig::v100_half_sms()).unwrap();
        assert_eq!(half.wave_blocks() * 2, full.wave_blocks());
    }
}
