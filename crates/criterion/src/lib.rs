//! Vendored minimal `criterion` substitute for offline builds.
//!
//! Keeps the workspace's `[[bench]]` targets compiling and runnable without
//! the real crate: each benchmark runs a small fixed number of timed
//! iterations and prints mean wall-clock time per iteration. No statistics,
//! plots, or baselines — this is a smoke harness, not a measurement tool.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (accepted, reported as-is).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter rendering.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter rendering alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iterations: u32,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size as u32,
            total: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.0, b);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size as u32,
            total: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.0, b);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, b: Bencher) {
        let per_iter = b.total.as_secs_f64() / b.iterations.max(1) as f64;
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "  {}/{id}: {:.3} ms/iter over {} iters{throughput}",
            self.name,
            per_iter * 1e3,
            b.iterations
        );
    }
}

/// A benchmark name: either a plain string or a [`BenchmarkId`].
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

/// Declares a benchmark group entry point, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
