//! Vendored minimal `criterion` substitute for offline builds — upgraded
//! from a smoke harness into a measurement tool.
//!
//! Keeps the workspace's `[[bench]]` targets compiling and runnable without
//! the real crate, and reports statistics a perf trajectory can be built
//! on: each benchmark runs a warmup phase followed by a fixed number of
//! timed samples, and reports the median, mean, sample standard deviation
//! and minimum across samples. Results are also emitted as machine-readable
//! JSON (merged into an existing file by benchmark name, so successive
//! `cargo bench` invocations — and the separate bench binaries of one
//! invocation — accumulate into a single document).
//!
//! Environment knobs:
//!
//! * `PKA_BENCH_JSON` — path of the JSON document (default
//!   `BENCH_pka.json` in the working directory; set to the empty string to
//!   disable emission).
//! * `PKA_BENCH_SAMPLES` — overrides every benchmark's sample count; CI
//!   smoke runs set a small value so the benches finish in seconds.
//! * `PKA_BENCH_WARMUP` — overrides the warmup iteration count.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

use serde_json::{json, Value};

pub use std::hint::black_box;

/// Default timed samples per benchmark (overridable per group and via
/// `PKA_BENCH_SAMPLES`).
const DEFAULT_SAMPLES: usize = 10;

/// Default warmup iterations per benchmark (overridable per group and via
/// `PKA_BENCH_WARMUP`).
const DEFAULT_WARMUP: usize = 3;

/// Throughput annotation for a benchmark group (reported against the
/// median sample).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter rendering.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter rendering alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    warmup: usize,
    samples: usize,
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `routine` through the warmup phase, then times each of the
    /// configured samples individually.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup {
            black_box(routine());
        }
        self.sample_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.sample_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

/// Summary statistics over one benchmark's timed samples.
#[derive(Debug, Clone, Copy)]
struct Stats {
    iterations: usize,
    mean_ns: f64,
    median_ns: f64,
    stddev_ns: f64,
    min_ns: f64,
}

impl Stats {
    fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                iterations: 0,
                mean_ns: 0.0,
                median_ns: 0.0,
                stddev_ns: 0.0,
                min_ns: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median_ns = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean_ns = samples.iter().sum::<f64>() / n as f64;
        let stddev_ns = if n > 1 {
            let ss: f64 = samples.iter().map(|s| (s - mean_ns) * (s - mean_ns)).sum();
            (ss / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Self {
            iterations: n,
            mean_ns,
            median_ns,
            stddev_ns,
            min_ns: sorted[0],
        }
    }
}

/// Top-level harness state: collects every benchmark's record and flushes
/// the merged JSON document when dropped (i.e. at the end of each
/// `criterion_group!` function).
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<Value>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: DEFAULT_SAMPLES,
            warmup: DEFAULT_WARMUP,
            throughput: None,
        }
    }

    fn record(&mut self, group: &str, id: &str, stats: Stats) {
        self.records.push(json!({
            "name": format!("{group}/{id}"),
            "group": group,
            "iterations": stats.iterations as u64,
            "mean_ns": stats.mean_ns,
            "median_ns": stats.median_ns,
            "stddev_ns": stats.stddev_ns,
            "min_ns": stats.min_ns,
        }));
    }

    /// Merges this run's records into the JSON document, replacing any
    /// existing entry with the same `name` and keeping the rest.
    fn flush_json(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let path = match std::env::var("PKA_BENCH_JSON") {
            Ok(p) if p.is_empty() => return,
            Ok(p) => p,
            Err(_) => "BENCH_pka.json".to_string(),
        };
        let fresh: Vec<&str> = self
            .records
            .iter()
            .filter_map(|r| r.get("name").and_then(Value::as_str))
            .collect();
        let mut merged: Vec<Value> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str::<Value>(&s).ok())
            .and_then(|v| v.as_array().cloned())
            .unwrap_or_default()
            .into_iter()
            .filter(|entry| {
                entry
                    .get("name")
                    .and_then(Value::as_str)
                    .is_none_or(|name| !fresh.contains(&name))
            })
            .collect();
        merged.append(&mut self.records);
        match serde_json::to_string_pretty(&Value::Array(merged)) {
            Ok(mut doc) => {
                doc.push('\n');
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("warning: could not serialise bench results: {e}"),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.flush_json();
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warmup: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark
    /// (`PKA_BENCH_SAMPLES` overrides this for reduced-iteration runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warmup iteration count per benchmark
    /// (`PKA_BENCH_WARMUP` overrides it).
    pub fn warmup_iterations(&mut self, n: usize) -> &mut Self {
        self.warmup = n;
        self
    }

    /// Declares per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchId>, mut f: F) {
        let id = id.into();
        let mut b = self.bencher();
        f(&mut b);
        self.report(&id.0, &b);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id.0, &b);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        let samples = env_override("PKA_BENCH_SAMPLES")
            .unwrap_or(self.sample_size)
            .max(1);
        let warmup = env_override("PKA_BENCH_WARMUP").unwrap_or(self.warmup);
        Bencher {
            warmup,
            samples,
            sample_ns: Vec::with_capacity(samples),
        }
    }

    fn report(&mut self, id: &str, b: &Bencher) {
        let stats = Stats::from_samples(&b.sample_ns);
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if stats.median_ns > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / (stats.median_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) if stats.median_ns > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / (stats.median_ns * 1e-9))
            }
            _ => String::new(),
        };
        println!(
            "  {}/{id}: median {:.3} ms  (±{:.3} ms, min {:.3} ms, N={}){throughput}",
            self.name,
            stats.median_ns * 1e-6,
            stats.stddev_ns * 1e-6,
            stats.min_ns * 1e-6,
            stats.iterations,
        );
        self.criterion.record(&self.name, id, stats);
    }
}

/// A benchmark name: either a plain string or a [`BenchmarkId`].
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

fn env_override(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Declares a benchmark group entry point, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_median_and_stddev() {
        let s = Stats::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(s.iterations, 3);
        assert_eq!(s.median_ns, 2.0);
        assert_eq!(s.mean_ns, 2.0);
        assert_eq!(s.min_ns, 1.0);
        assert!((s.stddev_ns - 1.0).abs() < 1e-12);

        let even = Stats::from_samples(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(even.median_ns, 2.5);

        let single = Stats::from_samples(&[5.0]);
        assert_eq!(single.stddev_ns, 0.0);
        assert_eq!(single.median_ns, 5.0);
    }

    #[test]
    fn records_render_required_fields() {
        let mut c = Criterion::default();
        c.record(
            "g",
            "b",
            Stats {
                iterations: 7,
                mean_ns: 2.0,
                median_ns: 1.5,
                stddev_ns: 0.5,
                min_ns: 1.0,
            },
        );
        let r = &c.records[0];
        assert_eq!(r.get("name").and_then(Value::as_str), Some("g/b"));
        assert_eq!(r.get("iterations").and_then(Value::as_u64), Some(7));
        assert_eq!(r.get("median_ns").and_then(Value::as_f64), Some(1.5));
        assert_eq!(r.get("stddev_ns").and_then(Value::as_f64), Some(0.5));
        // Drain so the Drop impl does not try to write a file from tests.
        c.records.clear();
    }
}
