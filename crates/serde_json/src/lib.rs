//! Vendored minimal `serde_json` substitute for offline builds.
//!
//! Implements the subset of the real crate's API that this workspace uses:
//! [`Value`]/[`Map`]/[`Number`] (shared with the vendored `serde`), the
//! [`json!`] macro, [`to_value`]/[`from_value`], [`from_str`], and
//! [`to_string`]/[`to_string_pretty`]. Objects keep sorted key order, so
//! output is deterministic regardless of construction order or thread
//! schedule.

#![forbid(unsafe_code)]

mod parse;

pub use serde::value::{Map, Number, Value};

use std::fmt;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Error type for JSON parsing and conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::ValueError> for Error {
    fn from(e: serde::value::ValueError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this vendored implementation; the `Result` mirrors the
/// real serde_json signature.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Rebuilds a typed structure from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value).map_err(Error::from)
}

/// Parses a JSON document into a typed structure (or a raw [`Value`]).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse::parse(input)?;
    T::from_json_value(&value).map_err(Error::from)
}

/// Serializes to a compact JSON string.
///
/// # Errors
///
/// Never fails in this vendored implementation.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Serializes to a human-readable JSON string (two-space indent).
///
/// # Errors
///
/// Never fails in this vendored implementation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + STEP);
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + STEP);
                let _ = write!(out, "{}: ", Value::String(k.clone()));
                write_pretty(v, indent + STEP, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        // Empty containers and scalars use the compact form.
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

#[doc(hidden)]
pub fn __to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Builds a [`Value`] from a JSON-like literal, interpolating Rust
/// expressions as in the real `serde_json::json!`.
///
/// Supported: object literals with string-literal keys (arbitrarily
/// nested), array literals of expressions, `null`/`true`/`false`, and any
/// Rust expression whose type implements `Serialize`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- entry points -----------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elems:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__to_value(&($elems)) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($body)*) ($($body)*));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::__to_value(&($other)) };

    // ---- object munching --------------------------------------------------
    // Done.
    (@object $object:ident () () ()) => {};

    // Insert the current [key] (value) entry, then continue with the rest.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
    };

    // Current value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::Value::Null) $($rest)*);
    };
    // Current value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::Value::Bool(true)) $($rest)*);
    };
    // Current value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::Value::Bool(false)) $($rest)*);
    };
    // Current value is a nested object literal.
    (@object $object:ident ($($key:tt)+) (: { $($map:tt)* } $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!({ $($map)* })) $($rest)*);
    };
    // Current value is a nested array literal.
    (@object $object:ident ($($key:tt)+) (: [ $($arr:tt)* ] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!([ $($arr)* ])) $($rest)*);
    };
    // Current value is an expression followed by more entries.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::__to_value(&($value))) , $($rest)*);
    };
    // Current value is the final expression.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::__to_value(&($value))));
    };

    // Take one token as the key (string literal), then parse the value.
    (@object $object:ident () ($key:tt : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let rows = vec![1u64, 2, 3];
        let v = json!({
            "name": "alpha",
            "count": 3u64,
            "nested": { "pi": 3.25, "flag": true, "nothing": null },
            "rows": rows,
            "maybe": Option::<u64>::None,
        });
        assert_eq!(v["name"].as_str(), Some("alpha"));
        assert_eq!(v["nested"]["pi"].as_f64(), Some(3.25));
        assert!(v["maybe"].is_null());
        assert_eq!(v["rows"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({
            "a": -42i64,
            "b": [1.5, 2.5e-3],
            "s": "esc\"ape\n",
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_golden_style_numbers() {
        let v: Value = from_str("{\"x\": 4.440892098500626e-16, \"y\": 12345678901234}").unwrap();
        assert!(v["x"].as_f64().unwrap() > 0.0);
        assert_eq!(v["y"].as_u64(), Some(12345678901234));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let v = json!({ "inf": f64::INFINITY });
        assert_eq!(to_string(&v).unwrap(), "{\"inf\":null}");
    }
}
