//! A small recursive-descent JSON parser for the vendored `serde_json`.

use serde::value::{Map, Number, Value};

use crate::Error;

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xd800..0xdc00).contains(&first) {
                            // Surrogate pair: expect a trailing \uXXXX.
                            if !(self.eat_literal("\\u")) {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let second = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&second) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from raw bytes.
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    if len == 1 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.err("truncated UTF-8"))?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number slice is ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::Float(n)))
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first_byte: u8) -> Option<usize> {
    match first_byte {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}
