//! The 69 DeepBench configurations of Table 4.
//!
//! Sub-suites and input counts follow the table exactly:
//! convolution inference/training × CUDA/tensor-core (5 inputs each),
//! GEMM inference/training × CUDA/tensor-core (5 each), and RNN
//! inference/training × CUDA/tensor-core (9/5/10/5). These are "highly
//! tuned machine-learning kernels evaluated in isolation": few targeted
//! launches, so PKS speedups stay modest (1–7×), and training variants
//! launch extra backward-pass kernels.

use pka_gpu::KernelDescriptorBuilder;

use crate::common::*;
use crate::{KernelTemplate, Suite, Workload};

fn maybe_tensor(b: KernelDescriptorBuilder, tensor: bool, mmas: u32) -> KernelDescriptorBuilder {
    if tensor {
        b.tensor_per_thread(mmas).fp32_per_thread(mmas / 4 + 8)
    } else {
        b
    }
}

fn conv_kernels(input: usize, tensor: bool, training: bool) -> Vec<KernelTemplate> {
    let scale = [1.0, 1.6, 0.7, 2.2, 1.2][input % 5];
    let blocks = (640.0 * scale) as u32;
    let fp = (600.0 * scale) as u32;
    let mut ks = vec![
        tmpl(streaming("im2col", blocks, 256, 14, 128)),
        tmpl(maybe_tensor(
            compute_tile("implicit_gemm_conv", blocks, 256, fp),
            tensor,
            fp / 12,
        )),
        tmpl(elementwise("bias_act", blocks, 256)),
    ];
    if training {
        ks.push(tmpl(maybe_tensor(
            compute_tile("conv_dgrad", blocks, 256, fp),
            tensor,
            fp / 12,
        )));
        ks.push(tmpl(maybe_tensor(
            compute_tile("conv_wgrad", blocks, 256, (fp as f64 * 1.2) as u32),
            tensor,
            fp / 10,
        )));
        ks.push(tmpl(reduction("wgrad_reduce", blocks / 4 + 1, 256)));
    }
    ks
}

fn gemm_kernels(input: usize, tensor: bool, training: bool) -> Vec<KernelTemplate> {
    let scale = [1.0, 2.0, 0.5, 1.5, 3.0][input % 5];
    let blocks = (512.0 * scale) as u32;
    let fp = (900.0_f64 * scale).min(3000.0) as u32;
    let mut ks = vec![tmpl(maybe_tensor(
        compute_tile("deepbench_gemm", blocks, 256, fp),
        tensor,
        fp / 12,
    ))];
    // The perf harness repeats the timed GEMM a few times.
    ks.push(ks[0].clone());
    ks.push(ks[0].clone());
    ks.push(ks[0].clone());
    if training {
        ks.push(tmpl(maybe_tensor(
            compute_tile("gemm_grad", blocks, 256, fp),
            tensor,
            fp / 12,
        )));
        ks.push(tmpl(reduction("grad_reduce", blocks / 8 + 1, 256)));
    }
    ks
}

fn rnn_workload(name: String, input: usize, tensor: bool, training: bool) -> Workload {
    let scale = [0.6, 1.0, 1.4, 0.8, 1.8, 1.1, 0.9, 2.0, 1.3, 0.7][input % 10];
    let blocks = (96.0 * scale) as u32;
    let fp = (400.0 * scale) as u32;
    let timesteps = if training { 25 } else { 50 };
    let mut per_step = vec![
        tmpl(maybe_tensor(
            compute_tile("rnn_gemm", blocks, 256, fp),
            tensor,
            fp / 12,
        )),
        tmpl(elementwise("rnn_pointwise", blocks, 256)),
    ];
    if training {
        per_step.push(tmpl(maybe_tensor(
            compute_tile("rnn_gemm_bprop", blocks, 256, fp),
            tensor,
            fp / 12,
        )));
        per_step.push(tmpl(elementwise("rnn_pointwise_bprop", blocks, 256)));
    }
    Workload::builder(name, Suite::Deepbench)
        .cycle(per_step, timesteps)
        .build()
}

/// Builds the DeepBench suite (69 workloads).
pub fn workloads() -> Vec<Workload> {
    let mut out = Vec::with_capacity(69);
    let tc = |t: bool| if t { "_tc" } else { "" };

    // Convolution: inference and training, CUDA and tensor cores, 5 inputs.
    for tensor in [false, true] {
        for training in [false, true] {
            for input in 0..5 {
                let mode = if training { "train" } else { "infer" };
                let name = format!("deepbench_conv_{mode}{}_{input}", tc(tensor));
                let mut b = Workload::builder(name, Suite::Deepbench);
                for k in conv_kernels(input, tensor, training) {
                    b = b.run(k, 1);
                }
                out.push(b.build());
            }
        }
    }
    // GEMM: same grid of variants.
    for tensor in [false, true] {
        for training in [false, true] {
            for input in 0..5 {
                let mode = if training { "train" } else { "infer" };
                let name = format!("deepbench_gemm_{mode}{}_{input}", tc(tensor));
                let mut b = Workload::builder(name, Suite::Deepbench);
                for k in gemm_kernels(input, tensor, training) {
                    b = b.run(k, 1);
                }
                out.push(b.build());
            }
        }
    }
    // RNN: 9 CUDA inference, 5 CUDA training, 10 tensor inference, 5 tensor
    // training inputs (Table 4).
    for input in 0..9 {
        out.push(rnn_workload(
            format!("deepbench_rnn_infer_{input}"),
            input,
            false,
            false,
        ));
    }
    for input in 0..5 {
        out.push(rnn_workload(
            format!("deepbench_rnn_train_{input}"),
            input,
            false,
            true,
        ));
    }
    for input in 0..10 {
        out.push(rnn_workload(
            format!("deepbench_rnn_infer_tc_{input}"),
            input,
            true,
            false,
        ));
    }
    for input in 0..5 {
        out.push(rnn_workload(
            format!("deepbench_rnn_train_tc_{input}"),
            input,
            true,
            true,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_gpu::InstClass;

    #[test]
    fn sixty_nine_workloads() {
        assert_eq!(workloads().len(), 69);
    }

    #[test]
    fn training_variants_launch_backward_kernels() {
        let all = workloads();
        let infer = all
            .iter()
            .find(|w| w.name() == "deepbench_conv_infer_0")
            .unwrap();
        let train = all
            .iter()
            .find(|w| w.name() == "deepbench_conv_train_0")
            .unwrap();
        assert!(train.kernel_count() > infer.kernel_count());
    }

    #[test]
    fn tensor_variants_use_tensor_cores() {
        let all = workloads();
        let tc = all
            .iter()
            .find(|w| w.name() == "deepbench_gemm_infer_tc_0")
            .unwrap();
        let has_tensor = tc
            .iter()
            .any(|(_, k)| k.count(InstClass::Tensor) > 0);
        assert!(has_tensor);
    }

    #[test]
    fn rnn_counts_match_table_4() {
        let all = workloads();
        let count = |p: &str| all.iter().filter(|w| w.name().starts_with(p)).count();
        assert_eq!(count("deepbench_rnn_infer_tc"), 10);
        assert_eq!(count("deepbench_rnn_infer"), 19); // 9 CUDA + 10 TC
        assert_eq!(count("deepbench_rnn_train_tc"), 5);
        assert_eq!(count("deepbench_rnn_train"), 10); // 5 + 5
    }
}
