//! The 7 MLPerf v1.0 applications of Table 4 — the *scaled* workloads that
//! motivate the paper: seconds-to-minutes on silicon, centuries in
//! simulation.
//!
//! Kernel-stream scale follows the paper: SSD training launches 5.3 million
//! kernels; BERT, GNMT and SSD need two-level profiling; ResNet's stream
//! clusters into the nine groups of Figure 4, built from the kernel names
//! that figure lists (`sgemm`, `winograd_big`, `tiny_relu_*`, `MaxPool2D`,
//! `RowwiseReduce`, …), with some names split across groups by grid size
//! exactly as the paper observes.

use crate::common::*;
use crate::{KernelTemplate, Suite, Workload};

/// One iteration (batch) of ResNet-50: the Figure 4 kernel population.
/// `b` is the batch-width factor (batch / 16): larger batches mean wider
/// grids per launch.
fn resnet_layer_cycle(b: u32) -> Vec<KernelTemplate> {
    vec![
        // Group ~0-1: dense math (convolutions and FC).
        tmpl(tensor_tile("sgemm", 180 * b, 256, 700)),
        tmpl(tensor_tile("winograd_big", 120 * b, 256, 900)),
        tmpl(tensor_tile("implicit_con", 150 * b, 256, 650)),
        tmpl(tensor_tile("genWinograd", 90 * b, 256, 520)),
        tmpl(compute_tile("gemv2N", 16 * b, 128, 400)),
        // Group ~2-4: element-wise ReLU family; the same code launched at
        // several grid sizes lands in different groups.
        tmpl(elementwise("tiny_relu_1", 8 * b, 128)),
        tmpl(elementwise("tiny_relu_2", 8 * b, 128)),
        tmpl(elementwise("tiny_relu_interior", 16 * b, 128)).with_grid_cycle(vec![
            16 * b,
            64 * b,
            16 * b,
        ]),
        tmpl(elementwise("med_relu_small", 48 * b, 256)),
        tmpl(elementwise("big_relu_interior", 190 * b, 256)),
        tmpl(elementwise("Relu", 96 * b, 256)),
        // Group ~5: normalisation / reductions.
        tmpl(reduction("bn_fw_inf", 64 * b, 256)),
        tmpl(reduction("RowwiseReduce", 32 * b, 256)),
        tmpl(reduction("splitKreduce", 24 * b, 256)),
        tmpl(reduction("softmax_fw", 8 * b, 256)),
        // Group ~6: pooling and argmax.
        tmpl(streaming("MaxPool2D", 48 * b, 256, 40, 256)),
        tmpl(reduction("ComputeArg", 8 * b, 256)),
        // Group ~7-8: tensor reshuffles and binary glue.
        tmpl(streaming("op_tensor4", 32 * b, 256, 30, 256)),
        tmpl(streaming("op_tensor3", 24 * b, 256, 24, 128)),
        tmpl(elementwise("SimpleBinary", 16 * b, 256)),
        tmpl(elementwise("RowwiseBinary", 16 * b, 256)),
        tmpl(streaming("computeOffsets", 8 * b, 128, 12, 32)),
    ]
}

fn resnet(batch: u32, iterations: u64) -> Workload {
    Workload::builder(format!("mlperf_resnet50_{batch}b_infer"), Suite::MlPerf)
        .cycle(resnet_layer_cycle(batch / 16), iterations)
        .build()
}

/// Builds the MLPerf suite.
pub fn workloads() -> Vec<Workload> {
    vec![
        // BERT offline inference: ~10 min of silicon, ~750k kernels across
        // the transformer-layer cycle.
        Workload::builder("mlperf_bert_offline_infer", Suite::MlPerf)
            .cycle(
                vec![
                    tmpl(tensor_tile("bert_qkv_gemm", 1150, 256, 850)),
                    tmpl(reduction("bert_softmax", 380, 256)),
                    tmpl(tensor_tile("bert_attn_gemm", 770, 256, 700)),
                    tmpl(elementwise("bert_gelu", 580, 256)),
                    tmpl(tensor_tile("bert_ffn_gemm1", 1540, 256, 950)),
                    tmpl(tensor_tile("bert_ffn_gemm2", 1540, 256, 900)),
                    tmpl(reduction("bert_layernorm", 380, 256)),
                    tmpl(elementwise("bert_residual", 380, 256)),
                ],
                94_000,
            )
            .build(),
        // SSD training: the largest stream in the study, 5.3M kernels.
        Workload::builder("mlperf_ssd_train", Suite::MlPerf)
            .cycle(
                vec![
                    tmpl(tensor_tile("ssd_conv_fprop", 680, 256, 600)),
                    tmpl(elementwise("ssd_relu", 340, 256)),
                    tmpl(reduction("ssd_bn_fwd", 170, 256)),
                    tmpl(tensor_tile("ssd_conv_dgrad", 680, 256, 640)),
                    tmpl(tensor_tile("ssd_conv_wgrad", 680, 256, 680)),
                    tmpl(reduction("ssd_bn_bwd", 170, 256)),
                    tmpl(elementwise("ssd_relu_bwd", 340, 256)),
                    tmpl(streaming("ssd_boxes", 90, 256, 28, 64)),
                    tmpl(reduction("ssd_loss", 60, 256)),
                    tmpl(elementwise("ssd_sgd_step", 230, 256)),
                ],
                530_000,
            )
            .build(),
        // ResNet-50 inference at the three studied batch sizes. Larger
        // batches mean fewer, fatter launches over the same image count.
        resnet(64, 2800),
        resnet(128, 1400),
        resnet(256, 700),
        // GNMT training: sequence-length-heavy RNN translation.
        Workload::builder("mlperf_gnmt_train", Suite::MlPerf)
            .cycle(
                vec![
                    tmpl(tensor_tile("gnmt_lstm_gemm", 1150, 256, 700))
                        .with_grid_cycle(vec![1150, 920, 1380, 690]),
                    tmpl(elementwise("gnmt_lstm_pointwise", 460, 256)),
                    tmpl(reduction("gnmt_attention", 340, 256)),
                    tmpl(tensor_tile("gnmt_lstm_gemm_bprop", 1150, 256, 740)),
                    tmpl(elementwise("gnmt_pointwise_bprop", 460, 256)),
                    tmpl(elementwise("gnmt_adam_step", 690, 256)),
                ],
                160_000,
            )
            .build(),
        // 3D-UNet inference: few but enormous volumetric kernels — the one
        // MLPerf case where detailed profiling remains tractable.
        Workload::builder("mlperf_3dunet_infer", Suite::MlPerf)
            .cycle(
                vec![
                    tmpl(tensor_tile("unet3d_conv", 5400, 256, 1400)),
                    tmpl(elementwise("unet3d_inorm", 2700, 256)),
                    tmpl(elementwise("unet3d_lrelu", 2700, 256)),
                    tmpl(streaming("unet3d_updown", 1800, 256, 40, 512)),
                ],
                340,
            )
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_applications() {
        assert_eq!(workloads().len(), 7);
    }

    #[test]
    fn ssd_launches_5_3_million_kernels() {
        let ssd = workloads()
            .into_iter()
            .find(|w| w.name() == "mlperf_ssd_train")
            .unwrap();
        assert_eq!(ssd.kernel_count(), 5_300_000);
    }

    #[test]
    fn resnet_cycle_uses_figure_4_names() {
        let r = workloads()
            .into_iter()
            .find(|w| w.name() == "mlperf_resnet50_64b_infer")
            .unwrap();
        let names: Vec<String> = r
            .iter()
            .take(22)
            .map(|(_, k)| k.name().to_string())
            .collect();
        for expected in ["sgemm", "winograd_big", "tiny_relu_1", "MaxPool2D", "RowwiseReduce"] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing {expected} in {names:?}"
            );
        }
    }

    #[test]
    fn batch_size_trades_iterations_for_width() {
        let all = workloads();
        let b64 = all
            .iter()
            .find(|w| w.name() == "mlperf_resnet50_64b_infer")
            .unwrap();
        let b256 = all
            .iter()
            .find(|w| w.name() == "mlperf_resnet50_256b_infer")
            .unwrap();
        assert!(b64.kernel_count() > b256.kernel_count());
        let g64 = b64.kernel(0u64.into()).total_blocks();
        let g256 = b256.kernel(0u64.into()).total_blocks();
        assert!(g256 > g64);
    }

    #[test]
    fn random_access_into_millions_is_cheap() {
        let ssd = workloads()
            .into_iter()
            .find(|w| w.name() == "mlperf_ssd_train")
            .unwrap();
        // Touch a scattering of launches across the whole stream.
        for id in [0u64, 1_000_000, 2_500_000, 5_299_999] {
            let k = ssd.kernel(id.into());
            assert!(k.instructions_per_thread() > 0);
        }
    }
}
