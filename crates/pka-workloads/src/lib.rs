//! Synthetic reproductions of the 147 GPU workloads studied by the PKA
//! paper.
//!
//! The paper evaluates Principal Kernel Analysis on the complete Rodinia,
//! Parboil, Polybench, CUTLASS and DeepBench suites plus seven MLPerf
//! applications. None of those can run here (no GPU, no CUDA), but PKA
//! never looks at program semantics — it consumes *kernel launch streams*
//! with per-kernel metrics. This crate reproduces those streams: for every
//! workload, a [`Workload`] holds a lazily-expanded sequence of
//! [`KernelDescriptor`](pka_gpu::KernelDescriptor)s whose structure matches
//! what the paper reports (kernel counts, natural cluster compositions,
//! grid-size variation, compute-versus-memory character, regular versus
//! irregular phase behaviour). SSD training really does launch 5.3 million
//! kernels — lazily, in `O(#templates)` memory.
//!
//! Suites:
//!
//! * [`rodinia`] — 27 workloads (`gaussian_208` = 414 one-group kernels, …)
//! * [`parboil`] — 8 workloads
//! * [`polybench`] — 16 workloads (`gramschmidt` = 6 natural groups, …)
//! * [`cutlass`] — 20 GEMM configurations (10 SGEMM + 10 tensor-core)
//! * [`deepbench`] — 69 convolution/GEMM/RNN configurations
//! * [`mlperf`] — 7 scaled applications (ResNet, SSD, BERT, GNMT, 3D-UNet)
//!
//! # Examples
//!
//! ```
//! use pka_workloads::{all_workloads, Suite};
//!
//! let all = all_workloads();
//! assert_eq!(all.len(), 147);
//! let mlperf = all.iter().filter(|w| w.suite() == Suite::MlPerf).count();
//! assert_eq!(mlperf, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
pub mod cutlass;
pub mod deepbench;
pub mod mlperf;
pub mod parboil;
pub mod polybench;
pub mod rodinia;
mod workload;

pub use workload::{KernelTemplate, LaunchView, Suite, Workload, WorkloadBuilder};

/// All 147 workloads, grouped suite by suite in the paper's order.
pub fn all_workloads() -> Vec<Workload> {
    let mut out = Vec::with_capacity(147);
    out.extend(rodinia::workloads());
    out.extend(parboil::workloads());
    out.extend(polybench::workloads());
    out.extend(cutlass::workloads());
    out.extend(deepbench::workloads());
    out.extend(mlperf::workloads());
    out
}

/// The classic (non-MLPerf) workloads — the set for which full simulation
/// is tractable and against which TBPoint can be compared.
pub fn classic_workloads() -> Vec<Workload> {
    all_workloads()
        .into_iter()
        .filter(|w| w.suite() != Suite::MlPerf)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_147_workloads() {
        assert_eq!(all_workloads().len(), 147);
    }

    #[test]
    fn suite_sizes_match_the_paper() {
        let all = all_workloads();
        let count = |s: Suite| all.iter().filter(|w| w.suite() == s).count();
        assert_eq!(count(Suite::Rodinia), 27);
        assert_eq!(count(Suite::Parboil), 8);
        assert_eq!(count(Suite::Polybench), 16);
        assert_eq!(count(Suite::Cutlass), 20);
        assert_eq!(count(Suite::Deepbench), 69);
        assert_eq!(count(Suite::MlPerf), 7);
    }

    #[test]
    fn names_are_unique() {
        let all = all_workloads();
        let mut names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate workload names");
    }

    #[test]
    fn every_kernel_is_addressable_and_valid() {
        for w in classic_workloads() {
            let n = w.kernel_count();
            assert!(n > 0, "{} has no kernels", w.name());
            // Spot-check first, middle, last.
            for id in [0, n / 2, n - 1] {
                let k = w.kernel(id.into());
                assert!(k.instructions_per_thread() > 0, "{} kernel {id}", w.name());
            }
        }
    }

    #[test]
    fn iterator_agrees_with_random_access() {
        for w in all_workloads().into_iter().take(5) {
            for (id, k) in w.iter().take(50) {
                assert_eq!(k, w.kernel(id), "{} kernel {id}", w.name());
            }
        }
    }

    #[test]
    fn mlperf_is_scaled() {
        let ssd = mlperf::workloads()
            .into_iter()
            .find(|w| w.name().contains("ssd"))
            .expect("ssd exists");
        assert!(ssd.kernel_count() > 5_000_000, "{}", ssd.kernel_count());
    }
}
