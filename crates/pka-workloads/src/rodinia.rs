//! The 27 Rodinia 3.1 workloads of Table 4.
//!
//! Kernel-count structure follows the paper where it is documented:
//! `gauss_208` launches 414 kernels that PKS folds into a single group
//! (Table 3), the `bfs` variants launch one pair of kernels per frontier
//! level, `nw` walks 2×255 anti-diagonal steps, `srad_v1` iterates a
//! two-kernel stencil, and single-kernel applications (`nn`, `lavaMD`,
//! `hotspot`) see no inter-kernel reduction at all (speedup 1× in Table 4).

use crate::common::*;
use crate::{Suite, Workload};

/// Builds the Rodinia suite.
pub fn workloads() -> Vec<Workload> {
    let w = |name: &str| Workload::builder(name, Suite::Rodinia);
    vec![
        // Two distinct irregular tree-search kernels; nothing to fold.
        w("b+tree")
            .run(tmpl(irregular("findK", 120, 256, 24, 128)), 1)
            .run(tmpl(irregular("findRangeK", 120, 256, 30, 128)), 1)
            .build(),
        // Forward + weight-adjust pair.
        w("backprop")
            .run(tmpl(compute_tile("layerforward", 256, 256, 90)), 1)
            .run(tmpl(streaming("adjust_weights", 256, 256, 12, 32)), 1)
            .build(),
        // One (kernel, aux) pair per BFS level; frontier size swings wildly.
        w("bfs1MW")
            .cycle(
                vec![
                    tmpl(irregular("bfs_kernel", 512, 256, 20, 256)).with_grid_cycle(vec![
                        8, 64, 512, 2048, 4096, 2048, 512, 64, 16, 8, 4, 2, 1,
                    ]),
                    tmpl(elementwise("bfs_visited", 512, 256)).with_grid_cycle(vec![
                        8, 64, 512, 2048, 4096, 2048, 512, 64, 16, 8, 4, 2, 1,
                    ]),
                ],
                13,
            )
            .build(),
        w("bfs4096")
            .cycle(
                vec![
                    tmpl(irregular("bfs_kernel", 16, 256, 16, 4))
                        .with_grid_cycle(vec![1, 4, 16, 8, 2, 1]),
                    tmpl(elementwise("bfs_visited", 16, 256))
                        .with_grid_cycle(vec![1, 4, 16, 8, 2, 1]),
                ],
                6,
            )
            .build(),
        // Table 3: 20 kernels, one group, kernel 0 selected.
        w("bfs65536")
            .run(tmpl(irregular("bfs_kernel", 64, 256, 18, 16)), 20)
            .build(),
        w("dwt2d_192")
            .cycle(
                vec![
                    tmpl(compute_tile("fdwt53", 36, 192, 60)),
                    tmpl(streaming("rdwt53", 36, 192, 10, 8)),
                ],
                3,
            )
            .run(tmpl(elementwise("dwt_pack", 36, 192)), 1)
            .build(),
        w("dwt2d_rgb")
            .cycle(
                vec![
                    tmpl(compute_tile("fdwt53", 96, 192, 70)),
                    tmpl(streaming("rdwt53", 96, 192, 12, 24)),
                ],
                4,
            )
            .run(tmpl(elementwise("dwt_pack", 96, 192)), 1)
            .build(),
        // 414 near-identical elimination kernels -> one PKS group (Table 3).
        w("gauss_208")
            .cycle(
                vec![
                    tmpl(compute_tile("Fan1", 2, 128, 24)),
                    tmpl(compute_tile("Fan2", 13, 128, 30)),
                ],
                207,
            )
            .build(),
        w("gauss_mat4")
            .cycle(
                vec![
                    tmpl(compute_tile("Fan1", 1, 64, 16)),
                    tmpl(compute_tile("Fan2", 1, 64, 20)),
                ],
                3,
            )
            .build(),
        w("gauss_s16")
            .cycle(
                vec![
                    tmpl(compute_tile("Fan1", 1, 64, 18)),
                    tmpl(compute_tile("Fan2", 1, 64, 22)),
                ],
                15,
            )
            .build(),
        w("gauss_s64")
            .cycle(
                vec![
                    tmpl(compute_tile("Fan1", 1, 128, 20)),
                    tmpl(compute_tile("Fan2", 4, 128, 26)),
                ],
                63,
            )
            .build(),
        w("gauss_s256")
            .cycle(
                vec![
                    tmpl(compute_tile("Fan1", 2, 128, 22)),
                    tmpl(compute_tile("Fan2", 16, 128, 28)),
                ],
                255,
            )
            .build(),
        // Single long stencil kernel.
        w("hots_1024")
            .run(tmpl(compute_tile("hotspot", 1156, 256, 180)), 1)
            .build(),
        w("hots_512")
            .run(tmpl(compute_tile("hotspot", 324, 256, 160)), 1)
            .build(),
        w("hstort_500k")
            .run(tmpl(reduction("bucketcount", 256, 256)), 3)
            .run(tmpl(streaming("bucketsort", 256, 256, 20, 64)), 3)
            .run(tmpl(compute_tile("mergesort_pass", 128, 256, 70)), 3)
            .build(),
        w("hstort_r")
            .cycle(
                vec![
                    tmpl(reduction("bucketcount", 512, 256)),
                    tmpl(streaming("bucketsort", 512, 256, 24, 128)),
                    tmpl(compute_tile("mergesort_pass", 256, 256, 80)),
                ],
                9,
            )
            .run(tmpl(elementwise("merge_final", 256, 256)), 1)
            .build(),
        w("kmeans_28k")
            .run(tmpl(streaming("invert_mapping", 110, 256, 8, 8)), 1)
            .run(tmpl(compute_tile("kmeansPoint", 110, 256, 120)), 2)
            .build(),
        w("kmeans_819k")
            .run(tmpl(streaming("invert_mapping", 3200, 256, 8, 128)), 1)
            .run(tmpl(compute_tile("kmeansPoint", 3200, 256, 140)), 2)
            .build(),
        w("kmeans_oi")
            .run(tmpl(streaming("invert_mapping", 3200, 256, 8, 128)), 1)
            .run(tmpl(compute_tile("kmeansPoint", 3200, 256, 100)), 2)
            .build(),
        // One enormous n-body-style kernel.
        w("lavaMD")
            .run(tmpl(compute_tile("kernel_gpu_cuda", 4000, 128, 900)), 1)
            .build(),
        // Triangular decomposition: grids shrink as iterations proceed.
        w("lud_i")
            .cycle(
                vec![
                    tmpl(compute_tile("lud_diagonal", 1, 64, 80)),
                    tmpl(compute_tile("lud_perimeter", 32, 128, 90))
                        .with_grid_cycle(vec![120, 96, 72, 48, 32, 16, 8, 4, 2, 1]),
                    tmpl(compute_tile("lud_internal", 256, 256, 70))
                        .with_grid_cycle(vec![3600, 2304, 1296, 576, 256, 64, 16, 4, 1, 1]),
                ],
                85,
            )
            .build(),
        w("lud_256")
            .cycle(
                vec![
                    tmpl(compute_tile("lud_diagonal", 1, 64, 60)),
                    tmpl(compute_tile("lud_perimeter", 8, 128, 70))
                        .with_grid_cycle(vec![15, 12, 8, 4, 2, 1]),
                    tmpl(compute_tile("lud_internal", 32, 256, 50))
                        .with_grid_cycle(vec![225, 144, 64, 16, 4, 1]),
                ],
                21,
            )
            .build(),
        // The paper excludes myocyte (kernel-count mismatch between the
        // profiling and tracing runs); we still model its launch stream.
        w("myocyte")
            .run(tmpl(irregular("solver_1", 2, 32, 400, 1)), 1)
            .run(tmpl(irregular("solver_2", 2, 32, 380, 1)), 1)
            .build(),
        w("nn")
            .run(tmpl(streaming("euclid", 168, 256, 6, 16)), 1)
            .build(),
        // 2 x 255 anti-diagonal sweeps with triangular grid growth/shrink.
        w("nw")
            .cycle(
                vec![
                    tmpl(compute_tile("needle_1", 16, 64, 40)).with_grid_cycle(vec![
                        1, 4, 16, 32, 64, 128, 255, 128, 64, 32, 16, 4, 1,
                    ]),
                    tmpl(compute_tile("needle_2", 16, 64, 40)).with_grid_cycle(vec![
                        1, 4, 16, 32, 64, 128, 255, 128, 64, 32, 16, 4, 1,
                    ]),
                ],
                255,
            )
            .build(),
        // streamcluster: ~1300 near-identical pgain rounds.
        w("scluster")
            .run(tmpl(compute_tile("pgain", 128, 256, 110)), 1290)
            .run(tmpl(reduction("pgain_reduce", 64, 256)), 8)
            .build(),
        // 51 iterations of the two-kernel SRAD stencil.
        w("srad_v1")
            .cycle(
                vec![
                    tmpl(compute_tile("srad_kernel1", 230, 256, 75)),
                    tmpl(compute_tile("srad_kernel2", 230, 256, 65)),
                ],
                51,
            )
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_seven_workloads() {
        assert_eq!(workloads().len(), 27);
    }

    #[test]
    fn gaussian_structure_matches_table_3() {
        let g = workloads()
            .into_iter()
            .find(|w| w.name() == "gauss_208")
            .unwrap();
        assert_eq!(g.kernel_count(), 414);
    }

    #[test]
    fn bfs65536_has_20_kernels() {
        let b = workloads()
            .into_iter()
            .find(|w| w.name() == "bfs65536")
            .unwrap();
        assert_eq!(b.kernel_count(), 20);
    }

    #[test]
    fn single_kernel_apps_have_one_launch() {
        for name in ["nn", "lavaMD", "hots_1024", "hots_512"] {
            let w = workloads().into_iter().find(|w| w.name() == name).unwrap();
            assert_eq!(w.kernel_count(), 1, "{name}");
        }
    }

    #[test]
    fn nw_walks_anti_diagonals() {
        let nw = workloads().into_iter().find(|w| w.name() == "nw").unwrap();
        assert_eq!(nw.kernel_count(), 510);
        // Grid sizes vary across occurrences.
        let g0 = nw.kernel(0u64.into()).total_blocks();
        let g4 = nw.kernel(4u64.into()).total_blocks();
        assert_ne!(g0, g4);
    }
}
