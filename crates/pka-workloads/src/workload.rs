use pka_gpu::{Dim3, KernelDescriptor, KernelId};
use pka_stats::hash::seed_from;

/// The benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia 3.1 (27 workloads).
    Rodinia,
    /// Parboil (8 workloads).
    Parboil,
    /// Polybench-GPU (16 workloads).
    Polybench,
    /// CUTLASS GEMM sweeps (20 configurations).
    Cutlass,
    /// Baidu DeepBench (69 configurations).
    Deepbench,
    /// MLPerf v1.0 reference implementations (7 applications).
    MlPerf,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Rodinia => "Rodinia",
            Suite::Parboil => "Parboil",
            Suite::Polybench => "Polybench",
            Suite::Cutlass => "Cutlass",
            Suite::Deepbench => "Deepbench",
            Suite::MlPerf => "MLPerf",
        };
        f.write_str(s)
    }
}

/// A stamping rule that turns one validated descriptor into a family of
/// per-launch instances.
///
/// Each instance gets a unique deterministic seed (derived from the workload
/// name and launch index) and, optionally, a grid size drawn from a cycle —
/// the mechanism behind kernels that are "launched several thousand times
/// with different grid and/or thread block dimensions" and therefore land in
/// different PKS groups (Section 3.1).
///
/// # Examples
///
/// ```
/// use pka_gpu::KernelDescriptor;
/// use pka_workloads::KernelTemplate;
///
/// let base = KernelDescriptor::builder("relu").fp32_per_thread(4).build()?;
/// let t = KernelTemplate::new(base).with_grid_cycle(vec![128, 256]);
/// # Ok::<(), pka_gpu::GpuError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTemplate {
    base: KernelDescriptor,
    grid_cycle: Vec<u32>,
}

impl KernelTemplate {
    /// Wraps a validated descriptor.
    pub fn new(base: KernelDescriptor) -> Self {
        Self {
            base,
            grid_cycle: Vec::new(),
        }
    }

    /// Rotates the grid size (in blocks) through `cycle` as instances are
    /// stamped.
    pub fn with_grid_cycle(mut self, cycle: Vec<u32>) -> Self {
        self.grid_cycle = cycle;
        self
    }

    /// Stamps the instance for launch `launch_index` of `workload`
    /// (`occurrence` counts how many instances of *this template* precede
    /// it).
    fn instantiate(&self, workload: &str, launch_index: u64, occurrence: u64) -> KernelDescriptor {
        let mut builder = KernelDescriptor::builder(self.base.name())
            .grid(self.base.grid())
            .block(self.base.block());
        // Rebuild from the validated base via its public accessors.
        builder = clone_counts(&self.base, builder);
        if !self.grid_cycle.is_empty() {
            let g = self.grid_cycle[(occurrence % self.grid_cycle.len() as u64) as usize];
            builder = builder.grid(Dim3::linear(g));
        }
        builder
            .seed(seed_from(workload, launch_index))
            .build()
            .expect("template base was already validated")
    }

    /// The lightweight geometry of occurrence `occurrence` of this template,
    /// without materialising the descriptor.
    fn launch_view(&self, occurrence: u64) -> LaunchView<'_> {
        let total_blocks = if self.grid_cycle.is_empty() {
            self.base.total_blocks()
        } else {
            u64::from(self.grid_cycle[(occurrence % self.grid_cycle.len() as u64) as usize])
        };
        LaunchView {
            name: self.base.name(),
            total_blocks,
            threads_per_block: self.base.threads_per_block(),
            shared_mem_per_block: self.base.shared_mem_per_block(),
        }
    }
}

/// Copies every behavioural field from a validated descriptor into a fresh
/// builder (grid/block/name are handled by the caller).
fn clone_counts(
    base: &KernelDescriptor,
    builder: pka_gpu::KernelDescriptorBuilder,
) -> pka_gpu::KernelDescriptorBuilder {
    use pka_gpu::InstClass as C;
    builder
        .regs_per_thread(base.regs_per_thread())
        .shared_mem_per_block(base.shared_mem_per_block())
        .fp32_per_thread(base.count(C::Fp32))
        .fp64_per_thread(base.count(C::Fp64))
        .int_per_thread(base.count(C::Int))
        .sfu_per_thread(base.count(C::Sfu))
        .tensor_per_thread(base.count(C::Tensor))
        .global_loads_per_thread(base.count(C::LdGlobal))
        .global_stores_per_thread(base.count(C::StGlobal))
        .local_loads_per_thread(base.count(C::LdLocal))
        .local_stores_per_thread(base.count(C::StLocal))
        .shared_loads_per_thread(base.count(C::LdShared))
        .shared_stores_per_thread(base.count(C::StShared))
        .global_atomics_per_thread(base.count(C::AtomicGlobal))
        .branches_per_thread(base.count(C::Branch))
        .syncs_per_thread(base.count(C::Sync))
        .coalescing_sectors(base.coalescing_sectors())
        .working_set_bytes(base.working_set_bytes())
        .l1_locality(base.l1_locality())
        .l2_locality(base.l2_locality())
        .divergence_efficiency(base.divergence_efficiency())
        .phases(base.phases().to_vec())
}

/// A borrowed, allocation-free view of one launch's lightweight geometry.
///
/// Everything an Nsight-Systems-style consumer reads from a launch — name,
/// grid, block, shared memory — computed straight from the template's
/// validated base descriptor without rebuilding it or cloning the name.
/// `total_blocks` honours the template's grid cycle exactly as
/// [`Workload::kernel`] does, so for every launch
/// `workload.launch_view(id)` agrees field-for-field with the descriptor
/// `workload.kernel(id)` materialises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchView<'a> {
    /// Kernel (mangled) name, borrowed from the template.
    pub name: &'a str,
    /// Grid size in thread blocks.
    pub total_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub shared_mem_per_block: u32,
}

impl LaunchView<'_> {
    /// Total threads in the launch (`total_blocks * threads_per_block`).
    pub fn total_threads(&self) -> u64 {
        self.total_blocks * self.threads_per_block as u64
    }
}

/// One stretch of a workload's launch stream.
#[derive(Debug, Clone, PartialEq)]
enum Segment {
    /// `template` launched `count` times in a row.
    Run { template: KernelTemplate, count: u64 },
    /// `templates` launched round-robin, the full cycle repeated `repeats`
    /// times (the per-iteration kernel pattern of time-stepped and layered
    /// applications).
    Cycle {
        templates: Vec<KernelTemplate>,
        repeats: u64,
    },
}

impl Segment {
    fn len(&self) -> u64 {
        match self {
            Segment::Run { count, .. } => *count,
            Segment::Cycle { templates, repeats } => templates.len() as u64 * repeats,
        }
    }

    fn kernel(&self, workload: &str, launch_index: u64, offset: u64) -> KernelDescriptor {
        match self {
            Segment::Run { template, .. } => template.instantiate(workload, launch_index, offset),
            Segment::Cycle { templates, .. } => {
                let t = (offset % templates.len() as u64) as usize;
                let occurrence = offset / templates.len() as u64;
                templates[t].instantiate(workload, launch_index, occurrence)
            }
        }
    }

    fn launch_view(&self, offset: u64) -> LaunchView<'_> {
        match self {
            Segment::Run { template, .. } => template.launch_view(offset),
            Segment::Cycle { templates, .. } => {
                let t = (offset % templates.len() as u64) as usize;
                let occurrence = offset / templates.len() as u64;
                templates[t].launch_view(occurrence)
            }
        }
    }
}

/// One of the 147 studied workloads: a named, lazily-expanded kernel launch
/// stream.
///
/// # Examples
///
/// ```
/// use pka_workloads::rodinia;
///
/// let gaussian = rodinia::workloads()
///     .into_iter()
///     .find(|w| w.name() == "gauss_208")
///     .expect("exists");
/// assert_eq!(gaussian.kernel_count(), 414);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    suite: Suite,
    segments: Vec<Segment>,
    /// Cumulative end index of each segment, for O(log n) random access.
    cumulative: Vec<u64>,
}

impl Workload {
    /// Starts building a workload.
    pub fn builder(name: impl Into<String>, suite: Suite) -> WorkloadBuilder {
        WorkloadBuilder {
            name: name.into(),
            suite,
            segments: Vec::new(),
        }
    }

    /// Workload name (unique across the 147).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The suite this workload belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Total kernel launches in the stream.
    pub fn kernel_count(&self) -> u64 {
        self.cumulative.last().copied().unwrap_or(0)
    }

    /// Materialises the descriptor for launch `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kernel(&self, id: KernelId) -> KernelDescriptor {
        let idx = id.index();
        assert!(
            idx < self.kernel_count(),
            "kernel {idx} out of range for `{}` ({} kernels)",
            self.name,
            self.kernel_count()
        );
        let seg = self.cumulative.partition_point(|&end| end <= idx);
        let start = if seg == 0 { 0 } else { self.cumulative[seg - 1] };
        self.segments[seg].kernel(&self.name, idx, idx - start)
    }

    /// The lightweight geometry of launch `id`, without materialising the
    /// descriptor — the O(1)-allocation fast path for feature-only
    /// consumers (the streaming tail). Agrees field-for-field with
    /// [`kernel`](Self::kernel) for every launch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn launch_view(&self, id: KernelId) -> LaunchView<'_> {
        let idx = id.index();
        assert!(
            idx < self.kernel_count(),
            "kernel {idx} out of range for `{}` ({} kernels)",
            self.name,
            self.kernel_count()
        );
        let seg = self.cumulative.partition_point(|&end| end <= idx);
        let start = if seg == 0 { 0 } else { self.cumulative[seg - 1] };
        self.segments[seg].launch_view(idx - start)
    }

    /// Iterates over `(id, descriptor)` pairs lazily, in launch order.
    pub fn iter(&self) -> impl Iterator<Item = (KernelId, KernelDescriptor)> + '_ {
        (0..self.kernel_count()).map(move |i| (KernelId::new(i), self.kernel(KernelId::new(i))))
    }

    /// The launch-stream period of the dominant iteration structure, if the
    /// workload has one: the kernels-per-iteration of its largest cyclic
    /// segment. This is the contextual knowledge the single-iteration
    /// methodology (Section 6, NVArchSim-style) requires — PKA itself never
    /// uses it.
    pub fn iteration_hint(&self) -> Option<u64> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Cycle { templates, repeats } if *repeats > 1 => {
                    Some((templates.len() as u64, templates.len() as u64 * repeats))
                }
                _ => None,
            })
            .max_by_key(|&(_, span)| span)
            .map(|(period, _)| period)
    }
}

/// Builder for [`Workload`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    suite: Suite,
    segments: Vec<Segment>,
}

impl WorkloadBuilder {
    /// Appends `count` consecutive launches of `template`.
    pub fn run(mut self, template: KernelTemplate, count: u64) -> Self {
        self.segments.push(Segment::Run { template, count });
        self
    }

    /// Appends `repeats` rounds of the template cycle (the per-timestep /
    /// per-layer launch pattern).
    pub fn cycle(mut self, templates: Vec<KernelTemplate>, repeats: u64) -> Self {
        self.segments.push(Segment::Cycle { templates, repeats });
        self
    }

    /// Finishes the workload.
    ///
    /// # Panics
    ///
    /// Panics if no segments were added (a workload must launch something).
    pub fn build(self) -> Workload {
        assert!(
            !self.segments.is_empty(),
            "workload `{}` has no kernel segments",
            self.name
        );
        let mut cumulative = Vec::with_capacity(self.segments.len());
        let mut total = 0u64;
        for s in &self.segments {
            total += s.len();
            cumulative.push(total);
        }
        Workload {
            name: self.name,
            suite: self.suite,
            segments: self.segments,
            cumulative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(name: &str, fp: u32) -> KernelTemplate {
        KernelTemplate::new(
            KernelDescriptor::builder(name)
                .grid_blocks(8)
                .block_threads(64)
                .fp32_per_thread(fp)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn run_segment_counts() {
        let w = Workload::builder("w", Suite::Rodinia)
            .run(template("a", 10), 5)
            .build();
        assert_eq!(w.kernel_count(), 5);
        assert_eq!(w.kernel(KernelId::new(0)).name(), "a");
        assert_eq!(w.kernel(KernelId::new(4)).name(), "a");
    }

    #[test]
    fn cycle_segment_alternates() {
        let w = Workload::builder("w", Suite::Polybench)
            .cycle(vec![template("x", 1), template("y", 2)], 3)
            .build();
        assert_eq!(w.kernel_count(), 6);
        let names: Vec<String> = w.iter().map(|(_, k)| k.name().to_string()).collect();
        assert_eq!(names, ["x", "y", "x", "y", "x", "y"]);
    }

    #[test]
    fn segments_compose() {
        let w = Workload::builder("w", Suite::Parboil)
            .run(template("a", 1), 2)
            .cycle(vec![template("b", 1), template("c", 1)], 2)
            .run(template("d", 1), 1)
            .build();
        let names: Vec<String> = w.iter().map(|(_, k)| k.name().to_string()).collect();
        assert_eq!(names, ["a", "a", "b", "c", "b", "c", "d"]);
    }

    #[test]
    fn seeds_are_unique_per_launch() {
        let w = Workload::builder("w", Suite::Rodinia)
            .run(template("a", 10), 3)
            .build();
        let seeds: Vec<u64> = w.iter().map(|(_, k)| k.seed()).collect();
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
    }

    #[test]
    fn same_launch_is_deterministic() {
        let w = Workload::builder("w", Suite::Rodinia)
            .run(template("a", 10), 3)
            .build();
        assert_eq!(w.kernel(KernelId::new(1)), w.kernel(KernelId::new(1)));
    }

    #[test]
    fn grid_cycle_varies_geometry() {
        let t = template("g", 4).with_grid_cycle(vec![16, 32, 64]);
        let w = Workload::builder("w", Suite::MlPerf).run(t, 6).build();
        let grids: Vec<u64> = w.iter().map(|(_, k)| k.total_blocks()).collect();
        assert_eq!(grids, [16, 32, 64, 16, 32, 64]);
    }

    #[test]
    fn grid_cycle_inside_cycle_counts_occurrences() {
        // Two templates in a cycle; the first rotates grids per occurrence
        // of *itself*, not per launch.
        let a = template("a", 1).with_grid_cycle(vec![8, 16]);
        let b = template("b", 1);
        let w = Workload::builder("w", Suite::MlPerf)
            .cycle(vec![a, b], 3)
            .build();
        let grids: Vec<(String, u64)> = w
            .iter()
            .map(|(_, k)| (k.name().to_string(), k.total_blocks()))
            .collect();
        assert_eq!(grids[0], ("a".into(), 8));
        assert_eq!(grids[2], ("a".into(), 16));
        assert_eq!(grids[4], ("a".into(), 8));
    }

    #[test]
    fn launch_view_matches_materialised_descriptor() {
        // Mixed segments, grid cycles inside and outside a template cycle,
        // and a non-trivial block/shared-mem configuration: the view must
        // agree with the built descriptor on every launch.
        let fancy = KernelTemplate::new(
            KernelDescriptor::builder("fancy")
                .grid(Dim3 { x: 4, y: 3, z: 2 })
                .block(Dim3 { x: 32, y: 4, z: 1 })
                .shared_mem_per_block(8192)
                .fp32_per_thread(2)
                .build()
                .unwrap(),
        );
        let cycled = template("cyc", 1).with_grid_cycle(vec![16, 32, 64]);
        let plain = template("plain", 2);
        let w = Workload::builder("w", Suite::MlPerf)
            .run(fancy, 3)
            .cycle(vec![cycled, plain], 4)
            .run(template("tail", 3).with_grid_cycle(vec![5, 9]), 5)
            .build();
        for i in 0..w.kernel_count() {
            let id = KernelId::new(i);
            let k = w.kernel(id);
            let v = w.launch_view(id);
            assert_eq!(v.name, k.name(), "launch {i}");
            assert_eq!(v.total_blocks, k.total_blocks(), "launch {i}");
            assert_eq!(v.threads_per_block, k.threads_per_block(), "launch {i}");
            assert_eq!(v.shared_mem_per_block, k.shared_mem_per_block(), "launch {i}");
            assert_eq!(v.total_threads(), k.total_threads(), "launch {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let w = Workload::builder("w", Suite::Rodinia)
            .run(template("a", 1), 2)
            .build();
        let _ = w.kernel(KernelId::new(2));
    }

    #[test]
    #[should_panic(expected = "no kernel segments")]
    fn empty_workload_panics() {
        let _ = Workload::builder("w", Suite::Rodinia).build();
    }
}
