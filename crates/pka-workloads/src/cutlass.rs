//! The 20 CUTLASS GEMM configurations of Table 4: 10 SGEMM problem sizes
//! and 10 tensor-core (WGEMM) problem sizes.
//!
//! Table 3 shows the shape: each configuration launches 7 instances of one
//! kernel (CUTLASS perf harness warm-up plus timed repetitions), which PKS
//! folds into a single group — hence the suite's mean silicon speedups of
//! 6–7× at sub-1% error.

use crate::common::*;
use crate::{Suite, Workload};

/// The (M, N, K) problem sizes swept by the perf suite.
const PROBLEMS: [(u32, u32, u32); 10] = [
    (2560, 128, 2560),
    (2560, 512, 2560),
    (4096, 4096, 4096),
    (1024, 1024, 1024),
    (2048, 2048, 2048),
    (8192, 512, 1024),
    (512, 8192, 1024),
    (3072, 3072, 1024),
    (1760, 1760, 1760),
    (5124, 700, 2048),
];

/// Repetitions the CUTLASS perf harness launches per configuration.
const REPS: u64 = 7;

fn blocks_for(m: u32, n: u32) -> u32 {
    // 128x128 output tiles.
    (m.div_ceil(128) * n.div_ceil(128)).max(1)
}

fn fp32_work(m: u32, n: u32, k: u32) -> u32 {
    // Per-thread MAC count for a 128x128x8-step tile on 256 threads,
    // compressed to keep traces tractable.
    let macs = (m as u64 * n as u64 * k as u64) / blocks_for(m, n) as u64 / 256;
    (macs / 24).clamp(200, 4000) as u32
}

/// Builds the CUTLASS suite.
pub fn workloads() -> Vec<Workload> {
    let mut out = Vec::with_capacity(20);
    for (m, n, k) in PROBLEMS {
        let name = format!("cutlass_sgemm_{m}x{n}x{k}");
        let kernel = compute_tile("cutlass_sgemm_tile", blocks_for(m, n), 256, fp32_work(m, n, k))
            .working_set_bytes((m as u64 * k as u64 + k as u64 * n as u64) * 4)
            .l2_locality(0.85);
        out.push(
            Workload::builder(name, Suite::Cutlass)
                .run(tmpl(kernel), REPS)
                .build(),
        );
    }
    for (m, n, k) in PROBLEMS {
        let name = format!("cutlass_wgemm_{m}x{n}x{k}");
        let kernel = tensor_tile(
            "cutlass_wmma_tile",
            blocks_for(m, n),
            256,
            (fp32_work(m, n, k) / 12).max(32),
        )
        .working_set_bytes((m as u64 * k as u64 + k as u64 * n as u64) * 2)
        .l2_locality(0.85);
        out.push(
            Workload::builder(name, Suite::Cutlass)
                .run(tmpl(kernel), REPS)
                .build(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_gpu::InstClass;

    #[test]
    fn twenty_configurations() {
        assert_eq!(workloads().len(), 20);
    }

    #[test]
    fn each_launches_seven_kernels() {
        for w in workloads() {
            assert_eq!(w.kernel_count(), REPS, "{}", w.name());
        }
    }

    #[test]
    fn wgemm_uses_tensor_cores_sgemm_does_not() {
        let all = workloads();
        let sgemm = all.iter().find(|w| w.name().contains("sgemm")).unwrap();
        let wgemm = all.iter().find(|w| w.name().contains("wgemm")).unwrap();
        assert_eq!(sgemm.kernel(0u64.into()).count(InstClass::Tensor), 0);
        assert!(wgemm.kernel(0u64.into()).count(InstClass::Tensor) > 0);
    }

    #[test]
    fn bigger_problems_have_more_blocks() {
        let all = workloads();
        let small = all
            .iter()
            .find(|w| w.name() == "cutlass_sgemm_1024x1024x1024")
            .unwrap();
        let big = all
            .iter()
            .find(|w| w.name() == "cutlass_sgemm_4096x4096x4096")
            .unwrap();
        assert!(
            big.kernel(0u64.into()).total_blocks() > small.kernel(0u64.into()).total_blocks()
        );
    }
}
