//! The 8 Parboil workloads of Table 4.
//!
//! `cutcp` reproduces Table 3's three groups of sizes 2/3/6; `histo`
//! reproduces its four groups of 20 kernels each; `stencil` runs 100
//! identical iterations (the 100× PKS speedup row).

use crate::common::*;
use crate::{Suite, Workload};

/// Builds the Parboil suite.
pub fn workloads() -> Vec<Workload> {
    let w = |name: &str| Workload::builder(name, Suite::Parboil);
    vec![
        // Frontier-driven BFS with erratic level sizes: little to fold.
        w("bfs")
            .cycle(
                vec![tmpl(irregular("bfs_levelsync", 256, 512, 22, 128))
                    .with_grid_cycle(vec![2, 30, 700, 2900, 1400, 180, 22, 3, 1])],
                9,
            )
            .build(),
        // Table 3: groups of 2, 3 and 6 kernels.
        w("cutcp")
            .run(tmpl(compute_tile("cutoff_small", 24, 128, 150)), 2)
            .run(tmpl(compute_tile("cutoff_medium", 88, 128, 190)), 3)
            .run(tmpl(compute_tile("cutoff_large", 176, 128, 210)), 6)
            .build(),
        // Table 3: four groups x 20 kernels.
        w("histo")
            .cycle(
                vec![
                    tmpl(elementwise("histo_prescan", 64, 512)),
                    tmpl(reduction("histo_intermediate", 98, 512)),
                    tmpl(reduction("histo_main", 84, 512)),
                    tmpl(streaming("histo_final", 42, 512, 10, 16)),
                ],
                20,
            )
            .build(),
        w("mri")
            .run(tmpl(compute_tile("computeQ_GPU", 128, 256, 320)), 3)
            .build(),
        w("sad")
            .run(tmpl(compute_tile("mb_sad_calc", 1584, 64, 130)), 1)
            .run(tmpl(reduction("larger_sad_calc_8", 99, 128)), 1)
            .run(tmpl(reduction("larger_sad_calc_16", 25, 128)), 1)
            .build(),
        // One very long dense GEMM (Accel-Sim error outlier in Table 4).
        w("sgemm")
            .run(tmpl(compute_tile("mysgemmNT", 528, 128, 1400)), 1)
            .build(),
        // ~100 sparse matrix-vector products; two population sizes.
        w("spmv")
            .run(tmpl(irregular("spmv_jds", 766, 32, 14, 32)), 50)
            .run(tmpl(irregular("spmv_jds_tail", 96, 32, 10, 8)), 50)
            .build(),
        // 100 identical Jacobi iterations.
        w("stencil")
            .run(tmpl(compute_tile("block2D_hybrid", 128, 256, 85)), 100)
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_workloads() {
        assert_eq!(workloads().len(), 8);
    }

    #[test]
    fn cutcp_matches_table_3_groups() {
        let c = workloads().into_iter().find(|w| w.name() == "cutcp").unwrap();
        assert_eq!(c.kernel_count(), 11); // 2 + 3 + 6
        assert_eq!(c.kernel(0u64.into()).name(), "cutoff_small");
        assert_eq!(c.kernel(2u64.into()).name(), "cutoff_medium");
        assert_eq!(c.kernel(5u64.into()).name(), "cutoff_large");
    }

    #[test]
    fn histo_is_four_by_twenty() {
        let h = workloads().into_iter().find(|w| w.name() == "histo").unwrap();
        assert_eq!(h.kernel_count(), 80);
    }

    #[test]
    fn stencil_runs_100_iterations() {
        let s = workloads()
            .into_iter()
            .find(|w| w.name() == "stencil")
            .unwrap();
        assert_eq!(s.kernel_count(), 100);
    }
}
