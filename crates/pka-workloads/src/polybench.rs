//! The 16 Polybench-GPU workloads of Table 4 (15 from the paper's table
//! plus `doitgen`, bringing the full study to 147 workloads).
//!
//! `fdtd2d` reproduces Table 3's two groups (1000 + 500 kernels);
//! `gramschmidt` reproduces its six groups over 6411 launches. `atax` is
//! the regular single-phase kernel used in Figure 5a; `syr2k` is the
//! 50-day-simulation outlier that PKP alone accelerates 50×.

use crate::common::*;
use crate::{Suite, Workload};

/// Builds the Polybench suite.
pub fn workloads() -> Vec<Workload> {
    let w = |name: &str| Workload::builder(name, Suite::Polybench);
    vec![
        w("2Dcnn")
            .run(tmpl(compute_tile("Convolution2D_kernel", 1024, 256, 48)), 1)
            .build(),
        // Two identical matrix multiplies -> one group, 2x.
        w("2mm")
            .run(tmpl(compute_tile("mm2_kernel", 2048, 256, 1200)), 2)
            .build(),
        // 254 depth slices of a 3D convolution -> one group, ~243x.
        w("3dconvolution")
            .run(tmpl(compute_tile("convolution3D_slice", 64, 256, 40)), 254)
            .build(),
        w("3mm")
            .run(tmpl(compute_tile("mm3_kernel", 1024, 256, 800)), 3)
            .build(),
        // Figure 5a's regular workload: ramps fast, stays flat.
        w("atax")
            .run(tmpl(streaming("atax_kernel1", 512, 256, 96, 96)), 1)
            .run(tmpl(streaming("atax_kernel2", 512, 256, 96, 96)), 1)
            .build(),
        w("bicg")
            .run(tmpl(streaming("bicg_kernel1", 512, 256, 90, 96)), 1)
            .run(tmpl(streaming("bicg_kernel2", 512, 256, 90, 96)), 1)
            .build(),
        w("correlation")
            .run(tmpl(streaming("mean_kernel", 8, 256, 40, 32)), 1)
            .run(tmpl(streaming("std_kernel", 8, 256, 44, 32)), 1)
            .run(tmpl(streaming("reduce_kernel", 64, 256, 36, 32)), 1)
            .run(tmpl(compute_tile("corr_kernel", 2048, 256, 2000)), 1)
            .build(),
        w("covariance")
            .run(tmpl(streaming("mean_kernel", 8, 256, 40, 32)), 1)
            .run(tmpl(streaming("reduce_kernel", 64, 256, 36, 32)), 1)
            .run(tmpl(compute_tile("covar_kernel", 2048, 256, 2100)), 1)
            .build(),
        // 16th workload: 128 batched tensor-contraction launches.
        w("doitgen")
            .run(tmpl(compute_tile("doitgen_kernel", 128, 256, 160)), 128)
            .build(),
        // Table 3: kernels {0: x1000, 2: x500} -> A B A per timestep.
        w("fdtd2d")
            .cycle(
                vec![
                    tmpl(streaming("fdtd_step1", 256, 256, 12, 32)),
                    tmpl(compute_tile("fdtd_step23", 256, 256, 30)),
                    tmpl(streaming("fdtd_step1", 256, 256, 12, 32)),
                ],
                500,
            )
            .build(),
        w("gemm")
            .run(tmpl(compute_tile("gemm_kernel", 2048, 256, 1100)), 1)
            .build(),
        w("gsummv")
            .run(tmpl(streaming("gesummv_kernel", 1024, 256, 110, 128)), 1)
            .build(),
        // Six natural groups over 6411 launches: three kernel types, each
        // split into a large-grid and a small-grid population.
        w("gramschmidt")
            .cycle(
                vec![
                    tmpl(streaming("gramschmidt_k1", 16, 256, 30, 16)),
                    tmpl(compute_tile("gramschmidt_k2", 64, 256, 90)),
                    tmpl(streaming("gramschmidt_k3", 64, 256, 40, 16)),
                ],
                1370,
            )
            .cycle(
                vec![
                    tmpl(streaming("gramschmidt_k1", 2, 256, 14, 4)),
                    tmpl(compute_tile("gramschmidt_k2", 8, 256, 45)),
                    tmpl(streaming("gramschmidt_k3", 8, 256, 18, 4)),
                ],
                767,
            )
            .build(),
        w("mvt")
            .run(tmpl(streaming("mvt_kernel1", 512, 256, 100, 96)), 1)
            .run(tmpl(streaming("mvt_kernel2", 512, 256, 100, 96)), 1)
            .build(),
        // The 50-day full-simulation outlier: one giant stable kernel where
        // intra-kernel projection does all the work.
        w("syr2k")
            .run(tmpl(compute_tile("syr2k_kernel", 16384, 256, 3000)), 1)
            .build(),
        w("syrk")
            .run(tmpl(compute_tile("syrk_kernel", 8192, 256, 1500)), 1)
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_workloads() {
        assert_eq!(workloads().len(), 16);
    }

    #[test]
    fn fdtd2d_matches_table_3() {
        let f = workloads()
            .into_iter()
            .find(|w| w.name() == "fdtd2d")
            .unwrap();
        assert_eq!(f.kernel_count(), 1500);
        let step1 = f
            .iter()
            .filter(|(_, k)| k.name() == "fdtd_step1")
            .count();
        assert_eq!(step1, 1000);
    }

    #[test]
    fn gramschmidt_has_6411_kernels() {
        let g = workloads()
            .into_iter()
            .find(|w| w.name() == "gramschmidt")
            .unwrap();
        assert_eq!(g.kernel_count(), 6411);
    }

    #[test]
    fn atax_is_regular() {
        let a = workloads().into_iter().find(|w| w.name() == "atax").unwrap();
        for (_, k) in a.iter() {
            assert_eq!(k.phases().len(), 1);
            assert_eq!(k.divergence_efficiency(), 1.0);
        }
    }
}
