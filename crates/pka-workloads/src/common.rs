//! Shared kernel archetypes used by the suite definitions.
//!
//! Every workload in the paper boils down to a handful of behavioural
//! archetypes: dense compute tiles (GEMM), streaming memory sweeps,
//! irregular graph frontiers, shared-memory stencils, element-wise glue and
//! reductions. These constructors keep the per-suite files declarative.

use pka_gpu::{KernelDescriptor, KernelDescriptorBuilder, KernelPhase};

use crate::KernelTemplate;

/// Finalises a builder into a template, panicking on programmer error (all
/// archetype parameters are static).
pub(crate) fn tmpl(builder: KernelDescriptorBuilder) -> KernelTemplate {
    KernelTemplate::new(builder.build().expect("static archetype is valid"))
}

/// A compute-bound dense tile: high FP32 density, shared-memory staging,
/// coalesced loads, barriers (the GEMM/stencil family).
pub(crate) fn compute_tile(
    name: &str,
    blocks: u32,
    threads: u32,
    fp32: u32,
) -> KernelDescriptorBuilder {
    KernelDescriptor::builder(name)
        .grid_blocks(blocks)
        .block_threads(threads)
        .fp32_per_thread(fp32)
        .int_per_thread(fp32 / 8 + 4)
        .global_loads_per_thread(fp32 / 32 + 2)
        .global_stores_per_thread(2)
        .shared_loads_per_thread(fp32 / 8)
        .shared_stores_per_thread(fp32 / 32 + 1)
        .syncs_per_thread(fp32 / 64 + 1)
        .shared_mem_per_block(16 * 1024)
        .regs_per_thread(64)
        .coalescing_sectors(4.0)
        .l1_locality(0.7)
        .l2_locality(0.8)
        .working_set_bytes(8 << 20)
}

/// A tensor-core GEMM tile (the CUTLASS WGEMM / cuDNN tensor-op family).
pub(crate) fn tensor_tile(
    name: &str,
    blocks: u32,
    threads: u32,
    mmas: u32,
) -> KernelDescriptorBuilder {
    KernelDescriptor::builder(name)
        .grid_blocks(blocks)
        .block_threads(threads)
        .tensor_per_thread(mmas)
        .fp32_per_thread(mmas / 4 + 8)
        .int_per_thread(mmas / 8 + 4)
        .global_loads_per_thread(mmas / 8 + 2)
        .global_stores_per_thread(2)
        .shared_loads_per_thread(mmas / 2)
        .shared_stores_per_thread(mmas / 8 + 1)
        .syncs_per_thread(mmas / 16 + 1)
        .shared_mem_per_block(32 * 1024)
        .regs_per_thread(96)
        .coalescing_sectors(4.0)
        .l1_locality(0.75)
        .l2_locality(0.8)
        .working_set_bytes(16 << 20)
}

/// A streaming, memory-bound sweep: little arithmetic per byte, large
/// working set, poor temporal locality (the elementwise / copy family).
pub(crate) fn streaming(
    name: &str,
    blocks: u32,
    threads: u32,
    loads: u32,
    ws_mb: u64,
) -> KernelDescriptorBuilder {
    KernelDescriptor::builder(name)
        .grid_blocks(blocks)
        .block_threads(threads)
        .fp32_per_thread(loads / 2 + 2)
        .int_per_thread(loads / 2 + 4)
        .global_loads_per_thread(loads)
        .global_stores_per_thread(loads / 2 + 1)
        .coalescing_sectors(4.0)
        .l1_locality(0.1)
        .l2_locality(0.25)
        .working_set_bytes(ws_mb << 20)
        .regs_per_thread(32)
}

/// An irregular, divergent kernel with uncoalesced gathers and multiphase
/// IPC (the BFS / graph / branchy family, Figure 5b of the paper).
pub(crate) fn irregular(
    name: &str,
    blocks: u32,
    threads: u32,
    loads: u32,
    ws_mb: u64,
) -> KernelDescriptorBuilder {
    KernelDescriptor::builder(name)
        .grid_blocks(blocks)
        .block_threads(threads)
        .int_per_thread(loads + 8)
        .fp32_per_thread(loads / 4 + 1)
        .global_loads_per_thread(loads)
        .global_stores_per_thread(loads / 4 + 1)
        .global_atomics_per_thread(loads / 16)
        .branches_per_thread(loads / 2 + 4)
        .coalescing_sectors(13.0)
        .divergence_efficiency(0.45)
        .l1_locality(0.15)
        .l2_locality(0.35)
        .working_set_bytes(ws_mb << 20)
        .regs_per_thread(40)
        .phases(vec![
            KernelPhase {
                fraction: 0.25,
                mem_scale: 1.8,
                compute_scale: 0.6,
            },
            KernelPhase {
                fraction: 0.5,
                mem_scale: 1.0,
                compute_scale: 1.0,
            },
            KernelPhase {
                fraction: 0.25,
                mem_scale: 0.6,
                compute_scale: 1.3,
            },
        ])
}

/// A latency-sensitive element-wise / activation kernel (the ReLU,
/// batchnorm-inference, bias-add family of deep-learning glue).
pub(crate) fn elementwise(name: &str, blocks: u32, threads: u32) -> KernelDescriptorBuilder {
    KernelDescriptor::builder(name)
        .grid_blocks(blocks)
        .block_threads(threads)
        .fp32_per_thread(12)
        .int_per_thread(8)
        .global_loads_per_thread(4)
        .global_stores_per_thread(2)
        .coalescing_sectors(4.0)
        .l1_locality(0.05)
        .l2_locality(0.3)
        .working_set_bytes(64 << 20)
        .regs_per_thread(24)
}

/// A reduction / histogram kernel: shared memory plus atomics.
pub(crate) fn reduction(name: &str, blocks: u32, threads: u32) -> KernelDescriptorBuilder {
    KernelDescriptor::builder(name)
        .grid_blocks(blocks)
        .block_threads(threads)
        .fp32_per_thread(16)
        .int_per_thread(24)
        .global_loads_per_thread(16)
        .global_stores_per_thread(1)
        .shared_loads_per_thread(12)
        .shared_stores_per_thread(12)
        .global_atomics_per_thread(2)
        .syncs_per_thread(3)
        .shared_mem_per_block(8 * 1024)
        .coalescing_sectors(6.0)
        .l1_locality(0.4)
        .l2_locality(0.5)
        .working_set_bytes(32 << 20)
        .regs_per_thread(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archetypes_build() {
        let _ = tmpl(compute_tile("c", 64, 256, 200));
        let _ = tmpl(tensor_tile("t", 64, 256, 64));
        let _ = tmpl(streaming("s", 64, 256, 16, 64));
        let _ = tmpl(irregular("i", 64, 256, 16, 64));
        let _ = tmpl(elementwise("e", 64, 256));
        let _ = tmpl(reduction("r", 64, 256));
    }

    #[test]
    fn archetypes_are_behaviourally_distinct() {
        use pka_gpu::{GpuGeneration, KernelMetrics};
        let c = compute_tile("c", 64, 256, 200).build().unwrap();
        let s = streaming("s", 64, 256, 16, 64).build().unwrap();
        let mc = KernelMetrics::from_descriptor(&c, GpuGeneration::Volta);
        let ms = KernelMetrics::from_descriptor(&s, GpuGeneration::Volta);
        // Compute tile: far more instructions per unit of memory traffic.
        let intensity_c = mc.instructions / mc.coalesced_global_loads.max(1.0);
        let intensity_s = ms.instructions / ms.coalesced_global_loads.max(1.0);
        assert!(intensity_c > 3.0 * intensity_s);
    }

    #[test]
    fn irregular_kernels_are_divergent_and_phased() {
        let i = irregular("i", 64, 256, 16, 64).build().unwrap();
        assert!(i.divergence_efficiency() < 0.6);
        assert!(i.phases().len() > 1);
        assert!(i.coalescing_sectors() > 8.0);
    }
}
