//! Vendored minimal `serde_derive` substitute for offline builds.
//!
//! Supports exactly the type shapes used in this workspace:
//!
//! * structs with named fields,
//! * enums whose variants are all unit variants,
//! * single-field tuple ("newtype") structs.
//!
//! Generated impls target the vendored `serde` facade in this workspace
//! (`Serialize::to_json_value` / `Deserialize::from_json_value` over
//! `serde::value::Value`), not the real serde data model. Generics and
//! `#[serde(...)]` attributes are deliberately unsupported; deriving on
//! such a type produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving type, as far as codegen needs to know.
enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    UnitEnum { name: String, variants: Vec<String> },
    NewtypeStruct { name: String },
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (including doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("derive supports only structs and enums, found `{kind}`"));
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generic type `{name}`"
        ));
    }

    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Shape::NamedStruct {
                    fields: parse_named_fields(g.stream())?,
                    name,
                })
            } else {
                Ok(Shape::UnitEnum {
                    variants: parse_unit_variants(g.stream())?,
                    name,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && kind == "struct" => {
            let n = count_tuple_fields(g.stream());
            if n == 1 {
                Ok(Shape::NewtypeStruct { name })
            } else {
                Err(format!(
                    "vendored serde derive supports tuple structs with exactly one field; `{name}` has {n}"
                ))
            }
        }
        other => Err(format!(
            "unsupported definition body for `{name}`: {other:?}"
        )),
    }
}

/// Field names of a `struct { ... }` body, skipping attributes, visibility
/// and type tokens (commas inside `<...>` do not split fields).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes/doc comments and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        // Skip the type, tracking angle-bracket depth so `Vec<T>` and
        // `Map<K, V>` don't end the field early.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(field);
    }
    if fields.is_empty() {
        return Err("vendored serde derive requires at least one named field".into());
    }
    Ok(fields)
}

/// Variant names of an `enum { ... }` body; every variant must be a unit
/// variant (no payload, no discriminant).
fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            other => {
                return Err(format!(
                    "vendored serde derive supports only unit enum variants; `{variant}` is followed by {other:?}"
                ))
            }
        }
    }
    if variants.is_empty() {
        return Err("vendored serde derive requires at least one enum variant".into());
    }
    Ok(variants)
}

/// Number of top-level comma-separated fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => fields += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        fields + 1
    } else {
        0
    }
}

fn gen_serialize(shape: &Shape) -> TokenStream {
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                body.push_str(&format!(
                    "map.insert(::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::value::Value {{\n\
                         let mut map = ::serde::value::Map::new();\n\
                         {body}\
                         ::serde::value::Value::Object(map)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::value::Value::String(::std::string::String::from({v:?})),\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::value::Value {{\n\
                     ::serde::Serialize::to_json_value(&self.0)\n\
                 }}\n\
             }}"
        ),
    };
    code.parse().unwrap()
}

fn gen_deserialize(shape: &Shape) -> TokenStream {
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                body.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_json_value(\
                         obj.get({f:?}).unwrap_or(&::serde::value::Value::Null))\
                         .map_err(|e| e.in_context(concat!({name:?}, \".\", {f:?})))?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(value: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::value::ValueError> {{\n\
                         let obj = value.as_object().ok_or_else(|| \
                             ::serde::value::ValueError::custom(\
                                 concat!(\"expected object for \", {name:?})))?;\n\
                         ::std::result::Result::Ok({name} {{ {body} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "::std::option::Option::Some({v:?}) => ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(value: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::value::ValueError> {{\n\
                         match value.as_str() {{\n\
                             {arms}\
                             _ => ::std::result::Result::Err(\
                                 ::serde::value::ValueError::custom(\
                                     concat!(\"unknown variant for \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(value: &::serde::value::Value) \
                     -> ::std::result::Result<Self, ::serde::value::ValueError> {{\n\
                     ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_json_value(value)?))\n\
                 }}\n\
             }}"
        ),
    };
    code.parse().unwrap()
}
